#!/usr/bin/env python3
"""Update propagation and the churn gap this reproduction uncovered.

LessLog updates travel top-down: a node holding a copy refreshes it and
re-broadcasts to its children list, a node without one *discards* the
request.  That works while replica chains are intact — but churn can
break a chain, and the paper never says what happens to the replicas
below the break.  This example walks the exact scenario our
property-based tests discovered, and shows the garbage-collection
repair in action.

Run:  python examples/update_consistency.py
"""

from repro import LessLogSystem


def show_holders(system, name):
    rows = []
    for pid in system.holders_of(name):
        copy = system.stores[pid].get(name, count_access=False)
        rows.append(f"P({pid})={copy.payload!r} ({copy.origin.value})")
    print("   holders:", ", ".join(rows) or "(none)")


def main() -> None:
    system = LessLogSystem(m=4, b=0, live=set(range(16)) - {0}, seed=7)
    name = system.psi.find_name_for_target(8)
    print(f"1. insert {name!r}: target P(8) is the home")
    system.insert(name, payload="v1")
    system.join(0)
    show_holders(system, name)

    print("\n2. overload pushes replicas down a chain: P(8) -> P(9) -> deeper")
    t1 = system.replicate(name, overloaded=8)
    t2 = system.replicate(name, overloaded=t1)
    show_holders(system, name)

    print(f"\n3. the middle of the chain, P({t1}), crashes and later rejoins")
    system.fail(t1)
    system.join(t1)
    show_holders(system, name)
    collected = system.metrics.counter("system.orphans_collected").value
    print(f"   -> the replica at P({t2}) was below the break: without the "
          f"repair it could never receive an update again.")
    print(f"   -> garbage-collected orphans: {collected}")

    print("\n4. update to v2 — every remaining copy must converge")
    result = system.update(name, payload="v2")
    show_holders(system, name)
    print(f"   update reached: {sorted(result.updated)}")

    stale = [
        pid
        for pid in system.holders_of(name)
        if system.stores[pid].get(name, count_access=False).payload != "v2"
    ]
    print(f"\n   stale copies remaining: {stale or 'none'}")
    system.check_invariants()
    print("   invariants hold.")

    print("\nSee DESIGN.md §7 for the write-up of this protocol gap "
          "(and a second one in empty-subtree repopulation).")


if __name__ == "__main__":
    main()
