#!/usr/bin/env python3
"""Flash crowd on a P2P content network — the paper's motivating story.

A file suddenly becomes popular ("a certain region of the P2P system
accesses this file more frequently than the rest").  This example runs
the request-level discrete-event simulation: Poisson client requests
arrive at nodes, GETs climb the lookup tree, nodes watch their own
sliding-window service rate, and overloaded holders autonomously
replicate — with zero client-access logging.

Run:  python examples/flash_crowd.py
"""

from repro.analysis import render_kv
from repro.baselines import LessLogPolicy
from repro.core.hashing import Psi
from repro.core.liveness import SetLiveness
from repro.engine.des_driver import DesExperiment
from repro.workloads import LocalityDemand

M = 6                 # 64 nodes
CAPACITY = 100.0      # each node serves at most 100 req/s comfortably
CROWD_RATE = 1500.0   # aggregate demand during the flash crowd
DURATION = 15.0       # seconds of simulated crowd


def main() -> None:
    target = Psi(M)("viral-clip.webm")
    liveness = SetLiveness(M, range(1 << M))
    # 80% of the demand comes from one hot region of the overlay.
    demand = LocalityDemand(hot_fraction=0.2, hot_share=0.8, seed=7)
    rates = demand.rates(CROWD_RATE, liveness)

    experiment = DesExperiment(
        m=M,
        target=target,
        entry_rates=rates,
        capacity=CAPACITY,
        policy=LessLogPolicy(),
        seed=7,
        file="viral-clip.webm",
    )
    print(f"flash crowd: {CROWD_RATE:.0f} req/s on the file of P({target}), "
          f"{1 << M} nodes, capacity {CAPACITY:.0f} req/s each\n")
    result = experiment.run(duration=DURATION)

    print(render_kv({
        "requests sent": result.requests_sent,
        "requests served": result.requests_served,
        "faults": result.faults,
        "replicas created": result.replicas_created,
        "peak node rate (req/s)": f"{result.max_observed_rate:.0f}",
        "final hottest node (req/s)": f"{result.final_max_rate:.0f}",
        "mean lookup hops": f"{result.hop_mean:.2f}",
        "max lookup hops": f"{result.hop_max:.0f} (<= m = {M})",
    }))

    print("\nreplication timeline (time, overloaded node -> new replica):")
    for t, src, dst in result.replica_events[:12]:
        print(f"  t={t:6.2f}s  P({src}) -> P({dst})")
    if len(result.replica_events) > 12:
        print(f"  ... and {len(result.replica_events) - 12} more")

    shed = 1.0 - result.final_max_rate / max(result.max_observed_rate, 1.0)
    print(f"\nthe hottest node shed {shed:.0%} of its peak load, "
          "with no client-access logs involved.")


if __name__ == "__main__":
    main()
