#!/usr/bin/env python3
"""A live LessLog cluster: real frames, real sockets, oracle-checked.

Boots 16 asyncio node servers exchanging length-prefixed JSON frames,
drives them with a client over the wire (insert / get / update), crashes
a home node mid-service, and lets a Zipf burst trip the per-node load
monitors into autonomous replication.  At the end, the cluster's
operation log is replayed through the synchronous ``LessLogSystem``
oracle and the final states are diffed — the live service and the
paper's synchronous model must agree bit for bit.

Run:  python examples/live_cluster.py
"""

import asyncio

from repro.runtime import (
    LiveCluster,
    LoadGenerator,
    RuntimeClient,
    RuntimeConfig,
    WorkloadShape,
    diff_states,
    replay_oplog,
)

M = 4           # 16 identifiers
B = 1           # §4 fault-tolerant model: 2 subtrees, 2 copies per file
CAPACITY = 30.0  # per-node comfortable service rate (req/s)


async def main() -> None:
    config = RuntimeConfig(
        m=M, b=B, seed=42, capacity=CAPACITY, service_time=0.001,
        inflight_limit=8,
    )
    cluster = await LiveCluster.start(config)
    print(f"booted {cluster!r}")

    # -- the paper's file operations, over the wire --------------------
    client = await RuntimeClient(cluster, 5).connect()
    insert = await client.insert("report.pdf", "quarterly numbers")
    homes = insert.payload["homes"]
    print(f"insert: homes {homes} (one per subtree), v{insert.version}")
    got = await client.get("report.pdf")
    print(f"get via P(5): served by P({got.server}), v{got.version}")
    upd = await client.update("report.pdf", "restated numbers")
    print(f"update: broadcast v{upd.version} top-down")

    # -- crash a home; the §3 reroute finds the surviving copy ---------
    victim = homes[0]
    await cluster.crash(victim)
    got = await client.get("report.pdf")
    print(f"crashed P({victim}); get now served by P({got.server}), "
          f"v{got.version}")
    await client.close()

    # -- a Zipf burst: load monitors replicate autonomously ------------
    boot = await RuntimeClient(cluster, got.server).connect()
    files = [f"doc-{i}" for i in range(6)]
    for name in files:
        await boot.insert(name, f"contents of {name}")
    await boot.close()
    await cluster.drain()
    generator = LoadGenerator(
        cluster, files, WorkloadShape(kind="zipf", s=1.4), seed=7
    )
    report = await generator.run_open_loop(rps=300, duration=1.0)
    await generator.close()
    await cluster.quiesce()
    print(f"burst: {report.completed}/{report.requests} served at "
          f"{report.achieved_rps:.0f} req/s, p50 {report.p50 * 1e3:.2f} ms, "
          f"p99 {report.p99 * 1e3:.2f} ms")
    print(f"autonomous replicas created under load: "
          f"{cluster.replicas_created()}")

    # -- the oracle must agree with everything that just happened ------
    system = replay_oplog(cluster.oplog, config, cluster.initial_live)
    system.check_invariants()
    conformance = diff_states(cluster, system)
    print(conformance.render())
    await cluster.shutdown()
    if not conformance.ok:
        raise SystemExit(1)


if __name__ == "__main__":
    asyncio.run(main())
