#!/usr/bin/env python3
"""Churn resilience: the §4 fault-tolerant model under node failures.

Inserts a corpus of files at increasing fault-tolerance degrees
(b = 0, 1, 2 → 1, 2, 4 copies per file), then subjects each system to
the same random churn (joins, voluntary leaves, crashes) and measures
how many files survive readable.

Run:  python examples/churn_resilience.py
"""

from repro.analysis import render_table
from repro.cluster import ChurnSchedule, LessLogSystem
from repro.core.errors import FileNotFoundInSystemError

M = 7            # 128 identifiers
FILES = 40
CHURN_RATE = 1.5  # events per simulated second
DURATION = 90.0


def run_one(b: int) -> dict:
    system = LessLogSystem.build(m=M, b=b, n_live=96, seed=11)
    for i in range(FILES):
        system.insert(f"doc-{i:03d}", payload=f"contents {i}")
    schedule = ChurnSchedule.generate(
        system, duration=DURATION, rate=CHURN_RATE, seed=23
    )
    schedule.apply_all(system)
    system.check_invariants()

    entry = next(iter(system.membership.live_pids()))
    readable = 0
    for i in range(FILES):
        try:
            system.get(f"doc-{i:03d}", entry=entry)
            readable += 1
        except FileNotFoundInSystemError:
            pass
    joins = system.metrics.counter("system.joins").value
    leaves = system.metrics.counter("system.leaves").value
    fails = system.metrics.counter("system.failures").value
    return {
        "b": b,
        "copies": 2**b,
        "events": f"{joins}j/{leaves}l/{fails}f",
        "live": system.n_live,
        "readable": readable,
        "lost": len(set(system.faults)),
    }


def main() -> None:
    print(f"{FILES} files, {DURATION:.0f}s of churn at {CHURN_RATE}/s, "
          f"{1 << M}-slot identifier space\n")
    rows = [run_one(b) for b in (0, 1, 2)]
    print(render_table(
        ["b", "copies/file", "churn (join/leave/fail)", "live nodes",
         "files readable", "files lost"],
        [[r["b"], r["copies"], r["events"], r["live"],
          f"{r['readable']}/{FILES}", r["lost"]] for r in rows],
    ))
    print("\nhigher b keeps files readable through the same churn, at "
          "a storage cost of 2^b copies per file (paper §4).")


if __name__ == "__main__":
    main()
