#!/usr/bin/env python3
"""Quickstart: the LessLog public API in five minutes.

Builds a small system, walks through every file operation of the paper
(insert, get, replicate, update), then exercises the self-organized
mechanism (join / leave / fail).

Run:  python examples/quickstart.py
"""

from repro import LessLogSystem

def main() -> None:
    # A 16-node system (m=4) with 2-way fault tolerance (b=1: every
    # file is stored in 2 independent subtrees).
    system = LessLogSystem.build(m=4, b=1)
    print(f"built: {system}")

    # -- insert ---------------------------------------------------------
    ins = system.insert("video.mp4", payload=b"\x00" * 16)
    print(f"\ninsert('video.mp4'): target P({ins.target}), "
          f"stored at {list(ins.homes)} (one home per subtree)")

    # -- get: requests climb the target's binomial lookup tree ----------
    for entry in (3, 9, 14):
        got = system.get("video.mp4", entry=entry)
        print(f"get from P({entry}): route {list(got.route)} "
              f"-> served by P({got.server}) in {got.hops} hops")

    # -- replicate: the logless placement decision ----------------------
    # Suppose the home of the file is overloaded.  LessLog picks the
    # children-list member with the most offspring — no access logs.
    home = ins.homes[0]
    target = system.replicate("video.mp4", overloaded=home)
    print(f"\noverloaded P({home}) replicated to P({target}) "
          "(first of its children list)")
    print(f"holders now: {system.holders_of('video.mp4')}")

    # -- update: top-down broadcast reaches every copy -------------------
    upd = system.update("video.mp4", payload=b"\x01" * 16)
    print(f"update to v{upd.version} reached {sorted(upd.updated)}")

    # -- churn: the self-organized mechanism ------------------------------
    print("\n--- churn ---")
    moved = system.leave(home)
    print(f"P({home}) left; re-inserted files: {moved}")
    crashed = sorted(system.membership.live_pids())[0]
    recovered = system.fail(crashed)
    print(f"P({crashed}) crashed; recovered: {recovered}; "
          f"lost: {sorted(set(system.faults))}")
    rejoined = system.join(home)
    print(f"P({home}) re-joined; migrated back: {rejoined}")

    # The system-wide invariants (one inserted copy per subtree, at the
    # subtree storage node) hold through all of it:
    system.check_invariants()
    print("\ninvariants hold; final state:", system)

    got = system.get("video.mp4", entry=3)
    print(f"final read: version {got.version} from P({got.server})")


if __name__ == "__main__":
    main()
