#!/usr/bin/env python3
"""Replica-count sweep: a miniature of the paper's Figure 5 and 7.

Sweeps aggregate demand for one popular file over a 256-node system and
compares the three replication policies under both of the paper's §6
workloads (even and 80/20 locality), printing tables and sparklines.

Run:  python examples/load_balancing_sweep.py
"""

import random

from repro.analysis import SweepResult, render_sparkline
from repro.baselines import make_policy
from repro.core.hashing import Psi
from repro.core.liveness import SetLiveness
from repro.core.tree import LookupTree
from repro.engine.fluid import FluidSimulation
from repro.workloads import LocalityDemand, UniformDemand

M = 8                       # 256 identifiers
CAPACITY = 100.0            # requests/second per node (paper §6)
# Note the sweep ceiling: under the 80/20 model the ~51 hot nodes each
# receive 0.8*R/51 req/s *directly from clients*, which no replication
# scheme can shed.  R <= 6000 keeps every point feasible at m=8 (the
# paper's m=10 gives enough hot nodes for its full 20k sweep).
RATES = [1000.0 * k for k in (1, 2, 3, 4, 6)]
POLICIES = ("log-based", "lesslog", "random")


def sweep(demand, title: str) -> SweepResult:
    result = SweepResult(title, "req/s", "replicas")
    target = Psi(M)("popular-file")
    liveness = SetLiveness(M, range(1 << M))
    for rate in RATES:
        for name in POLICIES:
            sim = FluidSimulation(
                LookupTree(target, M),
                liveness,
                demand.rates(rate, liveness),
                capacity=CAPACITY,
                rng=random.Random(0),
            )
            balance = sim.balance(make_policy(name))
            assert balance.balanced
            result.add(name, rate, balance.replicas_created)
    return result


def main() -> None:
    for demand, title in (
        (UniformDemand(), "Evenly-distributed load (cf. Figure 5)"),
        (LocalityDemand(seed=0), "80/20 locality model (cf. Figure 7)"),
    ):
        result = sweep(demand, title)
        print(result.render())
        for name in POLICIES:
            ys = [result.value(name, x) for x in result.xs()]
            print(f"  {name:>10}: {render_sparkline(ys)}  (max {max(ys):.0f})")
        ratio = result.totals()["random"] / result.totals()["lesslog"]
        print(f"  random/lesslog replica ratio: {ratio:.1f}x\n")


if __name__ == "__main__":
    main()
