#!/usr/bin/env python3
"""A whole catalog under shared node capacity (extension study).

The paper evaluates one popular file; a deployment hosts many, and a
node's 100 req/s budget is shared across every file it serves.  This
example runs the multi-file fluid engine over a catalog with Zipf
popularity: a few hot files soak up most of the demand, and LessLog
placement concentrates replicas exactly there.

Run:  python examples/multi_file_catalog.py
"""

import random

import numpy as np

from repro.analysis import render_table
from repro.baselines import LessLogPolicy
from repro.core.hashing import Psi
from repro.core.liveness import AllLive
from repro.engine.multifile import FileSpec, MultiFileFluid
from repro.workloads import UniformDemand

M = 8                # 256 nodes
FILES = 12
TOTAL_RATE = 6000.0  # aggregate req/s across the catalog
CAPACITY = 100.0
ZIPF_S = 1.1         # catalog popularity skew


def main() -> None:
    liveness = AllLive(M)
    psi = Psi(M)
    demand = UniformDemand()

    # Zipf-popular catalog: file i gets weight (i+1)^-s of the demand.
    weights = np.arange(1, FILES + 1, dtype=float) ** (-ZIPF_S)
    weights /= weights.sum()
    files = [
        FileSpec(
            name=f"file-{i:02d}",
            target=psi(f"file-{i:02d}"),
            entry_rates=demand.rates(TOTAL_RATE * w, liveness),
        )
        for i, w in enumerate(weights)
    ]

    engine = MultiFileFluid(M, liveness, files, capacity=CAPACITY,
                            rng=random.Random(0))
    print(f"{FILES}-file catalog, {TOTAL_RATE:.0f} req/s total, "
          f"{1 << M} nodes x {CAPACITY:.0f} req/s\n")
    result = engine.balance(LessLogPolicy())

    rows = []
    for spec, w in zip(files, weights):
        rows.append([
            spec.name,
            f"P({spec.target})",
            f"{TOTAL_RATE * w:.0f}",
            str(result.replicas_of(spec.name)),
        ])
    print(render_table(
        ["file", "home", "demand (req/s)", "replicas"], rows,
    ))

    print(f"\nbalanced: {result.balanced}; "
          f"total replicas: {result.replicas_created}; "
          f"hottest node after balance: "
          f"{max(result.node_loads.values()):.0f} req/s")
    hot3 = sum(result.replicas_of(f"file-{i:02d}") for i in range(3))
    print(f"the 3 hottest files hold {hot3}/{result.replicas_created} "
          "of all replicas — replication follows popularity, with no logs.")


if __name__ == "__main__":
    main()
