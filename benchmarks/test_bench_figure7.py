"""Benchmark: regenerate Figure 7 (80/20 locality, three policies).

Paper claims checked:
* LessLog still needs far fewer replicas than random replication.
* Under skew the log-based oracle is at least as good as LessLog
  ("slightly more replicas than the log-based method"), but the gap
  stays small.
"""

import pytest

from repro.analysis import dominates, mean_ratio
from repro.experiments import FigureConfig, figure7


@pytest.fixture(scope="module")
def result():
    return figure7(FigureConfig.fast())


def test_bench_figure7(benchmark, result, save_result):
    run = benchmark.pedantic(
        lambda: figure7(FigureConfig.fast()), rounds=1, iterations=1
    )
    save_result("figure7", run)


class TestFigure7Shape:
    def test_random_needs_far_more_replicas(self, result):
        xs = result.xs()
        lesslog = [result.value("lesslog", x) for x in xs]
        rand = [result.value("random", x) for x in xs]
        assert dominates(lesslog, rand)
        assert mean_ratio(rand, lesslog) > 2.0

    def test_logbased_at_most_lesslog(self, result):
        xs = result.xs()
        lesslog = [result.value("lesslog", x) for x in xs]
        logbased = [result.value("log-based", x) for x in xs]
        assert dominates(logbased, lesslog)

    def test_lesslog_only_slightly_worse_than_oracle(self, result):
        xs = result.xs()
        lesslog = [result.value("lesslog", x) for x in xs]
        logbased = [result.value("log-based", x) for x in xs]
        assert mean_ratio(lesslog, logbased) < 1.5

    def test_locality_costs_more_than_even_load(self, result):
        # Skewed entry points concentrate flow on fewer subtrees, so
        # more replicas are needed than under even demand.
        from repro.experiments import figure5

        even = figure5(FigureConfig.fast())
        top = result.xs()[-1]
        assert result.value("lesslog", top) >= 0.8 * even.value("lesslog", top)
