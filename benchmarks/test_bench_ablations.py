"""Benchmarks for the design-choice ablations (DESIGN.md §ablations)."""

import pytest

from repro.experiments.runner import run_experiment


class TestChildrenOrderAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("abl-order")

    def test_bench_children_order(self, benchmark, result, save_result):
        run = benchmark.pedantic(
            lambda: run_experiment("abl-order", fast=True), rounds=1, iterations=1
        )
        save_result("abl_order", result)

    def test_paper_rule_at_most_half_of_worst(self, result):
        top = result.xs()[-1]
        assert result.value("most-offspring (paper)", top) <= result.value(
            "least-offspring", top
        )

    def test_random_child_in_between(self, result):
        top = result.xs()[-1]
        assert (
            result.value("most-offspring (paper)", top)
            <= result.value("random-child", top)
            <= result.value("least-offspring", top)
        )


class TestProportionalAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("abl-proportional")

    def test_bench_proportional(self, benchmark, result, save_result):
        run = benchmark.pedantic(
            lambda: run_experiment("abl-proportional", fast=True),
            rounds=1,
            iterations=1,
        )
        save_result("abl_proportional", result)

    def test_paper_rule_always_balances(self, result):
        for rate in result.xs():
            assert result.value("proportional (paper) unbalanced", rate) == 0

    def test_own_list_only_fails_somewhere(self, result):
        assert any(
            result.value("own-list-only unbalanced", rate) == 1
            for rate in result.xs()
        )


class TestConcurrencyAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("abl-concurrency")

    def test_bench_concurrency(self, benchmark, result, save_result):
        run = benchmark.pedantic(
            lambda: run_experiment("abl-concurrency", fast=True),
            rounds=1,
            iterations=1,
        )
        save_result("abl_concurrency", result)

    def test_replica_counts_schedule_invariant(self, result):
        for rate in result.xs():
            assert result.value("concurrent replicas", rate) == result.value(
                "serial replicas", rate
            )

    def test_concurrent_rounds_logarithmic(self, result):
        for rate in result.xs():
            assert result.value("concurrent rounds", rate) <= 12
