"""Benchmarks for the extension studies (claims beyond Figures 5–8)."""

import pytest

from repro.experiments.extensions import (
    churn_study,
    engine_agreement,
    fault_tolerance_study,
    gossip_staleness_study,
    lookup_path_lengths,
    prune_ablation,
    replica_decay_study,
    scalability_study,
)


class TestLookupBench:
    """§1: 'the binomial lookup tree bounds the lookup time at O(log N)'."""

    @pytest.fixture(scope="class")
    def result(self):
        return lookup_path_lengths(widths=(4, 6, 8, 10), samples=150)

    def test_bench_lookup(self, benchmark, result, save_result):
        run = benchmark.pedantic(
            lambda: lookup_path_lengths(widths=(4, 6, 8, 10), samples=150),
            rounds=1,
            iterations=1,
        )
        save_result("ext_lookup", run)

    def test_lesslog_max_hops_is_m(self, result):
        for m in (4, 6, 8, 10):
            assert result.value("lesslog max", 1 << m) <= m

    def test_comparable_to_chord(self, result):
        for m in (6, 8, 10):
            n = 1 << m
            assert result.value("lesslog mean", n) <= result.value("chord mean", n) + 1


class TestPruneBench:
    """§2.2/§6: counter-based removal reduces the replica population."""

    @pytest.fixture(scope="class")
    def result(self):
        return prune_ablation(m=8, peak_rate=4000.0, trough_rate=400.0)

    def test_bench_prune(self, benchmark, result, save_result):
        run = benchmark.pedantic(
            lambda: prune_ablation(m=8, peak_rate=4000.0, trough_rate=400.0),
            rounds=1,
            iterations=1,
        )
        save_result("ext_prune", run)

    def test_pruning_monotone_in_threshold(self, result):
        xs = result.xs()
        after = [result.value("after prune", x) for x in xs]
        # Higher thresholds never leave more replicas behind.
        assert all(a >= b for a, b in zip(after, after[1:]))

    def test_high_threshold_removes_most_replicas(self, result):
        top = result.xs()[-1]
        assert result.value("after prune", top) < result.value("before prune", top)


class TestFaultToleranceBench:
    """§4: 2^b copies tolerate failures that b=0 cannot."""

    @pytest.fixture(scope="class")
    def result(self):
        return fault_tolerance_study(m=7, bs=(0, 1, 2, 3), files=40, crashes=40)

    def test_bench_fault_tolerance(self, benchmark, result, save_result):
        run = benchmark.pedantic(
            lambda: fault_tolerance_study(m=7, bs=(0, 1, 2, 3), files=40, crashes=40),
            rounds=1,
            iterations=1,
        )
        save_result("ext_fault_tolerance", run)

    def test_survival_improves_with_b(self, result):
        survival = [result.value("survival fraction", b) for b in (0, 1, 2, 3)]
        assert survival == sorted(survival)
        assert survival[-1] >= survival[0]

    def test_storage_cost_is_2_to_b(self, result):
        for b in (0, 1, 2, 3):
            assert result.value("copies per file", b) == float(2**b)


class TestChurnBench:
    """§8 future work: dynamic joins/leaves/failures."""

    @pytest.fixture(scope="class")
    def result(self):
        return churn_study(m=7, b=1, files=30, duration=120.0)

    def test_bench_churn(self, benchmark, result, save_result):
        run = benchmark.pedantic(
            lambda: churn_study(m=7, b=1, files=30, duration=120.0),
            rounds=1,
            iterations=1,
        )
        save_result("ext_churn", run)

    def test_b1_keeps_most_files_readable(self, result):
        for rate in result.xs():
            assert result.value("files readable", rate) >= 0.8 * 30


class TestScalabilityBench:
    """§8 future work: behaviour at large N (up to 16,384 nodes)."""

    @pytest.fixture(scope="class")
    def result(self):
        return scalability_study(widths=(8, 10, 12, 14, 16))

    def test_bench_scalability(self, benchmark, result, save_result):
        run = benchmark.pedantic(
            lambda: scalability_study(widths=(8, 10, 12)),
            rounds=1,
            iterations=1,
        )
        save_result("ext_scalability", result)

    def test_replicas_independent_of_n(self, result):
        counts = {
            result.value("replicas to balance", 1 << m)
            for m in (8, 10, 12, 14, 16)
        }
        assert len(counts) == 1  # demand-determined, not size-determined

    def test_lookup_grows_logarithmically(self, result):
        # Mean hops ≈ m/2: quadrupling N adds ~1 hop.
        for m in (8, 10, 12, 14):
            small = result.value("mean lookup hops", 1 << m)
            large = result.value("mean lookup hops", 1 << (m + 2))
            assert 0.5 < large - small < 1.5

    def test_rounds_stay_logarithmic_in_load(self, result):
        for m in (8, 10, 12, 14, 16):
            assert result.value("balance rounds", 1 << m) <= 12


class TestReplicaDecayBench:
    """§2.2's counter-based removal, dynamically (flash crowd in DES)."""

    @pytest.fixture(scope="class")
    def result(self):
        return replica_decay_study(thresholds=(0.0, 2.0, 5.0, 10.0))

    def test_bench_decay(self, benchmark, result, save_result):
        run = benchmark.pedantic(
            lambda: replica_decay_study(thresholds=(0.0, 5.0)),
            rounds=1,
            iterations=1,
        )
        save_result("ext_decay", result)

    def test_any_threshold_eventually_drains(self, result):
        for threshold in result.xs():
            if threshold > 0:
                assert result.value("final replicas", threshold) < result.value(
                    "peak replicas", threshold
                )

    def test_zero_threshold_keeps_everything(self, result):
        assert result.value("removed", 0.0) == 0


class TestGossipStalenessBench:
    """§5 status words: the cost of slow failure detection."""

    @pytest.fixture(scope="class")
    def result(self):
        return gossip_staleness_study(delays=(0.1, 0.5, 1.0, 2.0, 4.0))

    def test_bench_gossip(self, benchmark, result, save_result):
        run = benchmark.pedantic(
            lambda: gossip_staleness_study(delays=(0.5, 2.0)),
            rounds=1,
            iterations=1,
        )
        save_result("ext_gossip", result)

    def test_losses_grow_with_detection_delay(self, result):
        losses = [result.value("requests lost", d) for d in result.xs()]
        assert losses == sorted(losses)

    def test_fast_detection_nearly_lossless(self, result):
        # At 0.1s delay only ~50 stale-window requests exist at 500/s.
        assert result.value("requests lost", 0.1) < 100


class TestEngineAgreementBench:
    """Cross-validation: the DES reproduces the fluid engine's counts."""

    @pytest.fixture(scope="class")
    def result(self):
        return engine_agreement(m=6, rates=(400.0, 800.0, 1600.0), duration=12.0)

    def test_bench_engine_agreement(self, benchmark, result, save_result):
        run = benchmark.pedantic(
            lambda: engine_agreement(m=6, rates=(400.0, 800.0), duration=12.0),
            rounds=1,
            iterations=1,
        )
        save_result("ext_engine_agreement", run)

    def test_engines_agree_within_2x(self, result):
        for rate in result.xs():
            fluid = result.value("fluid", rate)
            des = result.value("des", rate)
            assert 0.5 * fluid <= des <= 2.5 * fluid
