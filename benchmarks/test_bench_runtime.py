"""Benchmark: the live asyncio runtime sustains a real request rate.

Unlike the figure benchmarks this one measures the *service*, not the
models: a live cluster over in-process streams must sustain the smoke
ramp with sub-second tails, make autonomous replication decisions under
load, and still replay conformant against the synchronous oracle.
"""

import asyncio
import json
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"

from repro.runtime import (  # noqa: E402
    LiveCluster,
    LoadGenerator,
    RuntimeClient,
    RuntimeConfig,
    WorkloadShape,
    diff_states,
    replay_oplog,
)


def test_runtime_ramp_tool_check_mode(tmp_path, monkeypatch):
    """The bench tool's CI smoke passes and writes the JSON artifact."""
    sys.path.insert(0, str(TOOLS))
    try:
        import bench_runtime
    finally:
        sys.path.remove(str(TOOLS))
    out = tmp_path / "BENCH_runtime.json"
    monkeypatch.setattr(bench_runtime, "OUTPUT", out)
    assert bench_runtime.main(["--check"]) == 0
    payload = json.loads(out.read_text())
    assert payload["sustained_rps"] > 0
    assert payload["conformant"] is True
    assert payload["latency_p50_s"] is not None
    assert payload["latency_p99_s"] is not None


def test_runtime_sustains_burst_with_conformant_replication():
    """A saturating burst triggers sweeper replication; oracle agrees."""

    async def run() -> None:
        config = RuntimeConfig(
            m=4, b=1, seed=9, capacity=25.0, service_time=0.001,
            inflight_limit=8,
        )
        cluster = await LiveCluster.start(config)
        try:
            files = [f"hot-{i}" for i in range(4)]
            boot = await RuntimeClient(cluster, 0).connect()
            for name in files:
                await boot.insert(name, name)
            await boot.close()
            await cluster.drain()
            gen = LoadGenerator(
                cluster, files, WorkloadShape(kind="zipf", s=1.5), seed=9
            )
            report = await gen.run_open_loop(rps=400, duration=1.0)
            await gen.close()
            await cluster.quiesce()
            assert report.completed >= 0.99 * report.requests
            assert report.timeouts == 0
            assert cluster.replicas_created() > 0, "burst never tripped a sweeper"
            system = replay_oplog(cluster.oplog, config, cluster.initial_live)
            system.check_invariants()
            conformance = diff_states(cluster, system)
            assert conformance.ok, conformance.render()
        finally:
            await cluster.shutdown()

    asyncio.run(run())
