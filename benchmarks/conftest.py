"""Shared benchmark fixtures.

Every benchmark regenerates one paper table/figure (at the reduced
``fast`` sweep), asserts the paper's qualitative shape, and writes the
reproduced table to ``results/<experiment>.txt`` so the repository
carries the regenerated evaluation alongside the timings.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def pytest_collection_modifyitems(items) -> None:
    """Mark everything under benchmarks/ with ``bench``.

    The default ``testpaths = ["tests"]`` already keeps these out of
    tier-1 runs; the marker additionally lets mixed invocations
    deselect them with ``-m "not bench"``.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a SweepResult's rendered table under results/."""

    def save(name: str, result) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(result.render() + "\n")

    return save
