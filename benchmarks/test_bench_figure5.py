"""Benchmark: regenerate Figure 5 (even load, three policies).

Paper claims checked:
* LessLog uses *significantly fewer* replicas than random replication.
* LessLog uses at most *slightly more* than the log-based oracle
  (they coincide exactly under even demand).
* Replica counts grow with demand.
"""

import pytest

from repro.analysis import dominates, mean_ratio, mostly_monotonic
from repro.experiments import FigureConfig, figure5


@pytest.fixture(scope="module")
def result():
    return figure5(FigureConfig.fast())


def test_bench_figure5(benchmark, result, save_result):
    run = benchmark.pedantic(
        lambda: figure5(FigureConfig.fast()), rounds=1, iterations=1
    )
    save_result("figure5", run)


class TestFigure5Shape:
    def test_random_needs_far_more_replicas(self, result):
        xs = result.xs()
        lesslog = [result.value("lesslog", x) for x in xs]
        rand = [result.value("random", x) for x in xs]
        assert dominates(lesslog, rand)
        assert mean_ratio(rand, lesslog) > 2.0

    def test_lesslog_matches_logbased_under_even_load(self, result):
        xs = result.xs()
        lesslog = [result.value("lesslog", x) for x in xs]
        logbased = [result.value("log-based", x) for x in xs]
        assert lesslog == logbased

    def test_replicas_grow_with_demand(self, result):
        xs = result.xs()
        for name in ("lesslog", "log-based", "random"):
            assert mostly_monotonic([result.value(name, x) for x in xs])

    def test_lesslog_is_near_optimal(self, result):
        # A perfect splitter needs ceil(R / capacity) holders; LessLog
        # should be within ~2x of that lower bound.
        cfg = FigureConfig.fast()
        for x in result.xs():
            optimal = x / cfg.capacity - 1
            assert result.value("lesslog", x) <= 2.5 * optimal + 5
