"""Benchmark: regenerate Figure 8 (locality model with dead nodes).

Paper claims checked:
* "LessLog creates a similar number of replicas when there are dead
  nodes" under the locality model too.
"""

import pytest

from repro.analysis import max_relative_spread, mostly_monotonic
from repro.experiments import FigureConfig, figure8


@pytest.fixture(scope="module")
def result():
    return figure8(FigureConfig.fast())


def test_bench_figure8(benchmark, result, save_result):
    run = benchmark.pedantic(
        lambda: figure8(FigureConfig.fast()), rounds=1, iterations=1
    )
    save_result("figure8", run)


class TestFigure8Shape:
    def test_three_dead_fractions(self, result):
        assert sorted(result.series) == ["10% dead", "20% dead", "30% dead"]

    def test_similar_counts_across_fractions(self, result):
        xs = result.xs()
        series = [
            [result.value(name, x) for x in xs] for name in sorted(result.series)
        ]
        assert max_relative_spread(series) < 0.6

    def test_each_series_grows_with_demand(self, result):
        xs = result.xs()
        for name in result.series:
            assert mostly_monotonic(
                [result.value(name, x) for x in xs], tolerance=0.15
            )
