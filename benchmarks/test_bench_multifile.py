"""Benchmark: multi-file catalog under shared node capacity (extension)."""

import random

import numpy as np
import pytest

from repro.baselines import LessLogPolicy
from repro.core.hashing import Psi
from repro.core.liveness import AllLive
from repro.engine.multifile import FileSpec, MultiFileFluid
from repro.workloads import UniformDemand

M = 8
FILES = 12
TOTAL_RATE = 6000.0
CAPACITY = 100.0


def build_engine():
    liveness = AllLive(M)
    psi = Psi(M)
    demand = UniformDemand()
    weights = np.arange(1, FILES + 1, dtype=float) ** (-1.1)
    weights /= weights.sum()
    files = [
        FileSpec(
            name=f"file-{i:02d}",
            target=psi(f"file-{i:02d}"),
            entry_rates=demand.rates(TOTAL_RATE * float(w), liveness),
        )
        for i, w in enumerate(weights)
    ]
    return MultiFileFluid(M, liveness, files, capacity=CAPACITY,
                          rng=random.Random(0))


@pytest.fixture(scope="module")
def result():
    return build_engine().balance(LessLogPolicy())


def test_bench_multifile_balance(benchmark):
    outcome = benchmark.pedantic(
        lambda: build_engine().balance(LessLogPolicy()), rounds=2, iterations=1
    )
    assert outcome.balanced


class TestMultiFileShape:
    def test_balance_reached(self, result):
        assert result.balanced
        assert max(result.node_loads.values()) <= CAPACITY

    def test_replicas_follow_popularity(self, result):
        hottest = result.replicas_of("file-00")
        coldest = result.replicas_of(f"file-{FILES - 1:02d}")
        assert hottest > 5 * max(coldest, 1) or coldest == 0

    def test_total_replicas_near_demand_bound(self, result):
        # At least total/capacity holders are needed across the catalog.
        lower_bound = TOTAL_RATE / CAPACITY - FILES
        assert result.replicas_created >= lower_bound * 0.8
