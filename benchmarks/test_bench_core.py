"""Microbenchmarks for the hot core operations.

These are the operations a deployed LessLog node performs per request
or per placement decision — the paper's performance argument is that
they are a handful of bitwise instructions, so they had better be fast
here too.
"""

import random

import pytest

from repro.baselines import LessLogPolicy
from repro.baselines.base import PlacementContext
from repro.core.children import advanced_children_list
from repro.core.liveness import AllLive, SetLiveness
from repro.core.replication import choose_replica_target
from repro.core.routing import resolve_route
from repro.core.tree import LookupTree
from repro.engine.fluid import FluidSimulation
from repro.workloads import UniformDemand

M = 10
N = 1 << M


@pytest.fixture(scope="module")
def tree():
    return LookupTree(777, M)


@pytest.fixture(scope="module")
def liveness():
    rng = random.Random(0)
    dead = rng.sample(range(N), N // 10)
    return SetLiveness.all_but(M, dead=dead)


def test_bench_route_resolution(benchmark, tree, liveness):
    entries = [p for p in range(0, N, 7) if liveness.is_live(p)]

    def resolve_many():
        return sum(len(resolve_route(tree, e, liveness)) for e in entries)

    total = benchmark(resolve_many)
    assert total > 0


def test_bench_children_list(benchmark, tree, liveness):
    def list_root():
        return advanced_children_list(tree, tree.root, liveness)

    members = benchmark(list_root)
    assert members


def test_bench_placement_decision(benchmark, tree, liveness):
    holders = {tree.root} if liveness.is_live(tree.root) else set()
    k = next(iter(liveness.live_pids()))
    rng = random.Random(0)

    def decide():
        return choose_replica_target(tree, k, liveness, holders, rng=rng)

    decision = benchmark(decide)
    assert decision is not None


def test_bench_fluid_flow_pass(benchmark, tree):
    live = AllLive(M)
    rates = UniformDemand().rates(20000.0, live)
    sim = FluidSimulation(tree, live, rates, capacity=100.0)

    flows = benchmark(sim.compute_flows)
    assert flows.total_served() == pytest.approx(20000.0)


def test_bench_full_balance(benchmark, tree):
    def balance():
        live = AllLive(M)
        rates = UniformDemand().rates(20000.0, live)
        sim = FluidSimulation(
            tree, live, rates, capacity=100.0, rng=random.Random(0)
        )
        return sim.balance(LessLogPolicy())

    result = benchmark.pedantic(balance, rounds=3, iterations=1)
    assert result.balanced


def test_bench_lesslog_policy_call(benchmark, tree):
    live = AllLive(M)
    policy = LessLogPolicy()
    context = PlacementContext(rng=random.Random(0))

    choice = benchmark(
        lambda: policy.choose(tree, tree.root, live, {tree.root}, context)
    )
    assert choice is not None
