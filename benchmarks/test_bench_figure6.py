"""Benchmark: regenerate Figure 6 (LessLog with 10/20/30% dead nodes).

Paper claims checked:
* "A similar number of replicas are created in all three different
  configurations."
* "The system with 30% dead nodes creates more replicas when the
  number of requests increases due to the incomplete lookup tree."
"""

import pytest

from repro.analysis import max_relative_spread, mostly_monotonic
from repro.experiments import FigureConfig, figure6


@pytest.fixture(scope="module")
def result():
    return figure6(FigureConfig.fast())


def test_bench_figure6(benchmark, result, save_result):
    run = benchmark.pedantic(
        lambda: figure6(FigureConfig.fast()), rounds=1, iterations=1
    )
    save_result("figure6", run)


class TestFigure6Shape:
    def test_three_dead_fractions(self, result):
        assert sorted(result.series) == ["10% dead", "20% dead", "30% dead"]

    def test_similar_replica_counts_across_fractions(self, result):
        xs = result.xs()
        series = [
            [result.value(name, x) for x in xs] for name in sorted(result.series)
        ]
        assert max_relative_spread(series) < 0.6

    def test_more_dead_nodes_cost_more_at_high_demand(self, result):
        top = result.xs()[-1]
        assert result.value("30% dead", top) >= result.value("10% dead", top)

    def test_each_series_grows_with_demand(self, result):
        xs = result.xs()
        for name in result.series:
            assert mostly_monotonic([result.value(name, x) for x in xs])
