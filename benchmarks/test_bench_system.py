"""API-level throughput benchmarks for LessLogSystem at paper scale."""

import pytest

from repro.cluster import LessLogSystem

M = 10  # the paper's 1024-identifier space


@pytest.fixture(scope="module")
def system():
    sys_ = LessLogSystem.build(m=M, n_live=900, seed=0)
    for i in range(50):
        sys_.insert(f"bench-{i}", payload=i)
    return sys_


def test_bench_insert(benchmark):
    counter = [0]

    def do_insert():
        sys_ = do_insert.system
        counter[0] += 1
        sys_.insert(f"ins-{counter[0]}", payload=counter[0])

    do_insert.system = LessLogSystem.build(m=M, n_live=900, seed=1)
    benchmark(do_insert)


def test_bench_get(benchmark, system):
    entries = [p for p in system.membership.live_pids()][:64]
    state = {"i": 0}

    def do_get():
        state["i"] += 1
        entry = entries[state["i"] % len(entries)]
        return system.get(f"bench-{state['i'] % 50}", entry=entry)

    result = benchmark(do_get)
    assert result.payload is not None or result.payload == 0


def test_bench_update(benchmark, system):
    state = {"i": 0}

    def do_update():
        state["i"] += 1
        return system.update(f"bench-{state['i'] % 50}", payload=state["i"])

    result = benchmark(do_update)
    assert result.updated


def test_bench_replicate_step(benchmark, system):
    name = "bench-0"

    def do_cycle():
        home = system.holders_of(name)[0]
        target = system.replicate(name, overloaded=home)
        if target is not None:
            system.remove_replica(name, target)
        return target

    benchmark(do_cycle)


def test_bench_churn_fail_join(benchmark):
    sys_ = LessLogSystem.build(m=8, n_live=220, seed=2)
    for i in range(20):
        sys_.insert(f"churn-{i}", payload=i)

    def fail_then_join():
        victim = next(iter(sys_.membership.live_pids()))
        sys_.fail(victim)
        sys_.join(victim)

    benchmark.pedantic(fail_then_join, rounds=10, iterations=1)
    sys_.check_invariants()
