"""Workload abstractions.

A *demand model* describes where client requests enter the overlay: it
produces a rate vector ``rates[pid]`` (requests/second entering at each
PID, zero at dead identifiers) summing to the requested aggregate rate.
The fluid engine consumes rate vectors directly; the DES driver samples
Poisson arrivals from the same vector, so both engines run the exact
same demand.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..core.errors import ConfigurationError
from ..core.liveness import LivenessView

__all__ = ["DemandModel", "validate_rates"]


@runtime_checkable
class DemandModel(Protocol):
    """Produces per-node client request rates."""

    name: str

    def rates(self, total_rate: float, liveness: LivenessView) -> np.ndarray:
        """Length-``2**m`` array of entry rates summing to ``total_rate``."""
        ...


def validate_rates(rates: np.ndarray, total_rate: float, liveness: LivenessView) -> None:
    """Assert the demand-model contract (used by tests and engines)."""
    n = 1 << liveness.m
    if rates.shape != (n,):
        raise ConfigurationError(f"rate vector must have shape ({n},), got {rates.shape}")
    if np.any(rates < 0):
        raise ConfigurationError("rate vector has negative entries")
    if not np.isclose(rates.sum(), total_rate, rtol=1e-9, atol=1e-6):
        raise ConfigurationError(
            f"rates sum to {rates.sum()}, expected {total_rate}"
        )
    for pid in range(n):
        if rates[pid] > 0 and not liveness.is_live(pid):
            raise ConfigurationError(f"dead node P({pid}) has positive entry rate")
