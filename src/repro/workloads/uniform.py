"""Evenly-distributed demand (paper §6, Figures 5–6).

    "all requests are evenly distributed among all nodes"

Every live node receives the same client request rate.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ConfigurationError
from ..core.liveness import LivenessView

__all__ = ["UniformDemand"]


class UniformDemand:
    """Equal entry rate at every live node."""

    name = "uniform"

    def rates(self, total_rate: float, liveness: LivenessView) -> np.ndarray:
        if total_rate < 0:
            raise ConfigurationError(f"total rate must be non-negative, got {total_rate}")
        n = 1 << liveness.m
        live = list(liveness.live_pids())
        if not live:
            raise ConfigurationError("no live nodes to receive demand")
        rates = np.zeros(n)
        rates[live] = total_rate / len(live)
        return rates

    def __repr__(self) -> str:
        return "UniformDemand()"
