"""Workloads: demand models and request streams.

``UniformDemand`` and ``LocalityDemand`` are the paper's two §6
workloads; ``ZipfDemand`` is an extension; ``RequestStream`` samples
Poisson arrivals from any of them for the discrete-event engine.
"""

from .base import DemandModel, validate_rates
from .generator import Request, RequestStream
from .locality import LocalityDemand
from .uniform import UniformDemand
from .zipf import ZipfDemand

DEMANDS = {
    "uniform": UniformDemand,
    "locality": LocalityDemand,
    "zipf": ZipfDemand,
}
"""Registry mapping demand-model names to classes (used by the CLI)."""

__all__ = [
    "DEMANDS",
    "DemandModel",
    "LocalityDemand",
    "Request",
    "RequestStream",
    "UniformDemand",
    "ZipfDemand",
    "validate_rates",
]
