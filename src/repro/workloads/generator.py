"""Request-stream generation for the discrete-event engine.

Turns a demand model's rate vector into a stream of timestamped client
requests: a superposed Poisson process whose per-node intensities are
the rate vector.  Sampling uses the standard exponential inter-arrival
construction on the *aggregate* process, then attributes each arrival
to a node with probability proportional to its rate — equivalent to
independent per-node Poisson processes, but O(1) state.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError

__all__ = ["Request", "RequestStream"]


@dataclass(frozen=True)
class Request:
    """One client request entering the overlay."""

    time: float
    entry: int
    file: str


class RequestStream:
    """Poisson request stream over a fixed rate vector."""

    def __init__(self, rates: np.ndarray, file: str, seed: int = 0) -> None:
        rates = np.asarray(rates, dtype=float)
        if np.any(rates < 0):
            raise ConfigurationError("rate vector has negative entries")
        self.total_rate = float(rates.sum())
        if self.total_rate <= 0:
            raise ConfigurationError("aggregate rate must be positive")
        self.file = file
        self._entries = np.flatnonzero(rates)
        self._probs = rates[self._entries] / self.total_rate
        self._rng = np.random.default_rng(seed)

    def generate(self, duration: float, start: float = 0.0) -> Iterator[Request]:
        """Yield requests with ``start < time <= start + duration``."""
        if duration < 0:
            raise ConfigurationError(f"duration must be non-negative, got {duration}")
        t = start
        end = start + duration
        while True:
            t += float(self._rng.exponential(1.0 / self.total_rate))
            if t > end:
                return
            entry = int(self._rng.choice(self._entries, p=self._probs))
            yield Request(time=t, entry=entry, file=self.file)

    def sample_batch(self, count: int, start: float = 0.0) -> list[Request]:
        """Exactly ``count`` requests (convenience for tests)."""
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        gaps = self._rng.exponential(1.0 / self.total_rate, size=count)
        times = start + np.cumsum(gaps)
        entries = self._rng.choice(self._entries, p=self._probs, size=count)
        return [
            Request(time=float(t), entry=int(e), file=self.file)
            for t, e in zip(times, entries)
        ]
