"""The locality demand model (paper §6, Figures 7–8).

    "a locality model where 80% of the requests are received by 20% of
    the nodes.  Such a locality mode often happens when a certain
    region of the P2P system accesses this file more frequently than
    the rest part of the system."

A seeded fraction of the live nodes forms the *hot region*; it receives
``hot_share`` of the aggregate demand, the rest is spread over the cold
nodes.
"""

from __future__ import annotations

import random

import numpy as np

from ..core.errors import ConfigurationError
from ..core.liveness import LivenessView

__all__ = ["LocalityDemand"]


class LocalityDemand:
    """hot_share of demand on hot_fraction of the live nodes (80/20)."""

    name = "locality"

    def __init__(
        self,
        hot_fraction: float = 0.2,
        hot_share: float = 0.8,
        seed: int = 0,
    ) -> None:
        if not 0.0 < hot_fraction < 1.0:
            raise ConfigurationError(f"hot_fraction must be in (0,1), got {hot_fraction}")
        if not 0.0 <= hot_share <= 1.0:
            raise ConfigurationError(f"hot_share must be in [0,1], got {hot_share}")
        self.hot_fraction = hot_fraction
        self.hot_share = hot_share
        self.seed = seed

    def hot_nodes(self, liveness: LivenessView) -> list[int]:
        """The seeded hot region (deterministic per seed + liveness)."""
        live = list(liveness.live_pids())
        count = max(1, round(self.hot_fraction * len(live)))
        rng = random.Random(self.seed)
        return sorted(rng.sample(live, count))

    def rates(self, total_rate: float, liveness: LivenessView) -> np.ndarray:
        if total_rate < 0:
            raise ConfigurationError(f"total rate must be non-negative, got {total_rate}")
        live = list(liveness.live_pids())
        if not live:
            raise ConfigurationError("no live nodes to receive demand")
        hot = set(self.hot_nodes(liveness))
        cold = [p for p in live if p not in hot]
        rates = np.zeros(1 << liveness.m)
        if cold:
            rates[sorted(hot)] = total_rate * self.hot_share / len(hot)
            rates[cold] = total_rate * (1.0 - self.hot_share) / len(cold)
        else:  # degenerate: everything is hot
            rates[sorted(hot)] = total_rate / len(hot)
        return rates

    def __repr__(self) -> str:
        return (
            f"LocalityDemand(hot_fraction={self.hot_fraction}, "
            f"hot_share={self.hot_share}, seed={self.seed})"
        )
