"""Zipf-skewed demand — an extension beyond the paper's two models.

Real P2P access patterns are commonly Zipf-distributed.  Node weights
follow ``rank^(-s)`` with the rank permutation seeded, giving a smooth
knob between uniform (``s = 0``) and extreme hot-spotting.
"""

from __future__ import annotations

import random

import numpy as np

from ..core.errors import ConfigurationError
from ..core.liveness import LivenessView

__all__ = ["ZipfDemand"]


class ZipfDemand:
    """Entry rates proportional to ``rank^(-s)`` over live nodes."""

    name = "zipf"

    def __init__(self, s: float = 1.0, seed: int = 0) -> None:
        if s < 0:
            raise ConfigurationError(f"Zipf exponent must be non-negative, got {s}")
        self.s = s
        self.seed = seed

    def rates(self, total_rate: float, liveness: LivenessView) -> np.ndarray:
        if total_rate < 0:
            raise ConfigurationError(f"total rate must be non-negative, got {total_rate}")
        live = list(liveness.live_pids())
        if not live:
            raise ConfigurationError("no live nodes to receive demand")
        rng = random.Random(self.seed)
        rng.shuffle(live)
        weights = np.arange(1, len(live) + 1, dtype=float) ** (-self.s)
        weights /= weights.sum()
        rates = np.zeros(1 << liveness.m)
        rates[live] = total_rate * weights
        return rates

    def __repr__(self) -> str:
        return f"ZipfDemand(s={self.s}, seed={self.seed})"
