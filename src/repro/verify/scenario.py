"""The scenario model: serializable event sequences over a live system.

A :class:`Scenario` is a fully deterministic script — a system header
(``m``, ``b``, initially dead PIDs, RNG seed) plus an ordered list of
:class:`ScenarioEvent`\\ s.  The same scenario always produces the same
system trajectory, which is what makes shrinking and replay possible.

Events are applied *best-effort*: an event whose preconditions no
longer hold (a get at a dead entry, a replicate of an uninserted file)
is deterministically skipped rather than raising.  That robustness is
what lets the delta-debugging shrinker delete arbitrary prefixes of a
failing sequence and still run the remainder.

A scenario may carry a ``mutation`` tag — a named, deliberately wrong
behaviour injected at the application layer (used by the test suite to
prove the fuzzer catches real bugs; never set in production runs).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any

from ..cluster.system import LessLogSystem
from ..core.errors import ConfigurationError, FileNotFoundInSystemError
from ..net.message import Message, MessageKind
from ..net.reliability import RequestTracker, RetryPolicy
from ..net.topology import ConstantLatency
from ..net.transport import Transport
from ..node.storage import FileOrigin
from ..sim.engine import Engine
from ..sim.rng import derive_seed
from ..sim.trace import Tracer

__all__ = [
    "MUTATIONS",
    "Scenario",
    "ScenarioEvent",
    "ScenarioHarness",
    "generate_scenario",
]

_FORMAT_VERSION = 1

#: Transport address of the client edge (matches the DES driver's).
_CLIENT = -1

#: Named fault injections the harness understands (test-only knobs).
MUTATIONS = (
    "misplace-replica",
    "skip-update",
    "conflate-drops",
    "drop-timeout",
    "phantom-shed",
    "stale-hint",
)


@dataclass(frozen=True)
class ScenarioEvent:
    """One step of a scenario: an operation plus its parameters."""

    op: str
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"op": self.op, **self.params}

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioEvent":
        params = {k: v for k, v in data.items() if k != "op"}
        return cls(op=str(data["op"]), params=params)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.op}({inner})"


@dataclass
class Scenario:
    """A deterministic script: system header + event list."""

    m: int
    b: int
    seed: int
    dead: list[int] = field(default_factory=list)
    mutation: str | None = None
    events: list[ScenarioEvent] = field(default_factory=list)

    def with_events(self, events: list[ScenarioEvent]) -> "Scenario":
        """A copy of this scenario running a different event list."""
        return Scenario(
            m=self.m, b=self.b, seed=self.seed, dead=list(self.dead),
            mutation=self.mutation, events=list(events),
        )

    def to_dict(self) -> dict:
        return {
            "format": _FORMAT_VERSION,
            "m": self.m,
            "b": self.b,
            "seed": self.seed,
            "dead": sorted(self.dead),
            "mutation": self.mutation,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        if data.get("format") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported scenario format {data.get('format')!r}"
            )
        return cls(
            m=int(data["m"]),
            b=int(data["b"]),
            seed=int(data["seed"]),
            dead=[int(p) for p in data.get("dead", [])],
            mutation=data.get("mutation"),
            events=[ScenarioEvent.from_dict(e) for e in data.get("events", [])],
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))


class ScenarioHarness:
    """Builds the system under test and applies scenario events to it.

    Owns the full stack the fuzzer exercises: the synchronous
    :class:`LessLogSystem` (with tracing enabled so metric/trace
    reconciliation is checkable), plus a :class:`Transport` over a
    discrete-event :class:`Engine` sharing the system's metrics and
    tracer — the ``net`` event drives lossy/dead deliveries through it.
    """

    def __init__(self, scenario: Scenario) -> None:
        if scenario.mutation is not None and scenario.mutation not in MUTATIONS:
            raise ConfigurationError(
                f"unknown mutation {scenario.mutation!r}; known: {MUTATIONS}"
            )
        self.scenario = scenario
        self.tracer = Tracer(enabled=True)
        self.system = LessLogSystem.build(
            m=scenario.m,
            b=scenario.b,
            dead=set(scenario.dead),
            seed=scenario.seed,
            tracer=self.tracer,
        )
        self.engine = Engine()
        self.transport = Transport(
            self.engine,
            latency=ConstantLatency(0.01),
            rng=random.Random(scenario.seed ^ 0x5EED),
            metrics=self.system.metrics,
            tracer=self.tracer,
        )
        self.reliability = RequestTracker(
            self.engine,
            metrics=self.system.metrics,
            tracer=self.tracer,
            seed=derive_seed(scenario.seed, "retry-jitter"),
            liveness=self.system.is_live,
        )
        self.transport.register(_CLIENT, self._client_edge)
        self.applied = 0
        self.skipped = 0
        self.last_replica_target: int | None = None
        self.live_reports: list[Any] = []
        """Conformance reports from ``live_segment`` events, in order
        (audited by the runtime-oracle-conformance invariant)."""
        self.overload_reports: list[dict[str, Any]] = []
        """Accounting records from ``live_overload`` events, in order
        (audited by the overload-shed-conservation invariant)."""
        self.scaleout_reports: list[dict[str, Any]] = []
        """Lifecycle ledgers from ``live_scaleout`` events, in order
        (audited by the scaleout-lifecycle-conservation invariant)."""

    def _client_edge(self, message: Message) -> None:
        """The client endpoint: any reply settles its tracked request.

        An ``OVERLOAD`` reply is not a completion — it hands the tracker
        the shedder's redirect hint so the request either retries at the
        hinted replica or terminates in the shed-letter queue.
        """
        if message.kind in (MessageKind.GET_REPLY, MessageKind.GET_FAULT):
            self.reliability.complete(message.request_id)
        elif message.kind is MessageKind.OVERLOAD:
            payload = message.payload if isinstance(message.payload, dict) else {}
            redirect = payload.get("redirect")
            self.reliability.on_overload(
                message.request_id,
                redirect=redirect if isinstance(redirect, int) else None,
            )

    # -- precondition probes (shared with invariants) ----------------------

    def _usable_file(self, name: str) -> bool:
        system = self.system
        return name in system.catalog and name not in system.faults

    def peek_replicate(self, event: ScenarioEvent) -> tuple[str, int] | None:
        """The (file, source holder) a replicate event would act on.

        Deterministic and side-effect-free, so invariants can observe
        pre-step state (e.g. the pre-replication load) for exactly the
        replication the harness is about to perform.
        """
        name = event.params["file"]
        if not self._usable_file(name):
            return None
        holders = self.system.holders_of(name)
        if not holders:
            return None
        return name, holders[event.params.get("holder", 0) % len(holders)]

    # -- event application --------------------------------------------------

    def apply(self, event: ScenarioEvent) -> bool:
        """Apply one event; returns whether it ran (vs. was skipped)."""
        handler = getattr(self, f"_apply_{event.op}", None)
        if handler is None:
            raise ConfigurationError(f"unknown scenario op {event.op!r}")
        self.last_replica_target = None
        ran = bool(handler(event))
        if ran:
            self.applied += 1
        else:
            self.skipped += 1
        return ran

    def _apply_insert(self, event: ScenarioEvent) -> bool:
        name = event.params["file"]
        if name in self.system.catalog:
            return False
        self.system.insert(name, payload=f"{name}@v1")
        return True

    def _apply_get(self, event: ScenarioEvent) -> bool:
        name, entry = event.params["file"], event.params["entry"]
        if not self._usable_file(name) or not self.system.is_live(entry):
            return False
        try:
            self.system.get(name, entry=entry)
        except FileNotFoundInSystemError:
            # A routing fault on a non-lost file is a violation — the
            # routing invariant reports it; accounting stays consistent.
            pass
        return True

    def _apply_update(self, event: ScenarioEvent) -> bool:
        name = event.params["file"]
        if not self._usable_file(name):
            return False
        version = self.system.catalog[name].version + 1
        payload = f"{name}@v{version}"
        if self.scenario.mutation == "skip-update":
            return self._mutated_skip_update(name, payload)
        self.system.update(name, payload=payload)
        return True

    def _apply_replicate(self, event: ScenarioEvent) -> bool:
        resolved = self.peek_replicate(event)
        if resolved is None:
            return False
        name, source = resolved
        if self.scenario.mutation == "misplace-replica":
            return self._mutated_misplace(name, source)
        self.last_replica_target = self.system.replicate(name, overloaded=source)
        return True

    def _apply_remove_replica(self, event: ScenarioEvent) -> bool:
        name = event.params["file"]
        if not self._usable_file(name):
            return False
        system = self.system
        replicas = [
            pid
            for pid in system.holders_of(name)
            if system.stores[pid].get(name, count_access=False).origin
            is FileOrigin.REPLICATED
        ]
        if not replicas:
            return False
        system.remove_replica(name, replicas[event.params.get("index", 0) % len(replicas)])
        return True

    def _apply_join(self, event: ScenarioEvent) -> bool:
        pid = event.params["pid"]
        if self.system.is_live(pid):
            return False
        self.system.join(pid)
        return True

    def _apply_leave(self, event: ScenarioEvent) -> bool:
        pid = event.params["pid"]
        if not self.system.is_live(pid) or self.system.n_live <= 1:
            return False
        self.system.leave(pid)
        return True

    def _apply_fail(self, event: ScenarioEvent) -> bool:
        pid = event.params["pid"]
        if not self.system.is_live(pid) or self.system.n_live <= 1:
            return False
        self.system.fail(pid)
        return True

    def _apply_workload(self, event: ScenarioEvent) -> bool:
        """A burst of client gets: Zipf- or uniform-distributed files."""
        system = self.system
        names = sorted(n for n in system.catalog if n not in system.faults)
        live = sorted(system.membership.live_pids())
        if not names or not live:
            return False
        rng = random.Random(event.params.get("seed", 0))
        if event.params.get("dist", "uniform") == "zipf":
            s = float(event.params.get("zipf_s", 1.0))
            weights = [(rank + 1) ** (-s) for rank in range(len(names))]
        else:
            weights = [1.0] * len(names)
        for _ in range(int(event.params.get("requests", 8))):
            name = rng.choices(names, weights=weights)[0]
            entry = rng.choice(live)
            try:
                system.get(name, entry=entry)
            except FileNotFoundInSystemError:
                pass  # surfaced by the routing invariant
        return True

    def _apply_live_segment(self, event: ScenarioEvent) -> bool:
        """Run a seeded segment through the *live asyncio runtime*.

        The runtime-driven fuzzer op: boots a small `LiveCluster`
        (independent of the DES system under test — the segment is a
        self-contained probe), drives a generated op sequence over real
        wire frames, replays the cluster's op log through the
        synchronous oracle, and records the conformance report for the
        ``runtime-oracle-conformance`` invariant to audit.  Parameters
        select the codec mix and fast-path knobs, so fuzzing covers
        mixed-version clusters and coalesced/batched configurations.
        """
        import asyncio

        from ..runtime.cluster import RuntimeConfig
        from ..runtime.conformance import WorkloadSpec, run_conformance

        params = event.params
        m = max(2, min(int(params.get("m", 3)), 3))
        b = int(params.get("b", 1))
        if not 0 <= b < m:
            b = 0
        spec = WorkloadSpec(
            m=m,
            b=b,
            seed=int(params.get("seed", 0)),
            files=max(1, min(int(params.get("files", 3)), 6)),
            ops=max(0, min(int(params.get("ops", 12)), 24)),
            churn=bool(params.get("churn", True)),
        )
        config = RuntimeConfig(
            m=m,
            b=b,
            seed=spec.seed,
            v1_pids=(0,) if params.get("mixed") else (),
            coalesce_bytes=max(0, int(params.get("coalesce_bytes", 0))),
            batch_max=max(1, int(params.get("batch_max", 16))),
        )
        report = asyncio.run(run_conformance(spec, config=config))
        self.live_reports.append(report)
        return True

    def _apply_live_overload(self, event: ScenarioEvent) -> bool:
        """A flash-crowd burst against a bounded-inbox *live cluster*.

        Boots a small ``LiveCluster`` with admission control armed
        (tiny ``inbox_limit``, a generated shed × queue × victim policy
        cell), fires a hot-skewed open-loop burst through the load
        generator, and records the client-side ledger plus the oracle
        conformance verdict for the ``overload-shed-conservation``
        invariant to audit: every fired request must land in exactly one
        terminal bucket even when most of them are refused, and shed
        GETs must leave durable state untouched.
        """
        import asyncio

        from ..runtime.client import LoadGenerator, RuntimeClient, WorkloadShape
        from ..runtime.cluster import LiveCluster, RuntimeConfig
        from ..runtime.conformance import diff_states, replay_oplog
        from ..runtime.overload import OverloadPolicy

        params = event.params
        try:
            policy = OverloadPolicy(
                shed=str(params.get("shed", "conservative")),
                queue=str(params.get("queue", "fcfs")),
                victim=str(params.get("victim", "lifo")),
            )
        except ValueError:
            return False
        m = max(2, min(int(params.get("m", 3)), 3))
        b = int(params.get("b", 1))
        if not 0 <= b < m:
            b = 0
        config = RuntimeConfig(
            m=m,
            b=b,
            seed=int(params.get("seed", 0)),
            inbox_limit=max(1, min(int(params.get("inbox_limit", 4)), 32)),
            shed_policy=policy.shed,
            queue_policy=policy.queue,
            victim_policy=policy.victim,
            slo_budget=float(params.get("slo_budget", 0.05)),
            service_time=max(0.0, min(float(params.get("service_time", 0.002)), 0.01)),
        )
        files = max(1, min(int(params.get("files", 2)), 4))
        rps = max(20.0, min(float(params.get("rps", 400.0)), 1200.0))
        duration = max(0.05, min(float(params.get("duration", 0.2)), 0.5))

        async def burst():
            cluster = await LiveCluster.start(config)
            try:
                names = [f"hot-{i}.dat" for i in range(files)]
                boot = await RuntimeClient(cluster, min(cluster.nodes)).connect()
                for name in names:
                    await boot.insert(name, f"payload of {name}")
                await boot.close()
                await cluster.drain()
                gen = LoadGenerator(
                    cluster,
                    names,
                    WorkloadShape(kind="zipf", s=2.0),
                    seed=config.seed,
                    timeout=2.0,
                )
                report = await gen.run_open_loop(rps=rps, duration=duration)
                await gen.close()
                await cluster.quiesce()
                system = replay_oplog(cluster.oplog, config, cluster.initial_live)
                system.check_invariants()
                return report, diff_states(cluster, system)
            finally:
                await cluster.shutdown()

        report, conformance = asyncio.run(burst())
        record = self._overload_record(policy, report, conformance, churn=[])
        if self.scenario.mutation == "phantom-shed":
            # Bug injection: account a shed that never happened, so the
            # terminal buckets over-count the fired requests.
            record["shed"] += 1
        self._seal_overload_record(record)
        return True

    def _overload_record(
        self, policy, report, conformance, churn: list[str]
    ) -> dict[str, Any]:
        """The shared client-side ledger for an overload burst record."""
        return {
            "cell": policy.cell,
            "requests": report.requests,
            "completed": report.completed,
            "faults": report.faults,
            "errors": report.errors,
            "timeouts": report.timeouts,
            "shed": report.shed,
            "churn_lost": report.churn_lost,
            "stale_sheds": report.stale_sheds,
            "overloads": report.overloads,
            "redirected": report.redirected,
            "rerouted": report.rerouted,
            "churn": churn,
            "conformant": conformance.ok,
            "conformance_detail": "" if conformance.ok else conformance.render(),
        }

    def _seal_overload_record(self, record: dict[str, Any]) -> None:
        """Close the ledger: the five terminals (plus churn loss) must
        cover every fired request exactly once."""
        record["conserved"] = record["requests"] == (
            record["completed"]
            + record["faults"]
            + record["errors"]
            + record["timeouts"]
            + record["shed"]
            + record["churn_lost"]
        )
        self.overload_reports.append(record)

    def _apply_live_churn_overload(self, event: ScenarioEvent) -> bool:
        """A flash-crowd burst with mid-burst churn against a live cluster.

        Extends ``live_overload`` with the churn regime: the hottest
        file gets a pre-seeded replica (via the recorded admin overload
        trigger), then its *home* is silently killed mid-burst
        (``crash(announce=False)``) — no REGISTER_DEAD goes out, so the
        surviving replica keeps shedding with redirect hints that name
        the corpse until its own FINDLIVENODE discovery catches up.
        Optional announced crash/join events ride the same seeded
        :class:`~repro.runtime.churn.ChurnInjector` schedule.  The
        autopsy (announce broadcast, recovery, ``recover`` oplog record,
        inherited-load attribution) runs after the burst, before the
        oracle replay, so the conformance diff sees a self-organized
        membership.  The record feeds the ``overload-shed-conservation``
        invariant (terminals now include ``churn_lost``) and the
        ``stale-redirect`` invariant: an admitted request must never
        terminally shed solely because its hint was dead.
        """
        import asyncio

        from ..runtime.churn import ChurnEvent, ChurnInjector
        from ..runtime.client import LoadGenerator, RuntimeClient, WorkloadShape
        from ..runtime.cluster import LiveCluster, RuntimeConfig
        from ..runtime.conformance import diff_states, replay_oplog
        from ..runtime.overload import OverloadPolicy

        params = event.params
        try:
            policy = OverloadPolicy(
                shed=str(params.get("shed", "conservative")),
                queue=str(params.get("queue", "fcfs")),
                victim=str(params.get("victim", "lifo")),
            )
        except ValueError:
            return False
        m = max(2, min(int(params.get("m", 3)), 3))
        b = int(params.get("b", 1))
        if not 0 <= b < m:
            b = 0
        config = RuntimeConfig(
            m=m,
            b=b,
            seed=int(params.get("seed", 0)),
            inbox_limit=max(1, min(int(params.get("inbox_limit", 4)), 32)),
            shed_policy=policy.shed,
            queue_policy=policy.queue,
            victim_policy=policy.victim,
            slo_budget=float(params.get("slo_budget", 0.05)),
            service_time=max(0.0, min(float(params.get("service_time", 0.002)), 0.01)),
        )
        files = max(1, min(int(params.get("files", 2)), 4))
        rps = max(20.0, min(float(params.get("rps", 400.0)), 1200.0))
        duration = max(0.1, min(float(params.get("duration", 0.25)), 0.5))

        async def burst():
            cluster = await LiveCluster.start(config)
            try:
                names = [f"hot-{i}.dat" for i in range(files)]
                boot = await RuntimeClient(cluster, min(cluster.nodes)).connect()
                for name in names:
                    await boot.insert(name, f"payload of {name}")
                await boot.close()
                await cluster.drain()
                hot = names[0]
                home = min(cluster.holders(hot))
                # Pre-seed replicas of the hot file (a recorded,
                # replayable decision), then silently kill every holder
                # but one mid-burst: the survivor's fresh holder view
                # goes empty, so its shed hints fall back on cached —
                # now stale — knowledge, and no status word was ever
                # told.  Exactly the regime the client-side reroute
                # must absorb.
                await cluster.trigger_overload(home, hot, config.seed)
                await cluster.drain()
                victims = sorted(cluster.holders(hot))[:-1]
                events = [
                    ChurnEvent(at=(0.3 + 0.1 * i) * duration, action="kill", pid=v)
                    for i, v in enumerate(victims)
                ]
                if params.get("crash"):
                    events.append(ChurnEvent(at=0.55 * duration, action="crash"))
                if params.get("join"):
                    events.append(ChurnEvent(at=0.7 * duration, action="join"))
                injector = ChurnInjector(
                    cluster, events, seed=config.seed, min_live=3
                )
                gen = LoadGenerator(
                    cluster,
                    names,
                    WorkloadShape(kind="zipf", s=2.0),
                    seed=config.seed,
                    timeout=2.0,
                    churn_reroute=self.scenario.mutation != "stale-hint",
                )
                injector.start()
                report = await gen.run_open_loop(rps=rps, duration=duration)
                await gen.close()
                applied = await injector.finalize()
                await cluster.quiesce()
                system = replay_oplog(cluster.oplog, config, cluster.initial_live)
                system.check_invariants()
                return report, diff_states(cluster, system), applied
            finally:
                await cluster.shutdown()

        report, conformance, applied = asyncio.run(burst())
        churn = [
            f"{e['action']}@P({e['pid']})" for e in applied if e["pid"] is not None
        ]
        record = self._overload_record(policy, report, conformance, churn=churn)
        self._seal_overload_record(record)
        return True

    def _apply_live_scaleout(self, event: ScenarioEvent) -> bool:
        """A burst against a fleet of *real worker OS processes*.

        The scale-out fuzzer op: forks a small multi-process cluster
        behind the bootstrap/address-book service, drives a seeded
        burst over loopback TCP (optionally ``kill -9``-ing one worker
        mid-burst, with the §5 autopsy after), then collects the
        central snapshot and replays its decision-ordered oplog through
        the oracle.  The conformance report feeds the
        ``runtime-oracle-conformance`` invariant; the worker lifecycle
        ledger (request conservation + goodbye snapshots from every
        cleanly terminated worker) feeds
        ``scaleout-lifecycle-conservation``.

        With ``client_shards >= 2`` the burst is driven by a
        :class:`ShardedLoadDriver` — K forked load processes over
        disjoint entry partitions — and the *merged* ledger is audited
        by the very same conservation and conformance predicates, so
        the sharded measurement path is fuzzed alongside the runtime
        it measures.
        """
        import asyncio

        from ..runtime.client import LoadGenerator, RuntimeClient
        from ..runtime.cluster import RuntimeConfig
        from ..runtime.conformance import verify_snapshot
        from ..runtime.scaleout import (
            ScaleoutEndpoint,
            ScaleoutSupervisor,
            ShardedLoadDriver,
        )

        params = event.params
        n_nodes = max(3, min(int(params.get("nodes", 4)), 6))
        m = 2
        while (1 << m) < n_nodes:
            m += 1
        config = RuntimeConfig(
            m=m, b=1, seed=int(params.get("seed", 0)), tcp=True,
            capacity=40.0,
            service_time=max(0.0, min(float(params.get("service_time", 0.002)), 0.01)),
            cooldown=0.05,
        )
        files = max(1, min(int(params.get("files", 3)), 4))
        rps = max(20.0, min(float(params.get("rps", 60.0)), 200.0))
        duration = max(0.1, min(float(params.get("duration", 0.3)), 0.5))
        kill = bool(params.get("kill", False)) and n_nodes > 3
        client_shards = max(0, min(int(params.get("client_shards", 0)), 3))
        names = [f"so-{i}" for i in range(files)]

        supervisor = ScaleoutSupervisor(config, n_nodes=n_nodes, mode="fork")
        host, port = supervisor.launch()
        driver: ShardedLoadDriver | None = None
        if client_shards >= 2:
            # Fork the shard drivers while no event loop exists —
            # the same pre-loop discipline as the supervisor itself.
            driver = ShardedLoadDriver(
                host, port, names, shards=client_shards,
                rps=rps, duration=duration, seed=config.seed,
                timeout=5.0,
                inherited_sockets=[supervisor.listen_socket],
            )
            driver.launch()

        async def burst():
            await supervisor.start(boot_timeout=60.0)
            endpoint = await ScaleoutEndpoint.connect(host, port)
            killed: list[int] = []
            try:
                boot = await RuntimeClient(endpoint, min(endpoint.nodes)).connect()
                for name in names:
                    await boot.insert(name, f"payload of {name}")
                await boot.close()
                await endpoint.drain()

                async def mid_burst_kill():
                    await asyncio.sleep(duration / 2)
                    victim = sorted(endpoint.nodes)[
                        int(params.get("victim", 0)) % len(endpoint.nodes)
                    ]
                    await supervisor.kill(victim)
                    killed.append(victim)

                if driver is not None:
                    driver.start()
                    if kill:
                        await mid_burst_kill()
                    report = await driver.collect()
                else:
                    gen = LoadGenerator(endpoint, names, seed=config.seed,
                                        timeout=5.0)
                    run = asyncio.ensure_future(
                        gen.run_open_loop(rps=rps, duration=duration)
                    )
                    if kill:
                        await mid_burst_kill()
                    report = await run
                    await gen.close()
                for victim in killed:
                    await supervisor.bootstrap.announce_crash(victim)
                await endpoint.quiesce()
                snapshot, _stats = await supervisor.bootstrap.collect_snapshot()
                return report, verify_snapshot(snapshot), killed
            finally:
                await endpoint.close()
                await supervisor.shutdown()

        try:
            report, conformance, killed = asyncio.run(burst())
        finally:
            if driver is not None:
                driver.kill()
        self.live_reports.append(conformance)
        self.scaleout_reports.append({
            "nodes": n_nodes,
            "client_shards": client_shards if driver is not None else 1,
            "requests": report.requests,
            "completed": report.completed,
            "faults": report.faults,
            "errors": report.errors,
            "timeouts": report.timeouts,
            "shed": report.shed,
            "churn_lost": report.churn_lost,
            "conserved": report.conserved,
            "killed": killed,
            "expected_goodbyes": n_nodes - len(killed),
            "goodbyes": len(supervisor.bootstrap.goodbyes),
            "conformant": conformance.ok,
            "conformance_detail": "; ".join(conformance.mismatches[:3]),
        })
        return True

    def _sync_endpoints(self, handler_factory) -> None:
        """(Re-)register every live PID on the transport; drop dead ones.

        ``handler_factory(pid)`` builds the message handler each live
        node runs for the next burst — a sink for raw net probes, the
        serving loop for reliable workloads.
        """
        for pid in range(1 << self.system.m):
            if self.system.is_live(pid):
                self.transport.register(pid, handler_factory(pid))
            elif self.transport.is_registered(pid):
                self.transport.unregister(pid)

    def _apply_net(self, event: ScenarioEvent) -> bool:
        """A burst of raw transport sends under loss, then drain.

        Destinations are drawn from the *whole* identifier space, so
        some deliveries hit unregistered (dead) endpoints — exercising
        both drop reasons that the reconciliation invariants audit.
        """
        system, transport = self.system, self.transport
        n = 1 << system.m
        self._sync_endpoints(lambda pid: lambda message: None)
        transport.loss_rate = float(event.params.get("loss_rate", 0.0))
        rng = random.Random(event.params.get("seed", 0))
        for _ in range(int(event.params.get("messages", 10))):
            transport.send(
                Message(
                    MessageKind.GET,
                    src=rng.randrange(n),
                    dst=rng.randrange(n),
                    file="net-probe",
                )
            )
        self.engine.run()
        if self.scenario.mutation == "conflate-drops":
            # Bug injection: account a dead-drop under the loss reason
            # without a matching trace record (the pre-fix conflation).
            system.metrics.counter("transport.dropped.loss").inc()
        return True

    def _serve_get(
        self, pid: int, shed_rate: float = 0.0, shed_rng=None,
        stale_rate: float = 0.0,
    ):
        """Handler a live node runs during a reliable workload: resolve
        the request through the system's own routing walk and reply to
        the client over the (lossy) transport.

        With ``shed_rate > 0`` the node models admission-control
        pressure: it refuses that fraction of GETs with an ``OVERLOAD``
        reply carrying a redirect hint (another live holder, or ``-1``
        when it knows none) — the DES dual of the live runtime's
        bounded-inbox shed path.  With ``stale_rate > 0`` that fraction
        of the hints instead names a *dead* PID, modelling a shedder
        whose status word has not yet processed a silent crash — the
        tracker's liveness oracle must dodge those (reroute or
        churn-lose), never fire at the corpse.
        """

        def handle(message: Message) -> None:
            if message.kind is not MessageKind.GET:
                return
            if shed_rate and shed_rng is not None and shed_rng.random() < shed_rate:
                alternates = sorted(
                    h
                    for h in self.system.holders_of(message.file)
                    if h != pid and self.system.is_live(h)
                ) if message.file in self.system.catalog else []
                redirect = (
                    alternates[shed_rng.randrange(len(alternates))]
                    if alternates
                    else -1
                )
                if stale_rate and shed_rng.random() < stale_rate:
                    dead = sorted(
                        p for p in range(1 << self.system.m)
                        if not self.system.is_live(p)
                    )
                    if dead:
                        redirect = dead[shed_rng.randrange(len(dead))]
                self.transport.send(
                    message.reply(
                        MessageKind.OVERLOAD,
                        payload={"shed_by": pid, "redirect": redirect},
                    )
                )
                return
            result = self.system.resolve(message.file, entry=pid)
            kind = (
                MessageKind.GET_FAULT if result is None else MessageKind.GET_REPLY
            )
            self.transport.send(message.reply(kind))

        return handle

    def _apply_reliable_workload(self, event: ScenarioEvent) -> bool:
        """Client GETs driven through the request-reliability layer.

        Each request rides the lossy transport with a per-attempt
        deadline; on timeout it retries with backoff, re-resolving its
        entry through ``LessLogSystem.retry_entry`` (the ``FINDLIVENODE``
        dual) — with ``entries="all"`` some requests deliberately enter
        at dead PIDs and must route around them.  The engine drains
        fully, so every request ends the event completed or
        dead-lettered; the ``request-lifecycle-conservation`` invariant
        audits exactly that.
        """
        system, transport = self.system, self.transport
        names = sorted(n for n in system.catalog if n not in system.faults)
        live = sorted(system.membership.live_pids())
        if not names or not live:
            return False
        shed_rate = max(0.0, min(float(event.params.get("shed_rate", 0.0)), 1.0))
        stale_rate = max(0.0, min(float(event.params.get("stale_hint_rate", 0.0)), 1.0))
        shed_rng = random.Random(int(event.params.get("seed", 0)) ^ 0x0F_F10AD)
        self._sync_endpoints(
            lambda pid: self._serve_get(
                pid, shed_rate=shed_rate, shed_rng=shed_rng, stale_rate=stale_rate
            )
        )
        transport.loss_rate = float(event.params.get("loss_rate", 0.0))
        policy = RetryPolicy(
            timeout=float(event.params.get("timeout", 0.05)),
            max_attempts=int(event.params.get("max_attempts", 5)),
            backoff_base=float(event.params.get("backoff", 0.01)),
            jitter=float(event.params.get("jitter", 0.1)),
        )
        pool = (
            live
            if event.params.get("entries", "live") == "live"
            else sorted(range(1 << system.m))
        )
        rng = random.Random(event.params.get("seed", 0))
        for _ in range(int(event.params.get("requests", 8))):
            name = rng.choice(names)
            entry = rng.choice(pool)
            self.reliability.issue(
                Message(MessageKind.GET, src=_CLIENT, dst=entry, file=name),
                send=transport.send,
                reroute=lambda e, name=name: self.system.retry_entry(name, e),
                policy=policy,
            )
        if self.scenario.mutation == "drop-timeout":
            self._mutated_drop_timeout(policy)
        self.engine.run()
        return True

    # -- mutations (deliberate bugs, test-only) ------------------------------

    def _mutated_drop_timeout(self, policy: RetryPolicy) -> None:
        """Issue a doomed request, then lose its timeout event.

        The destination is never registered, so the GET always drops as
        ``dead``; with the deadline cancelled the request can neither
        complete nor expire — it is stuck inflight after the engine
        drains, which is exactly what the lifecycle invariant forbids.
        """
        message = Message(MessageKind.GET, src=_CLIENT, dst=-2, file="doomed")
        self.reliability.issue(message, send=self.transport.send, policy=policy)
        self.reliability._inflight[message.request_id].pending.cancel()

    def _mutated_misplace(self, name: str, source: int) -> bool:
        """Place an INSERTED-origin copy at a deterministic wrong node."""
        system = self.system
        from ..core.subtree import SubtreeView, subtree_of_pid

        entry = system.catalog[name]
        tree = system.tree(entry.target)
        for pid in sorted(system.membership.live_pids(), reverse=True):
            view = SubtreeView(tree, system.b, subtree_of_pid(tree, pid, system.b))
            if view.storage_node(system.membership) != pid and name not in system.stores[pid]:
                source_file = system.stores[source].get(name, count_access=False)
                system.stores[pid].store(
                    name, source_file.payload, source_file.version,
                    FileOrigin.INSERTED, system.now,
                )
                system.metrics.counter("system.replications").inc()
                system.tracer.emit(
                    system.now, "replicate", file=name, source=source, target=pid
                )
                self.last_replica_target = pid
                return True
        return False

    def _mutated_skip_update(self, name: str, payload: str) -> bool:
        """Run the update broadcast but skip the last reachable holder."""
        system = self.system
        catalog_entry = system.catalog[name]
        holders = system.reachable_holders(name)
        if len(holders) < 2:
            system.update(name, payload=payload)
            return True
        catalog_entry.version += 1
        for pid in holders[:-1]:
            system.stores[pid].update(name, payload, catalog_entry.version)
        system.metrics.counter("system.updates").inc()
        system.tracer.emit(
            system.now, "update", file=name, version=catalog_entry.version,
            updated=holders[:-1],
        )
        return True


def generate_scenario(
    seed: int,
    m: int = 5,
    b: int = 1,
    n_events: int = 40,
    mutation: str | None = None,
    max_files: int = 12,
) -> Scenario:
    """A seeded random scenario: churn, workloads, net bursts, file ops.

    Generation tracks a lightweight membership/catalog model so most
    events are applicable when they run, but the harness's best-effort
    semantics mean that is an optimization, not a requirement.
    """
    rng = random.Random(seed)
    n = 1 << m
    dead = sorted(rng.sample(range(n), rng.randint(0, max(1, n // 4))))
    live = set(range(n)) - set(dead)
    names: list[str] = []
    counter = 0
    events: list[ScenarioEvent] = []

    ops = ["insert", "get", "update", "replicate", "remove_replica",
           "join", "leave", "fail", "workload", "net", "reliable_workload",
           "live_segment", "live_overload", "live_churn_overload",
           "live_scaleout"]
    weights = [14, 18, 10, 12, 4, 8, 6, 6, 12, 10, 10, 2, 2, 2, 1]

    def any_file() -> str | None:
        return rng.choice(names) if names else None

    for _ in range(n_events):
        op = rng.choices(ops, weights=weights)[0]
        if op == "insert":
            if len(names) >= max_files:
                continue
            name = f"f{counter}"
            counter += 1
            names.append(name)
            events.append(ScenarioEvent("insert", {"file": name}))
        elif op in ("get", "update", "replicate", "remove_replica"):
            name = any_file()
            if name is None:
                continue
            params: dict[str, Any] = {"file": name}
            if op == "get":
                params["entry"] = rng.choice(sorted(live)) if live else 0
            elif op == "replicate":
                params["holder"] = rng.randrange(n)
            elif op == "remove_replica":
                params["index"] = rng.randrange(n)
            events.append(ScenarioEvent(op, params))
        elif op == "join":
            candidates = sorted(set(range(n)) - live)
            if not candidates:
                continue
            pid = rng.choice(candidates)
            live.add(pid)
            events.append(ScenarioEvent("join", {"pid": pid}))
        elif op in ("leave", "fail"):
            if len(live) <= 1:
                continue
            pid = rng.choice(sorted(live))
            live.discard(pid)
            events.append(ScenarioEvent(op, {"pid": pid}))
        elif op == "workload":
            dist = rng.choice(["zipf", "uniform"])
            params = {
                "dist": dist,
                "requests": rng.randint(4, 16),
                "seed": rng.randrange(1 << 30),
            }
            if dist == "zipf":
                params["zipf_s"] = round(rng.uniform(0.5, 1.5), 3)
            events.append(ScenarioEvent("workload", params))
        elif op == "net":
            events.append(
                ScenarioEvent(
                    "net",
                    {
                        "messages": rng.randint(5, 20),
                        "loss_rate": round(rng.uniform(0.0, 0.4), 3),
                        "seed": rng.randrange(1 << 30),
                    },
                )
            )
        elif op == "reliable_workload":
            events.append(
                ScenarioEvent(
                    "reliable_workload",
                    {
                        "requests": rng.randint(4, 12),
                        "loss_rate": round(rng.uniform(0.0, 0.3), 3),
                        "max_attempts": rng.randint(1, 6),
                        "entries": rng.choice(["live", "live", "all"]),
                        "shed_rate": rng.choice([0.0, 0.0, 0.15, 0.3]),
                        "stale_hint_rate": rng.choice([0.0, 0.0, 0.25]),
                        "seed": rng.randrange(1 << 30),
                    },
                )
            )
        elif op == "live_overload":  # flash-crowd probe, one policy cell
            events.append(
                ScenarioEvent(
                    "live_overload",
                    {
                        "shed": rng.choice(["conservative", "aggressive"]),
                        "queue": rng.choice(["fcfs", "priority"]),
                        "victim": rng.choice(["lifo", "fifo", "random"]),
                        "inbox_limit": rng.randint(2, 8),
                        "files": rng.randint(1, 3),
                        "rps": float(rng.choice([200, 400, 800])),
                        "duration": 0.15,
                        "seed": rng.randrange(1 << 30),
                    },
                )
            )
        elif op == "live_churn_overload":  # burst + mid-burst churn probe
            events.append(
                ScenarioEvent(
                    "live_churn_overload",
                    {
                        "shed": rng.choice(["conservative", "aggressive"]),
                        "queue": rng.choice(["fcfs", "priority"]),
                        "victim": rng.choice(["lifo", "fifo", "random"]),
                        "inbox_limit": rng.randint(2, 8),
                        "files": rng.randint(1, 3),
                        "rps": float(rng.choice([200, 400, 800])),
                        "duration": 0.25,
                        "crash": rng.random() < 0.5,
                        "join": rng.random() < 0.3,
                        "seed": rng.randrange(1 << 30),
                    },
                )
            )
        elif op == "live_scaleout":  # real worker OS processes over TCP
            params = {
                "nodes": rng.randint(4, 6),
                "files": rng.randint(2, 4),
                "rps": float(rng.choice([40, 60, 100])),
                "duration": 0.3,
                "kill": rng.random() < 0.5,
                "victim": rng.randrange(8),
                "seed": rng.randrange(1 << 30),
            }
            # Derived, not drawn: an extra rng draw here would shift
            # every op choice after this one and invalidate
            # seed-pinned regressions.
            params["client_shards"] = 2 if params["seed"] % 3 == 0 else 0
            events.append(ScenarioEvent("live_scaleout", params))
        else:  # live_segment — a self-contained live-runtime probe
            events.append(
                ScenarioEvent(
                    "live_segment",
                    {
                        "m": 3,
                        "b": rng.choice([0, 1]),
                        "files": rng.randint(2, 4),
                        "ops": rng.randint(6, 14),
                        "mixed": rng.random() < 0.5,
                        "coalesce_bytes": rng.choice([0, 4096]),
                        "seed": rng.randrange(1 << 30),
                    },
                )
            )
    return Scenario(
        m=m, b=b, seed=seed, dead=dead, mutation=mutation, events=events
    )
