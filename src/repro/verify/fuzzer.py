"""``ScenarioFuzzer``: randomized scenarios, audited after every step.

For each seed, generate a scenario (churn + lossy transport + Zipf /
uniform request workloads), apply it event by event, and evaluate the
whole invariant registry after every event.  The first violation stops
that scenario; the report carries everything needed to shrink and
replay it (the scenario truncated at the failing step).

An unexpected exception while *applying* an event is itself reported as
a violation of the implicit ``no-crash`` invariant — the fuzzer treats
"the system fell over" and "the system lied" identically.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field

from .invariants import AuditContext, Invariant, InvariantViolation, default_invariants
from .scenario import Scenario, ScenarioHarness, generate_scenario

__all__ = ["FuzzConfig", "FuzzReport", "ScenarioFuzzer", "Violation"]

NO_CRASH = "no-crash"
"""Implicit invariant name for exceptions raised by event application."""


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for one fuzzing campaign."""

    seeds: int = 25
    m: int = 5
    b: int = 1
    events: int = 40
    base_seed: int = 0
    mutation: str | None = None
    max_files: int = 12


@dataclass
class Violation:
    """One invariant breach, with the scenario that produced it."""

    invariant: str
    message: str
    seed: int
    step: int
    scenario: Scenario
    """The scenario truncated at the failing event (inclusive) — the
    shortest prefix known to reproduce, which is what gets shrunk."""

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "seed": self.seed,
            "step": self.step,
        }


@dataclass
class FuzzReport:
    """Outcome of a campaign."""

    config: FuzzConfig
    scenarios: int = 0
    events_applied: int = 0
    events_skipped: int = 0
    checks: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "config": {
                "seeds": self.config.seeds,
                "m": self.config.m,
                "b": self.config.b,
                "events": self.config.events,
                "base_seed": self.config.base_seed,
                "mutation": self.config.mutation,
            },
            "scenarios": self.scenarios,
            "events_applied": self.events_applied,
            "events_skipped": self.events_skipped,
            "checks": self.checks,
            "violations": [v.to_dict() for v in self.violations],
        }

    def render(self) -> str:
        lines = [
            f"fuzz: {self.scenarios} scenarios, "
            f"{self.events_applied} events applied "
            f"({self.events_skipped} skipped), "
            f"{self.checks} invariant checks",
        ]
        if self.ok:
            lines.append("no violations found")
        for violation in self.violations:
            lines.append(
                f"VIOLATION seed={violation.seed} step={violation.step} "
                f"[{violation.invariant}] {violation.message}"
            )
        return "\n".join(lines)


class ScenarioFuzzer:
    """Drives scenarios through the invariant registry."""

    def __init__(self, invariants_factory=default_invariants) -> None:
        self.invariants_factory = invariants_factory

    def run_scenario(
        self, scenario: Scenario, report: FuzzReport | None = None
    ) -> Violation | None:
        """Apply ``scenario`` step by step; returns its first violation."""
        invariants: list[Invariant] = self.invariants_factory()
        harness = ScenarioHarness(scenario)
        try:
            return self._drive(scenario, harness, invariants, report)
        finally:
            if report is not None:
                report.events_applied += harness.applied
                report.events_skipped += harness.skipped

    def _drive(
        self,
        scenario: Scenario,
        harness: ScenarioHarness,
        invariants: list[Invariant],
        report: FuzzReport | None,
    ) -> Violation | None:
        for step, event in enumerate(scenario.events):
            ctx = AuditContext(harness=harness, step=step, event=event)
            truncated = scenario.with_events(scenario.events[: step + 1])
            for invariant in invariants:
                invariant.observe_before(ctx)
            try:
                harness.apply(event)
            except Exception:
                return Violation(
                    invariant=NO_CRASH,
                    message=(
                        f"applying {event!r} raised:\n"
                        f"{traceback.format_exc(limit=4)}"
                    ),
                    seed=scenario.seed,
                    step=step,
                    scenario=truncated,
                )
            for invariant in invariants:
                try:
                    invariant.check(ctx)
                except InvariantViolation as violation:
                    return Violation(
                        invariant=violation.invariant,
                        message=violation.message,
                        seed=scenario.seed,
                        step=step,
                        scenario=truncated,
                    )
                finally:
                    if report is not None:
                        report.checks += 1
        return None

    def fuzz(self, config: FuzzConfig | None = None) -> FuzzReport:
        """Run a campaign of ``config.seeds`` seeded scenarios."""
        config = config if config is not None else FuzzConfig()
        report = FuzzReport(config=config)
        for i in range(config.seeds):
            seed = config.base_seed + i
            scenario = generate_scenario(
                seed=seed,
                m=config.m,
                b=config.b,
                n_events=config.events,
                mutation=config.mutation,
                max_files=config.max_files,
            )
            report.scenarios += 1
            violation = self.run_scenario(scenario, report=report)
            if violation is not None:
                report.violations.append(violation)
        return report
