"""Machine-checked verification: invariants, fuzzing, shrinking, replay.

The paper's claims — requests always reach a live copy, replica sets
respect the binomial-subtree placement and the ``2**b`` fault-tolerant
partition, updates reach every copy, replication never increases the
balanced load — are enforced here as an *invariant registry* evaluated
after every step of randomized scenarios, rather than spot-checked by
curated examples:

* :mod:`~repro.verify.invariants` — the ``Invariant`` protocol and the
  default registry of concrete system-wide checks;
* :mod:`~repro.verify.scenario` — the serializable scenario model
  (seeded event sequences) and the harness that applies them;
* :mod:`~repro.verify.fuzzer` — ``ScenarioFuzzer``: drive seeded random
  interleavings of churn, lossy transport, and Zipf/uniform workloads,
  checking all invariants after every event;
* :mod:`~repro.verify.shrink` — delta-debugging ``Shrinker`` that
  minimizes a failing event sequence to a small reproducible script;
* :mod:`~repro.verify.replay` — deterministic replay of a serialized
  failing scenario (``lesslog verify replay``).
"""

from .fuzzer import FuzzConfig, FuzzReport, ScenarioFuzzer, Violation
from .invariants import AuditContext, Invariant, InvariantViolation, default_invariants
from .replay import ReplayOutcome, replay_file, replay_scenario
from .scenario import Scenario, ScenarioEvent, ScenarioHarness, generate_scenario
from .shrink import Shrinker, load_repro, save_repro

__all__ = [
    "AuditContext",
    "FuzzConfig",
    "FuzzReport",
    "Invariant",
    "InvariantViolation",
    "ReplayOutcome",
    "Scenario",
    "ScenarioEvent",
    "ScenarioFuzzer",
    "ScenarioHarness",
    "Shrinker",
    "Violation",
    "default_invariants",
    "generate_scenario",
    "load_repro",
    "replay_file",
    "replay_scenario",
    "save_repro",
]
