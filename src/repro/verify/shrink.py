"""Delta-debugging shrinker for failing scenarios.

Given a scenario whose run violates an invariant, :class:`Shrinker`
minimizes the event list while preserving *that* invariant's failure
(classic ddmin: try dropping ever-smaller chunks, restart on progress,
finish with a one-at-a-time pass).  Scenario events apply best-effort,
so any subsequence is a runnable scenario — no repair step needed.

The result is serialized as seed + event list JSON (`save_repro`),
small enough to read, diff, and replay with ``lesslog verify replay``.
"""

from __future__ import annotations

import json
from pathlib import Path

from .fuzzer import ScenarioFuzzer, Violation
from .invariants import default_invariants
from .scenario import Scenario, ScenarioEvent

__all__ = ["Shrinker", "load_repro", "save_repro"]

_FORMAT_VERSION = 1


class Shrinker:
    """ddmin over a scenario's event list."""

    def __init__(
        self,
        invariants_factory=default_invariants,
        max_runs: int = 400,
    ) -> None:
        self.fuzzer = ScenarioFuzzer(invariants_factory)
        self.max_runs = max_runs
        self.runs = 0

    def _still_fails(
        self, scenario: Scenario, events: list[ScenarioEvent], invariant: str
    ) -> Violation | None:
        """Does the candidate event list reproduce the same invariant?"""
        if self.runs >= self.max_runs:
            return None
        self.runs += 1
        violation = self.fuzzer.run_scenario(scenario.with_events(events))
        if violation is not None and violation.invariant == invariant:
            return violation
        return None

    def shrink(
        self, scenario: Scenario, violation: Violation
    ) -> tuple[Scenario, Violation]:
        """Minimize ``scenario`` while still violating the same invariant.

        Returns the minimized scenario and the violation it produces.
        Always returns a *verified* failing pair — if no removal helps,
        that is the input truncated at its failing step.
        """
        self.runs = 0
        invariant = violation.invariant
        events = list(violation.scenario.events) or list(scenario.events)
        best = self._still_fails(scenario, events, invariant)
        if best is None:  # flaky input: hand back what we were given
            return violation.scenario, violation

        chunks = 2
        while len(events) > 1 and self.runs < self.max_runs:
            size = max(1, len(events) // chunks)
            progressed = False
            start = 0
            while start < len(events):
                candidate = events[:start] + events[start + size:]
                if not candidate:
                    start += size
                    continue
                result = self._still_fails(scenario, candidate, invariant)
                if result is not None:
                    events = candidate
                    best = result
                    progressed = True
                    # Re-scan from the same offset: the next chunk has
                    # shifted into this position.
                else:
                    start += size
            if progressed:
                chunks = max(2, chunks - 1)
            elif size == 1:
                break
            else:
                chunks = min(len(events), chunks * 2)

        # Final greedy single-event pass (ddmin granularity 1).
        index = 0
        while index < len(events) and self.runs < self.max_runs:
            if len(events) == 1:
                break
            candidate = events[:index] + events[index + 1:]
            result = self._still_fails(scenario, candidate, invariant)
            if result is not None:
                events = candidate
                best = result
            else:
                index += 1

        minimized = scenario.with_events(events)
        return minimized.with_events(
            events[: best.step + 1]
        ), best


def save_repro(path: Path | str, scenario: Scenario, violation: Violation) -> Path:
    """Write a replayable failing case: scenario + expected violation."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "format": _FORMAT_VERSION,
        "scenario": scenario.to_dict(),
        "violation": violation.to_dict(),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_repro(path: Path | str) -> tuple[Scenario, dict]:
    """Read a repro file back: (scenario, recorded-violation dict)."""
    document = json.loads(Path(path).read_text())
    if document.get("format") != _FORMAT_VERSION:
        raise ValueError(f"unsupported repro format {document.get('format')!r}")
    return Scenario.from_dict(document["scenario"]), dict(document["violation"])
