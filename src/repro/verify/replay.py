"""Deterministic replay of serialized failing scenarios.

``lesslog verify replay FILE`` re-runs a repro file written by the
fuzzer/shrinker and reports whether the recorded invariant violation
reproduces — same invariant, deterministically, every time.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .fuzzer import ScenarioFuzzer, Violation
from .invariants import default_invariants
from .scenario import Scenario
from .shrink import load_repro

__all__ = ["ReplayOutcome", "replay_file", "replay_scenario"]


@dataclass
class ReplayOutcome:
    """Result of replaying a repro file."""

    scenario: Scenario
    expected: dict
    violation: Violation | None

    @property
    def reproduced(self) -> bool:
        return (
            self.violation is not None
            and self.violation.invariant == self.expected.get("invariant")
        )

    def render(self) -> str:
        header = (
            f"replay: seed={self.scenario.seed} m={self.scenario.m} "
            f"b={self.scenario.b} events={len(self.scenario.events)}"
            + (f" mutation={self.scenario.mutation}" if self.scenario.mutation else "")
        )
        if self.violation is None:
            return (
                f"{header}\nDID NOT REPRODUCE: expected "
                f"[{self.expected.get('invariant')}], scenario ran clean"
            )
        status = "reproduced" if self.reproduced else "DIFFERENT FAILURE"
        return (
            f"{header}\n{status}: step={self.violation.step} "
            f"[{self.violation.invariant}] {self.violation.message}"
        )


def replay_scenario(
    scenario: Scenario, invariants_factory=default_invariants
) -> Violation | None:
    """Run a scenario once through the registry; its first violation."""
    return ScenarioFuzzer(invariants_factory).run_scenario(scenario)


def replay_file(
    path: Path | str, invariants_factory=default_invariants
) -> ReplayOutcome:
    """Replay a repro file and compare against its recorded violation."""
    scenario, expected = load_repro(path)
    violation = replay_scenario(scenario, invariants_factory)
    return ReplayOutcome(scenario=scenario, expected=expected, violation=violation)
