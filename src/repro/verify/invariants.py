"""The invariant registry: system-wide checks the fuzzer audits.

Each :class:`Invariant` inspects a :class:`~repro.verify.scenario.ScenarioHarness`
through side-effect-free hooks (``system.resolve``, ``audit`` helpers,
snapshots) and raises :class:`InvariantViolation` on the first breach.
``observe_before`` runs before an event is applied so before/after
properties (e.g. the load-monotonicity of a replication round) can be
stated exactly.

The default registry encodes the paper's claims:

=============================  ==========================================
``routing-reaches-live-holder`` every (live requester, live file) pair
                               resolves to a live node holding a copy
``placement-binomial-subtree`` one INSERTED copy per non-empty subtree,
                               at the storage node; stores only at live
                               PIDs; catalog targets match ψ
``fault-tolerant-partition``   the ``2**b`` subtrees partition the space
                               into isomorphic width-``m-b`` trees (§4)
``update-reaches-every-copy``  the top-down broadcast reaches the whole
                               holder set (no orphaned replicas)
``replication-load-monotonic`` a replication round never increases the
                               fluid load of the source or the max
``version-coherence``          every copy of a live file carries the
                               catalog version
``metrics-trace-reconcile``    operation counters move in lockstep with
                               their trace records (drops by reason)
``transport-conserves``        sent = delivered + dropped.loss +
                               dropped.dead once the engine drains
``snapshot-round-trips``       snapshot → restore → snapshot is the
                               identity on durable state
``request-lifecycle-conservation`` every tracked client request is
                               conserved (``issued == completed +
                               inflight + dead_letter + shed +
                               churn_lost``) and, once the engine
                               drains, terminated — no request may lose
                               its timeout and hang forever;
                               OVERLOAD-shed and churn loss are
                               distinct terminal states with their own
                               letter queues
``runtime-oracle-conformance`` a ``live_segment`` event's asyncio
                               cluster must replay to the synchronous
                               oracle's exact final state
``overload-shed-conservation`` a ``live_overload`` /
                               ``live_churn_overload`` burst must keep
                               the client-side ledger conserved
                               (requests == completed + faults +
                               errors + timeouts + shed + churn_lost)
                               and the cluster oracle-conformant
``stale-redirect``             no admitted request terminally sheds
                               *solely* because its redirect hint named
                               a dead node — a stale hint is a reroute
                               (FINDLIVENODE) or a churn loss, never a
                               wasted attempt
=============================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..cluster.audit import metric_trace_reconciliation
from ..cluster.snapshot import restore_from_json, snapshot_to_dict, snapshot_to_json
from ..core.subtree import SubtreeView, SvidLiveness, identity_tree, subtree_of_pid
from ..engine.fluid import FluidSimulation
from ..node.storage import FileOrigin
from .scenario import ScenarioEvent, ScenarioHarness

__all__ = [
    "AuditContext",
    "Invariant",
    "InvariantViolation",
    "default_invariants",
]

_EPS = 1e-9

#: Cap on per-step routing probes (entries sampled per file).
_MAX_PROBE_ENTRIES = 16


class InvariantViolation(Exception):
    """An invariant failed at a specific step of a scenario."""

    def __init__(self, invariant: str, message: str, step: int | None = None) -> None:
        self.invariant = invariant
        self.message = message
        self.step = step
        super().__init__(f"[{invariant}] {message}")


@dataclass
class AuditContext:
    """What an invariant sees: the harness, the step, scratch space."""

    harness: ScenarioHarness
    step: int = -1
    event: ScenarioEvent | None = None
    before: dict[str, Any] = field(default_factory=dict)
    """Per-step scratch written by ``observe_before``, read by ``check``."""

    @property
    def system(self):
        return self.harness.system


class Invariant:
    """Base class: named check with optional pre-step observation."""

    name = "invariant"

    def observe_before(self, ctx: AuditContext) -> None:
        """Record pre-event state (called before the event applies)."""

    def check(self, ctx: AuditContext) -> None:
        """Raise :class:`InvariantViolation` if the system is in breach."""
        raise NotImplementedError

    def fail(self, ctx: AuditContext, message: str) -> None:
        raise InvariantViolation(self.name, message, step=ctx.step)


def _live_files(system) -> list[str]:
    return sorted(n for n in system.catalog if n not in system.faults)


class RoutingReachability(Invariant):
    """Every request from a live entry reaches a live copy holder."""

    name = "routing-reaches-live-holder"

    def check(self, ctx: AuditContext) -> None:
        system = ctx.system
        live = sorted(system.membership.live_pids())
        if len(live) > _MAX_PROBE_ENTRIES:
            # Deterministic stride sample keeps the probe bounded.
            stride = len(live) / _MAX_PROBE_ENTRIES
            live = [live[int(i * stride)] for i in range(_MAX_PROBE_ENTRIES)]
        for name in _live_files(system):
            holders = set(system.holders_of(name))
            for entry in live:
                result = system.resolve(name, entry)
                if result is None:
                    self.fail(
                        ctx,
                        f"get({name!r}) from live P({entry}) found no copy; "
                        f"holders={sorted(holders)}",
                    )
                if result.server not in holders or not system.is_live(result.server):
                    self.fail(
                        ctx,
                        f"get({name!r}) from P({entry}) served by P({result.server}) "
                        f"which is not a live holder",
                    )


class PlacementInvariant(Invariant):
    """Binomial-subtree placement of the inserted copies, store hygiene."""

    name = "placement-binomial-subtree"

    def check(self, ctx: AuditContext) -> None:
        system = ctx.system
        live = set(system.membership.live_pids())
        if set(system.stores) != live:
            self.fail(
                ctx,
                f"stores exist at {sorted(set(system.stores) ^ live)} "
                f"where liveness disagrees",
            )
        for name, entry in system.catalog.items():
            if entry.target != system.psi(name):
                self.fail(
                    ctx,
                    f"catalog target P({entry.target}) for {name!r} != "
                    f"psi -> P({system.psi(name)})",
                )
        try:
            system.check_invariants()
        except AssertionError as exc:
            self.fail(ctx, str(exc))


class SubtreePartition(Invariant):
    """§4: the ``2**b`` subtrees stay an isomorphic partition."""

    name = "fault-tolerant-partition"

    def check(self, ctx: AuditContext) -> None:
        system = ctx.system
        targets = sorted({e.target for e in system.catalog.values()})[:4]
        if not targets:
            targets = [0]
        expected_size = 1 << (system.m - system.b)
        for target in targets:
            tree = system.tree(target)
            seen: set[int] = set()
            for sid in range(1 << system.b):
                view = SubtreeView(tree, system.b, sid)
                members = view.members()
                if len(members) != expected_size:
                    self.fail(
                        ctx,
                        f"subtree {sid} of tree P({target}) has {len(members)} "
                        f"members, expected {expected_size}",
                    )
                if identity_tree(view).m != system.m - system.b:
                    self.fail(
                        ctx,
                        f"subtree {sid} of tree P({target}) is not isomorphic "
                        f"to a width-{system.m - system.b} tree",
                    )
                for pid in members:
                    if subtree_of_pid(tree, pid, system.b) != sid:
                        self.fail(
                            ctx,
                            f"P({pid}) is a member of subtree {sid} but "
                            f"subtree_of_pid disagrees",
                        )
                seen.update(members)
            if seen != set(range(1 << system.m)):
                self.fail(
                    ctx,
                    f"subtrees of tree P({target}) do not partition the "
                    f"identifier space (covered {len(seen)}/{1 << system.m})",
                )


class UpdateReach(Invariant):
    """The top-down update broadcast reaches every live copy."""

    name = "update-reaches-every-copy"

    def check(self, ctx: AuditContext) -> None:
        system = ctx.system
        for name in _live_files(system):
            holders = set(system.holders_of(name))
            reachable = set(system.reachable_holders(name))
            if holders != reachable:
                self.fail(
                    ctx,
                    f"update broadcast for {name!r} reaches {sorted(reachable)} "
                    f"but copies live at {sorted(holders)} "
                    f"(orphans: {sorted(holders - reachable)})",
                )


class LoadMonotonic(Invariant):
    """A replication round never increases the source's or max load.

    Load is the fluid steady-state served rate under unit demand at
    every live member of the source's subtree — the §6 model.  The new
    replica absorbs flow that previously passed through it, so both the
    source's and the maximum served rate must be non-increasing.
    """

    name = "replication-load-monotonic"

    def observe_before(self, ctx: AuditContext) -> None:
        if ctx.event is None or ctx.event.op != "replicate":
            return
        resolved = ctx.harness.peek_replicate(ctx.event)
        if resolved is None:
            return
        name, source = resolved
        flows = self._flows(ctx.system, name, source)
        if flows is None:
            return
        served, source_svid = flows
        ctx.before[self.name] = {
            "file": name,
            "source": source,
            "max": max(served.values(), default=0.0),
            "source_served": served.get(source_svid, 0.0),
        }

    def check(self, ctx: AuditContext) -> None:
        observed = ctx.before.get(self.name)
        if observed is None or ctx.harness.last_replica_target is None:
            return
        system = ctx.system
        name, source = observed["file"], observed["source"]
        if not system.is_live(source) or name in system.faults:
            return
        flows = self._flows(system, name, source)
        if flows is None:
            return
        served, source_svid = flows
        max_after = max(served.values(), default=0.0)
        source_after = served.get(source_svid, 0.0)
        if max_after > observed["max"] + _EPS:
            self.fail(
                ctx,
                f"replicating {name!r} raised the max subtree load "
                f"{observed['max']:.6f} -> {max_after:.6f}",
            )
        if source_after > observed["source_served"] + _EPS:
            self.fail(
                ctx,
                f"replicating {name!r} raised P({source})'s load "
                f"{observed['source_served']:.6f} -> {source_after:.6f}",
            )

    @staticmethod
    def _flows(system, name: str, source: int) -> tuple[dict[int, float], int] | None:
        """Served rates (by SVID) in ``source``'s subtree, or None."""
        entry = system.catalog.get(name)
        if entry is None:
            return None
        tree = system.tree(entry.target)
        view = SubtreeView(tree, system.b, subtree_of_pid(tree, source, system.b))
        itree = identity_tree(view)
        sliveness = SvidLiveness(view, system.membership)
        rates = np.zeros(1 << itree.m)
        for svid in sliveness.live_pids():
            rates[svid] = 1.0
        holders = {
            view.svid_of(pid)
            for pid in system.holders_of(name)
            if view.contains(pid)
        }
        try:
            sim = FluidSimulation(
                itree, sliveness, rates, capacity=1.0, holders=holders
            )
        except Exception:
            # Placement already broken (storage node not a holder) or the
            # subtree emptied — the placement invariant owns that report.
            return None
        served = {int(k): float(v) for k, v in sim.compute_flows().served.items()}
        return served, view.svid_of(source)


class VersionCoherence(Invariant):
    """Every copy of a live file carries exactly the catalog version."""

    name = "version-coherence"

    def check(self, ctx: AuditContext) -> None:
        system = ctx.system
        for name in _live_files(system):
            catalog_version = system.catalog[name].version
            for pid in system.holders_of(name):
                version = system.stores[pid].get(name, count_access=False).version
                if version != catalog_version:
                    self.fail(
                        ctx,
                        f"copy of {name!r} at P({pid}) is v{version}, "
                        f"catalog says v{catalog_version}",
                    )


class MetricsReconcile(Invariant):
    """Operation counters and trace records move in lockstep."""

    name = "metrics-trace-reconcile"

    def check(self, ctx: AuditContext) -> None:
        system = ctx.system
        for counter, (value, traced) in metric_trace_reconciliation(system).items():
            if value != traced:
                self.fail(
                    ctx,
                    f"counter {counter} = {value} but {traced} matching "
                    f"trace records",
                )
        gets = system.metrics.counter("system.gets").value
        hops = system.metrics.histogram("system.get_hops").count
        if gets != hops:
            self.fail(
                ctx,
                f"system.gets = {gets} but get_hops histogram has {hops} samples",
            )


class TransportConservation(Invariant):
    """Once the engine drains: sent = delivered + dropped (by reason)."""

    name = "transport-conserves"

    def check(self, ctx: AuditContext) -> None:
        harness = ctx.harness
        if harness.engine.pending:
            return  # messages legitimately in flight
        metrics = ctx.system.metrics
        sent = metrics.counter("transport.sent").value
        delivered = metrics.counter("transport.delivered").value
        loss = metrics.counter("transport.dropped.loss").value
        dead = metrics.counter("transport.dropped.dead").value
        if sent != delivered + loss + dead:
            self.fail(
                ctx,
                f"transport.sent = {sent} but delivered({delivered}) + "
                f"dropped.loss({loss}) + dropped.dead({dead}) = "
                f"{delivered + loss + dead}",
            )


class SnapshotRoundTrip(Invariant):
    """snapshot → restore → snapshot is the identity on durable state."""

    name = "snapshot-round-trips"

    def check(self, ctx: AuditContext) -> None:
        try:
            first = snapshot_to_json(ctx.system)
        except (TypeError, ValueError) as exc:
            self.fail(ctx, f"durable state is not JSON-serializable: {exc}")
        try:
            restored = restore_from_json(first, check=False)
        except Exception as exc:
            self.fail(ctx, f"snapshot failed to restore: {exc}")
        second = snapshot_to_json(restored)
        if first != second:
            a, b = snapshot_to_dict(ctx.system), snapshot_to_dict(restored)
            diff_keys = [key for key in a if a.get(key) != b.get(key)]
            self.fail(
                ctx,
                f"snapshot round-trip changed state (differing sections: "
                f"{diff_keys})",
            )


class RequestLifecycle(Invariant):
    """Tracked requests are conserved and always terminate.

    At any instant ``request.issued == completed + inflight +
    dead_letter + shed + churn_lost``; the dead-letter queue matches
    the ``request.expired`` counter, the shed-letter queue matches
    ``request.shed``, and the churn-letter queue matches
    ``request.churn_lost``, with no duplicates and no overlap between
    the terminal sets; every terminal letter stayed within its attempt
    budget.  OVERLOAD-shed and churn loss are *distinct* terminal
    states from expiry: a shed means the server explicitly refused the
    work, a churn loss means the membership moved underneath the
    request (its redirect hint died and no live entry remained) — a
    request may land in at most one of the three queues.  Once the
    engine drains, nothing may remain inflight — a request stuck
    without a pending timeout has lost its deadline event and will
    never reach a defined outcome.
    """

    name = "request-lifecycle-conservation"

    def check(self, ctx: AuditContext) -> None:
        tracker = getattr(ctx.harness, "reliability", None)
        if tracker is None:
            return
        metrics = ctx.system.metrics
        issued = metrics.counter("request.issued").value
        completed = metrics.counter("request.completed").value
        expired = metrics.counter("request.expired").value
        shed = metrics.counter("request.shed").value
        churn_lost = metrics.counter("request.churn_lost").value
        inflight = tracker.inflight_count
        terminal = completed + inflight + expired + shed + churn_lost
        if issued != terminal:
            self.fail(
                ctx,
                f"request.issued = {issued} but completed({completed}) + "
                f"inflight({inflight}) + dead_letter({expired}) + "
                f"shed({shed}) + churn_lost({churn_lost}) = {terminal}",
            )
        letters = tracker.dead_letters
        if len(letters) != expired:
            self.fail(
                ctx,
                f"request.expired = {expired} but the dead-letter queue "
                f"holds {len(letters)} records",
            )
        shed_letters = getattr(tracker, "shed_letters", [])
        if len(shed_letters) != shed:
            self.fail(
                ctx,
                f"request.shed = {shed} but the shed-letter queue "
                f"holds {len(shed_letters)} records",
            )
        churn_letters = getattr(tracker, "churn_letters", [])
        if len(churn_letters) != churn_lost:
            self.fail(
                ctx,
                f"request.churn_lost = {churn_lost} but the churn-letter "
                f"queue holds {len(churn_letters)} records",
            )
        ids = [letter.request_id for letter in letters]
        shed_ids = [letter.request_id for letter in shed_letters]
        churn_ids = [letter.request_id for letter in churn_letters]
        pools = (
            ("dead-lettered", ids),
            ("shed", shed_ids),
            ("churn-lost", churn_ids),
        )
        for label, pool in pools:
            if len(set(pool)) != len(pool):
                dupes = sorted({i for i in pool if pool.count(i) > 1})
                self.fail(ctx, f"requests {label} more than once: {dupes}")
        for i, (label_a, pool_a) in enumerate(pools):
            for label_b, pool_b in pools[i + 1:]:
                overlap = set(pool_a) & set(pool_b)
                if overlap:
                    self.fail(
                        ctx,
                        f"requests both {label_a} and {label_b}: "
                        f"{sorted(overlap)}",
                    )
        for label, pool in pools:
            both = set(pool) & tracker.completed_ids
            if both:
                self.fail(
                    ctx,
                    f"requests both completed and {label}: {sorted(both)}",
                )
        for letter in (*letters, *shed_letters, *churn_letters):
            if not 1 <= len(letter.attempts) <= letter.budget:
                self.fail(
                    ctx,
                    f"terminal letter {letter.request_id} records "
                    f"{len(letter.attempts)} attempts against a budget "
                    f"of {letter.budget}",
                )
        if not ctx.harness.engine.pending and inflight:
            self.fail(
                ctx,
                f"engine drained with {inflight} request(s) still inflight "
                f"({sorted(tracker.inflight_ids)}) — a timeout event was lost",
            )


#: Fuzzer ops that append a ConformanceReport to ``live_reports``.
_CONFORMANCE_OPS = ("live_segment", "live_scaleout")


class RuntimeConformance(Invariant):
    """A live-runtime event must land in the oracle's exact state.

    The harness records one :class:`~repro.runtime.conformance.ConformanceReport`
    per applied ``live_segment`` (in-process asyncio cluster) or
    ``live_scaleout`` (fleet of real worker OS processes); a report
    with mismatches means the live runtime (codec negotiation,
    batching, cached routing, cross-process coordination and all)
    diverged from the synchronous model on that seeded workload.
    """

    name = "runtime-oracle-conformance"

    def check(self, ctx: AuditContext) -> None:
        if ctx.event is None or ctx.event.op not in _CONFORMANCE_OPS:
            return
        reports = getattr(ctx.harness, "live_reports", None)
        if not reports:
            return  # the segment was skipped
        report = reports[-1]
        if not report.ok:
            self.fail(ctx, report.render())


class ScaleoutLifecycle(Invariant):
    """A scale-out burst conserves requests and worker lifecycles.

    The harness records one ledger per applied ``live_scaleout`` burst.
    Two conservation laws must hold across the process boundary: every
    fired request lands in exactly one terminal bucket (even with a
    ``kill -9`` mid-burst), and every worker that was *not* killed
    terminates through the clean path — SIGTERM, local drain, goodbye
    snapshot shipped to the bootstrap.  A missing goodbye means a
    worker died outside the supervisor's accounting.
    """

    name = "scaleout-lifecycle-conservation"

    def check(self, ctx: AuditContext) -> None:
        if ctx.event is None or ctx.event.op != "live_scaleout":
            return
        reports = getattr(ctx.harness, "scaleout_reports", None)
        if not reports:
            return  # the burst was skipped
        report = reports[-1]
        if not report["conserved"]:
            self.fail(
                ctx,
                f"scale-out burst ({report['nodes']} workers) leaked "
                f"requests: requests({report['requests']}) != "
                f"completed({report['completed']}) + faults({report['faults']}) "
                f"+ errors({report['errors']}) + timeouts({report['timeouts']}) "
                f"+ shed({report['shed']}) + churn_lost({report['churn_lost']})",
            )
        if report["goodbyes"] != report["expected_goodbyes"]:
            self.fail(
                ctx,
                f"scale-out burst expected {report['expected_goodbyes']} "
                f"goodbye snapshot(s) (killed: {report['killed']}) but "
                f"collected {report['goodbyes']} — a worker died outside "
                f"the clean SIGTERM-drain-goodbye path",
            )


#: Fuzzer ops that append a burst record for the overload invariants.
_BURST_OPS = ("live_overload", "live_churn_overload")


class OverloadAccounting(Invariant):
    """An overload burst must conserve the client-side ledger.

    The harness records one report dict per applied ``live_overload`` /
    ``live_churn_overload`` burst (policy cell, the
    :class:`~repro.runtime.client.LoadReport` ledger, and the
    conformance verdict).  Shedding is load *control*, not load *loss*,
    and churn is membership *movement*, not accounting leakage: every
    fired request must land in exactly one terminal bucket
    (``requests == completed + faults + errors + timeouts + shed +
    churn_lost``) and the cluster must still replay to the oracle's
    exact state — a shed GET never mutates durable state, and a
    mid-burst crash must close its oplog halves before the diff.
    """

    name = "overload-shed-conservation"

    def check(self, ctx: AuditContext) -> None:
        if ctx.event is None or ctx.event.op not in _BURST_OPS:
            return
        reports = getattr(ctx.harness, "overload_reports", None)
        if not reports:
            return  # the burst was skipped
        report = reports[-1]
        if not report["conserved"]:
            self.fail(
                ctx,
                f"overload burst ({report['cell']}) leaked requests: "
                f"requests({report['requests']}) != "
                f"completed({report['completed']}) + faults({report['faults']}) "
                f"+ errors({report['errors']}) + timeouts({report['timeouts']}) "
                f"+ shed({report['shed']}) + "
                f"churn_lost({report.get('churn_lost', 0)})",
            )
        if not report["conformant"]:
            self.fail(
                ctx,
                f"overload burst ({report['cell']}) diverged from the "
                f"oracle: {report['conformance_detail']}",
            )


class StaleRedirect(Invariant):
    """A dead redirect hint is a reroute, never a terminal shed.

    Under churn a shedder's hint can name a node that died after the
    FINDLIVENODE discovery that produced it — most dangerously after a
    *silent* crash, when no status word has processed the retirement
    yet.  The admitted request must not pay for that staleness with its
    life: the client reroutes to a live entry (consuming redirect
    budget) or, when no live node remains, terminates as a churn loss.
    The burst records count ``stale_sheds`` — requests that terminally
    shed *solely* because their hint was dead — and this invariant
    pins that count to zero.
    """

    name = "stale-redirect"

    def check(self, ctx: AuditContext) -> None:
        if ctx.event is None or ctx.event.op not in _BURST_OPS:
            return
        reports = getattr(ctx.harness, "overload_reports", None)
        if not reports:
            return  # the burst was skipped
        report = reports[-1]
        stale = report.get("stale_sheds", 0)
        if stale:
            self.fail(
                ctx,
                f"overload burst ({report['cell']}) terminally shed "
                f"{stale} request(s) solely because their redirect hint "
                f"named a dead node (churn: {report.get('churn', [])}) — "
                f"a stale hint must reroute or churn-lose, never shed",
            )


def default_invariants() -> list[Invariant]:
    """Fresh instances of the full registry (order = check order)."""
    return [
        PlacementInvariant(),
        SubtreePartition(),
        RoutingReachability(),
        UpdateReach(),
        LoadMonotonic(),
        VersionCoherence(),
        MetricsReconcile(),
        TransportConservation(),
        SnapshotRoundTrip(),
        RequestLifecycle(),
        RuntimeConformance(),
        OverloadAccounting(),
        StaleRedirect(),
        ScaleoutLifecycle(),
    ]
