"""Whole-system layer: the LessLogSystem facade, churn, fault injection."""

from .faults import ChurnEvent, ChurnKind, ChurnSchedule
from .snapshot import (
    restore_from_dict,
    restore_from_json,
    snapshot_to_dict,
    snapshot_to_json,
)
from .system import (
    CatalogEntry,
    GetResult,
    InsertResult,
    LessLogSystem,
    UpdateResult,
)

__all__ = [
    "CatalogEntry",
    "ChurnEvent",
    "ChurnKind",
    "ChurnSchedule",
    "GetResult",
    "InsertResult",
    "LessLogSystem",
    "UpdateResult",
    "restore_from_dict",
    "restore_from_json",
    "snapshot_to_dict",
    "snapshot_to_json",
]
