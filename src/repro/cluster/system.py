"""`LessLogSystem`: the synchronous whole-system facade.

This is the library's primary public API.  It wires the core algebra,
per-node file stores, and membership into the paper's file operations —
INSERT / GET / UPDATE / REPLICATE in both the advanced (§3, dead nodes)
and fault-tolerant (§4, ``2**b`` subtrees) models — with function-call
semantics: every operation completes before returning, exactly as the
paper describes the message flows, minus transmission delay.  (The
request-level, delay-accurate version of the same protocol lives in
``repro.engine.des_driver``.)

Membership here is one authoritative status word: §5's broadcasts are
instantaneous in this model.  Churn (join / leave / fail with the §5
file-migration rules) is implemented in :mod:`repro.cluster.churn` and
exposed as methods on the system.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..baselines.base import PlacementContext, ReplicationPolicy
from ..baselines.lesslog_policy import LessLogPolicy
from ..core.bits import check_id, check_width
from ..core.errors import (
    ConfigurationError,
    FileNotFoundInSystemError,
    NoLiveNodeError,
    NodeDownError,
    StorageError,
)
from ..core.hashing import Psi
from ..core.subtree import (
    SubtreeView,
    SvidLiveness,
    check_b,
    identity_tree,
    migration_order,
    subtree_of_pid,
)
from ..core.tree import LookupTree
from ..node.membership import StatusWord
from ..node.storage import FileOrigin, FileStore
from ..sim.metrics import MetricsRegistry
from ..sim.trace import Tracer

__all__ = ["CatalogEntry", "GetResult", "InsertResult", "UpdateResult", "LessLogSystem"]


@dataclass
class CatalogEntry:
    """System-level bookkeeping for one file (name, target, version)."""

    name: str
    target: int
    version: int


@dataclass(frozen=True)
class InsertResult:
    """Outcome of an insert: where the ``2**b`` original copies went."""

    name: str
    target: int
    homes: tuple[int, ...]
    version: int


@dataclass(frozen=True)
class GetResult:
    """Outcome of a get: the copy served and the path that found it."""

    name: str
    payload: Any
    version: int
    server: int
    route: tuple[int, ...]
    subtrees_tried: tuple[int, ...]

    @property
    def hops(self) -> int:
        return len(self.route) - 1


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of an update: every copy the broadcast refreshed."""

    name: str
    version: int
    updated: tuple[int, ...]


@dataclass
class _ReplicaRecord:
    source: int
    target: int
    file: str


class LessLogSystem:
    """An N-node LessLog deployment over a ``2**m`` identifier space."""

    def __init__(
        self,
        m: int,
        b: int = 0,
        live: set[int] | None = None,
        psi: Psi | None = None,
        seed: int = 0,
        tracer: Tracer | None = None,
    ) -> None:
        check_width(m)
        check_b(b, m)
        self.m = m
        self.b = b
        self.psi = psi if psi is not None else Psi(m)
        if self.psi.m != m:
            raise ConfigurationError(
                f"hash width {self.psi.m} does not match system width {m}"
            )
        pids = set(live) if live is not None else set(range(1 << m))
        if not pids:
            raise ConfigurationError("a system needs at least one live node")
        self.membership = StatusWord(m, pids)
        self.stores: dict[int, FileStore] = {pid: FileStore() for pid in sorted(pids)}
        self.catalog: dict[str, CatalogEntry] = {}
        self.metrics = MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.rng = random.Random(seed)
        self.replications: list[_ReplicaRecord] = []
        self._trees: dict[int, LookupTree] = {}
        self.now = 0.0
        self.faults: list[str] = []

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        m: int,
        b: int = 0,
        dead: set[int] | None = None,
        n_live: int | None = None,
        seed: int = 0,
        **kwargs: Any,
    ) -> "LessLogSystem":
        """Convenience constructor.

        Either pass ``dead`` (explicit dead PIDs) or ``n_live`` (a
        seeded random choice of that many live PIDs); default is the
        full ``2**m``-node system.
        """
        if dead is not None and n_live is not None:
            raise ConfigurationError("pass either dead or n_live, not both")
        total = 1 << m
        if n_live is not None:
            if not 1 <= n_live <= total:
                raise ConfigurationError(f"n_live must be in [1, {total}]")
            rng = random.Random(seed)
            live = set(rng.sample(range(total), n_live))
        else:
            live = set(range(total)) - (dead or set())
        return cls(m=m, b=b, live=live, seed=seed, **kwargs)

    # -- small helpers ------------------------------------------------------

    def tree(self, r: int) -> LookupTree:
        """The (cached) physical lookup tree of ``P(r)``."""
        tree = self._trees.get(r)
        if tree is None:
            tree = LookupTree(r, self.m)
            self._trees[r] = tree
        return tree

    def is_live(self, pid: int) -> bool:
        check_id(pid, self.m)
        return self.membership.is_live(pid)

    @property
    def n_live(self) -> int:
        return self.membership.live_count()

    def store_of(self, pid: int) -> FileStore:
        if not self.is_live(pid):
            raise NodeDownError(pid)
        return self.stores[pid]

    def _require_live(self, pid: int, operation: str) -> None:
        if not self.is_live(pid):
            raise NodeDownError(pid, operation)

    def _views(self, r: int) -> list[SubtreeView]:
        tree = self.tree(r)
        return [SubtreeView(tree, self.b, sid) for sid in range(1 << self.b)]

    def holders_of(self, name: str) -> list[int]:
        """Every live PID currently holding a copy of ``name``."""
        return [pid for pid, store in sorted(self.stores.items()) if name in store]

    def replica_count(self, name: str) -> int:
        """Replicated (non-inserted) copies of ``name`` in the system."""
        return sum(
            1
            for pid in self.holders_of(name)
            if self.stores[pid].get(name, count_access=False).origin
            is FileOrigin.REPLICATED
        )

    # -- INSERT (§2.2 / ADVANCEDINSERTFILE §3 / §4) -------------------------

    def insert(self, name: str, payload: Any = None, entry: int | None = None) -> InsertResult:
        """Insert a file: one original copy per subtree (``2**b`` total).

        ``entry`` (the node the client contacted) only matters for
        tracing — the request is forwarded straight to the targets.
        """
        if entry is not None:
            self._require_live(entry, "insert")
        if name in self.catalog:
            raise StorageError(f"file {name!r} already inserted; use update()")
        r = self.psi(name)
        homes: list[int] = []
        for view in self._views(r):
            try:
                home = view.storage_node(self.membership)
            except NoLiveNodeError:  # empty subtree: degree degrades (§4)
                continue
            self.stores[home].store(name, payload, 1, FileOrigin.INSERTED, self.now)
            homes.append(home)
        if not homes:
            raise FileNotFoundInSystemError(name)
        self.catalog[name] = CatalogEntry(name=name, target=r, version=1)
        self.metrics.counter("system.inserts").inc()
        self.tracer.emit(self.now, "insert", file=name, target=r, homes=homes)
        return InsertResult(name=name, target=r, homes=tuple(homes), version=1)

    # -- GET (GETFILE §2.2, two-step §3, subtree migration §4) -------------

    def _locate(self, name: str, entry: int) -> tuple[list[int], list[int], int | None]:
        """The routing walk shared by :meth:`get` and :meth:`resolve`.

        Returns ``(route, subtrees_tried, server)`` where ``server`` is
        the first node on the route holding a copy, or ``None`` if the
        walk exhausted every subtree.  Pure inspection: no metrics,
        traces, or access counting.
        """
        r = self.psi(name)
        tree = self.tree(r)
        route: list[int] = []
        tried: list[int] = []
        for sid in migration_order(tree, self.b, entry):
            view = SubtreeView(tree, self.b, sid)
            tried.append(sid)
            if view.contains(entry) and self.is_live(entry):
                try:
                    walk = view.resolve_route(entry, self.membership)
                except NoLiveNodeError:
                    walk = []
            else:
                # Migrated subtree: the request re-enters at the node
                # that must hold the copy (§4's identifier change).
                try:
                    walk = [view.storage_node(self.membership)]
                except NoLiveNodeError:
                    walk = []
            for pid in walk:
                if route and route[-1] == pid:
                    continue
                route.append(pid)
                if name in self.stores[pid]:
                    return route, tried, pid
        return route, tried, None

    def resolve(self, name: str, entry: int) -> GetResult | None:
        """Side-effect-free routing probe (audit / invariant hook).

        Follows exactly the same walk as :meth:`get` but records no
        metrics, emits no trace, and bumps no access counters, so
        verification layers can probe every (requester, file) pair
        without perturbing the system under test.  Returns ``None``
        where :meth:`get` would raise.
        """
        self._require_live(entry, "resolve")
        route, tried, server = self._locate(name, entry)
        if server is None:
            return None
        copy = self.stores[server].get(name, count_access=False)
        return GetResult(
            name=name,
            payload=copy.payload,
            version=copy.version,
            server=server,
            route=tuple(route),
            subtrees_tried=tuple(tried),
        )

    def retry_entry(self, name: str, entry: int) -> int | None:
        """Where a retried request for ``name`` should re-enter.

        The client-side dual of ``FINDLIVENODE`` (§3), used by the
        request-reliability layer (:mod:`repro.net.reliability`): a
        still-live entry is kept, a dead one is bypassed to its first
        alive ancestor in the file's lookup tree (falling back to the
        storage node), and ``None`` means no live node remains.
        """
        from ..core.routing import first_alive_ancestor, storage_node

        catalog_entry = self.catalog.get(name)
        if catalog_entry is None:
            raise FileNotFoundInSystemError(name)
        if self.is_live(entry):
            return entry
        tree = self.tree(catalog_entry.target)
        nxt = first_alive_ancestor(tree, entry, self.membership)
        if nxt is not None:
            return nxt
        try:
            return storage_node(tree, self.membership)
        except NoLiveNodeError:
            return None

    def get(self, name: str, entry: int) -> GetResult:
        """Resolve a request entering at ``P(entry)``.

        Routes up the entry's subtree; on a fault, migrates across the
        remaining ``2**b - 1`` subtrees in deterministic order.
        """
        self._require_live(entry, "get")
        route, tried, server = self._locate(name, entry)
        if server is None:
            self.metrics.counter("system.get_faults").inc()
            self.tracer.emit(self.now, "get_fault", file=name, entry=entry)
            raise FileNotFoundInSystemError(name)
        entry_file = self.stores[server].get(name)
        self.metrics.counter("system.gets").inc()
        self.metrics.histogram("system.get_hops").observe(float(len(route) - 1))
        self.tracer.emit(
            self.now, "get", file=name, entry=entry, server=server,
            hops=len(route) - 1,
        )
        return GetResult(
            name=name,
            payload=entry_file.payload,
            version=entry_file.version,
            server=server,
            route=tuple(route),
            subtrees_tried=tuple(tried),
        )

    # -- UPDATE (top-down broadcast §2.2 / §3 / §4) -------------------------

    def update(self, name: str, payload: Any, entry: int | None = None) -> UpdateResult:
        """Update a file and propagate through every replica, top-down.

        Starts at each subtree's root position (bypassing it to its
        children list when dead); a reached node with a copy refreshes
        it and re-broadcasts to its children list, one without a copy
        discards the request (§2.2/§3).
        """
        if entry is not None:
            self._require_live(entry, "update")
        catalog_entry = self.catalog.get(name)
        if catalog_entry is None:
            raise FileNotFoundInSystemError(name)
        catalog_entry.version += 1
        version = catalog_entry.version
        updated: list[int] = []
        for pid in self.reachable_holders(name):
            if self.stores[pid].update(name, payload, version):
                updated.append(pid)
        self.metrics.counter("system.updates").inc()
        self.tracer.emit(self.now, "update", file=name, version=version, updated=updated)
        return UpdateResult(name=name, version=version, updated=tuple(updated))

    def reachable_holders(self, name: str) -> list[int]:
        """Holders the top-down update broadcast can reach (§2.2/§3).

        The broadcast starts at each subtree's root position (bypassing
        a dead root to its children list), and only nodes *with a copy*
        re-broadcast to their children lists — a node without one
        discards the request.  Churn can orphan a replica below a
        non-holder; ``repro.cluster.churn`` garbage-collects those so
        this set always equals the holder set between churn events.
        """
        catalog_entry = self.catalog.get(name)
        if catalog_entry is None:
            raise FileNotFoundInSystemError(name)
        reached: list[int] = []

        for view in self._views(catalog_entry.target):
            def visit(pid: int) -> None:
                if not self.is_live(pid):  # pragma: no cover - defensive
                    return
                if name not in self.stores[pid]:
                    return  # discard: no copy, no re-broadcast
                reached.append(pid)
                for child in self._subtree_children_list(view, pid):
                    visit(child)

            root = view.root_pid
            if self.is_live(root):
                visit(root)
            else:
                # §3: "the update request will bypass a dead node and be
                # forwarded to the children list of the dead node".
                for child in self._subtree_children_list(view, root):
                    visit(child)
        return reached

    def _subtree_children_list(self, view: SubtreeView, pid: int) -> list[int]:
        """Advanced children list of ``pid`` *within its subtree*."""
        from ..core.children import advanced_children_list

        itree = identity_tree(view)
        sliveness = SvidLiveness(view, self.membership)
        svid = view.tree.vid_of(pid) >> view.b
        return [
            view.pid_of_svid(s)
            for s in advanced_children_list(itree, svid, sliveness)
        ]

    # -- REPLICATE (§2.2 / §3, within a subtree for §4) ---------------------

    def replicate(
        self,
        name: str,
        overloaded: int,
        policy: ReplicationPolicy | None = None,
        forwarder_rates: dict[int, float] | None = None,
        *,
        rng: random.Random | None = None,
    ) -> int | None:
        """One replication step for an overloaded holder.

        Runs the placement policy *inside the overloaded node's
        subtree* (for ``b = 0`` that is the whole tree), copies the
        file to the chosen node, and returns its PID (``None`` if the
        policy had no target).  ``rng`` overrides the system stream for
        the §3 proportional coin — the live runtime's conformance
        replay pins it so oracle and live decisions draw identically.
        """
        self._require_live(overloaded, "replicate")
        catalog_entry = self.catalog.get(name)
        if catalog_entry is None:
            raise FileNotFoundInSystemError(name)
        if name not in self.stores[overloaded]:
            raise StorageError(
                f"P({overloaded}) does not hold {name!r}; only holders replicate"
            )
        policy = policy if policy is not None else LessLogPolicy()
        tree = self.tree(catalog_entry.target)
        sid = subtree_of_pid(tree, overloaded, self.b)
        view = SubtreeView(tree, self.b, sid)
        itree = identity_tree(view)
        sliveness = SvidLiveness(view, self.membership)
        holders_svid = {
            view.svid_of(pid)
            for pid in self.holders_of(name)
            if view.contains(pid)
        }
        rates_svid = {
            (view.svid_of(src) if src >= 0 and view.contains(src) else -1): rate
            for src, rate in (forwarder_rates or {}).items()
        }
        context = PlacementContext(
            rng=rng if rng is not None else self.rng,
            forwarder_rates=rates_svid,
        )
        target_svid = policy.choose(
            itree, view.svid_of(overloaded), sliveness, holders_svid, context
        )
        if target_svid is None:
            return None
        target = view.pid_of_svid(target_svid)
        source_file = self.stores[overloaded].get(name, count_access=False)
        self.stores[target].store(
            name, source_file.payload, source_file.version,
            FileOrigin.REPLICATED, self.now,
        )
        self.replications.append(_ReplicaRecord(overloaded, target, name))
        self.metrics.counter("system.replications").inc()
        self.tracer.emit(
            self.now, "replicate", file=name, source=overloaded, target=target
        )
        return target

    def remove_replica(self, name: str, pid: int) -> None:
        """Counter-based removal: drop a *replicated* copy at ``pid``.

        Removal can orphan replicas that were bridged through the
        removed copy (the top-down update discards at a node without
        one), so the same orphan GC that runs after churn runs here —
        keeping the holder set equal to the update-reachable set.
        This gap was found by the scenario fuzzer (repro.verify):
        insert → replicate ×2 → remove the middle replica.
        """
        from .churn import gc_orphan_replicas

        self._require_live(pid, "remove_replica")
        store = self.stores[pid]
        if name not in store:
            raise StorageError(f"P({pid}) holds no copy of {name!r}")
        if store.get(name, count_access=False).origin is FileOrigin.INSERTED:
            raise StorageError(f"refusing to remove the inserted copy at P({pid})")
        store.remove(name)
        self.metrics.counter("system.replica_removals").inc()
        self.tracer.emit(self.now, "remove_replica", file=name, pid=pid)
        gc_orphan_replicas(self)

    # -- churn (§5) — implemented in repro.cluster.churn --------------------

    def join(self, pid: int) -> list[str]:
        """§5.1: a new node joins; returns the files migrated to it."""
        from .churn import join_node

        return join_node(self, pid)

    def leave(self, pid: int) -> list[str]:
        """§5.2: a node leaves voluntarily; returns re-inserted files."""
        from .churn import leave_node

        return leave_node(self, pid)

    def fail(self, pid: int) -> list[str]:
        """§5.3: a node crashes; returns the files recovered (or lost)."""
        from .churn import fail_node

        return fail_node(self, pid)

    # -- verification --------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert system-wide consistency (used heavily by tests).

        For every catalogued file and every subtree with live members:
        exactly one INSERTED copy, located at the subtree's storage
        node — unless the file is recorded as faulted/lost.
        """
        for name, entry in self.catalog.items():
            if name in self.faults:
                continue
            tree = self.tree(entry.target)
            for view in self._views(entry.target):
                if view.live_count(self.membership) == 0:
                    continue
                home = view.storage_node(self.membership)
                inserted = [
                    pid
                    for pid in view.members()
                    if self.is_live(pid)
                    and name in self.stores[pid]
                    and self.stores[pid].get(name, count_access=False).origin
                    is FileOrigin.INSERTED
                ]
                if inserted != [home] and sorted(inserted) != [home]:
                    raise AssertionError(
                        f"file {name!r}, tree P({entry.target}), subtree "
                        f"{view.sid}: inserted copies at {inserted}, "
                        f"expected exactly [{home}]"
                    )
                for pid in view.members():
                    if self.is_live(pid) and name in self.stores[pid]:
                        copy = self.stores[pid].get(name, count_access=False)
                        if copy.version > entry.version:
                            raise AssertionError(
                                f"copy of {name!r} at P({pid}) has version "
                                f"{copy.version} > catalog {entry.version}"
                            )

    def __repr__(self) -> str:
        return (
            f"LessLogSystem(m={self.m}, b={self.b}, live={self.n_live}, "
            f"files={len(self.catalog)})"
        )
