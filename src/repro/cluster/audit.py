"""Placement audit: a structured health report for a running system.

Inspects a :class:`LessLogSystem` and reports, per file: where the
inserted copies live, where the replicas live, whether every copy is
reachable by the update broadcast, how deep the storage node sits
below its nominal target, and per-subtree placement status.  The CLI's
``lesslog audit`` renders this for a snapshot file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..core.subtree import SubtreeView, subtree_of_pid
from ..node.storage import FileOrigin
from .system import LessLogSystem

__all__ = [
    "FileAudit",
    "SystemAudit",
    "audit_system",
    "metric_trace_reconciliation",
]

#: operation counter → the trace kind that must move in lockstep with it.
_COUNTER_TRACE_PAIRS: tuple[tuple[str, str], ...] = (
    ("system.inserts", "insert"),
    ("system.gets", "get"),
    ("system.get_faults", "get_fault"),
    ("system.updates", "update"),
    ("system.replications", "replicate"),
    ("system.replica_removals", "remove_replica"),
    ("system.joins", "join"),
    ("system.leaves", "leave"),
    ("system.failures", "fail"),
    ("system.kills", "kill"),
    ("system.recoveries", "recover"),
    ("system.arrivals", "arrive"),
    ("system.settles", "settle"),
    ("system.departures", "depart"),
    ("system.reinserts", "reinsert"),
    ("transport.sent", "send"),
    ("request.retried", "retry"),
    ("request.expired", "expire"),
)


@dataclass
class FileAudit:
    """Audit record for one file."""

    name: str
    target: int
    version: int
    inserted_at: list[int]
    replicas_at: list[int]
    unreachable: list[int]
    displaced_subtrees: int
    """Subtrees whose inserted copy is not at the nominal target slot."""

    lost: bool = False

    @property
    def copies(self) -> int:
        return len(self.inserted_at) + len(self.replicas_at)

    @property
    def healthy(self) -> bool:
        return not self.lost and not self.unreachable and bool(self.inserted_at)


@dataclass
class SystemAudit:
    """Whole-system audit."""

    m: int
    b: int
    live_nodes: int
    files: list[FileAudit] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return all(f.healthy or f.lost for f in self.files) and not any(
            f.unreachable for f in self.files
        )

    @property
    def lost_files(self) -> list[str]:
        return [f.name for f in self.files if f.lost]

    def total_copies(self) -> int:
        return sum(f.copies for f in self.files)

    def render(self) -> str:
        header = (
            f"LessLog audit: m={self.m}, b={self.b}, "
            f"{self.live_nodes} live nodes, {len(self.files)} files, "
            f"{self.total_copies()} copies"
        )
        rows = []
        for f in sorted(self.files, key=lambda x: x.name):
            status = "LOST" if f.lost else ("OK" if f.healthy else "DEGRADED")
            rows.append([
                f.name,
                f"P({f.target})",
                f"v{f.version}",
                ",".join(map(str, f.inserted_at)) or "-",
                str(len(f.replicas_at)),
                str(f.displaced_subtrees),
                str(len(f.unreachable)),
                status,
            ])
        table = render_table(
            ["file", "target", "ver", "homes", "replicas",
             "displaced", "unreachable", "status"],
            rows,
        )
        verdict = "system healthy" if self.healthy else "ATTENTION NEEDED"
        return f"{header}\n{table}\n{verdict}"


def metric_trace_reconciliation(system: LessLogSystem) -> dict[str, tuple[int, int]]:
    """Counter values vs. trace-record counts, per operation.

    Every system operation both bumps a counter and emits a trace
    record of a fixed kind; when the tracer has been enabled (and
    unfiltered) for the system's whole life, the two tallies must agree
    exactly.  Returns ``{counter_name: (counter_value, traced_count)}``
    — callers (the ``MetricsReconcile`` invariant, offline audits)
    flag any pair that differs.

    Transport drops reconcile by reason: the ``transport.dropped.*``
    counters are matched against ``drop`` records' ``reason`` field.
    """
    kinds = system.tracer.kinds()
    out: dict[str, tuple[int, int]] = {}
    for counter_name, kind in _COUNTER_TRACE_PAIRS:
        out[counter_name] = (
            system.metrics.counter(counter_name).value,
            kinds.get(kind, 0),
        )
    drop_reasons: dict[str, int] = {}
    for record in system.tracer.of_kind("drop"):
        reason = str(record.data.get("reason", "unknown"))
        drop_reasons[reason] = drop_reasons.get(reason, 0) + 1
    for reason in ("loss", "dead"):
        out[f"transport.dropped.{reason}"] = (
            system.metrics.counter(f"transport.dropped.{reason}").value,
            drop_reasons.get(reason, 0),
        )
    return out


def audit_system(system: LessLogSystem) -> SystemAudit:
    """Build the audit for ``system``."""
    audit = SystemAudit(m=system.m, b=system.b, live_nodes=system.n_live)
    for name, entry in sorted(system.catalog.items()):
        tree = system.tree(entry.target)
        holders = system.holders_of(name)
        inserted = [
            pid
            for pid in holders
            if system.stores[pid].get(name, count_access=False).origin
            is FileOrigin.INSERTED
        ]
        replicas = [pid for pid in holders if pid not in inserted]
        lost = name in system.faults or not holders
        unreachable: list[int] = []
        if not lost:
            reachable = set(system.reachable_holders(name))
            unreachable = sorted(set(holders) - reachable)
        displaced = 0
        for sid in range(1 << system.b):
            view = SubtreeView(tree, system.b, sid)
            sub_inserted = [p for p in inserted if view.contains(p)]
            if sub_inserted and sub_inserted[0] != view.root_pid:
                displaced += 1
        audit.files.append(
            FileAudit(
                name=name,
                target=entry.target,
                version=entry.version,
                inserted_at=sorted(inserted),
                replicas_at=sorted(replicas),
                unreachable=unreachable,
                displaced_subtrees=displaced,
                lost=lost,
            )
        )
    return audit
