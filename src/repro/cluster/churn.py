"""Self-organized mechanism: node join / leave / fail (paper §5).

The file-migration rules:

* **Join (§5.1)** — the newcomer registers live everywhere, then the
  files that were stored elsewhere *because of its absence* are copied
  to it: for each file whose subtree storage node is now the newcomer,
  the copy moves from the previous storage node (which keeps a replica,
  so in-flight demand keeps being served).
* **Leave (§5.2)** — the leaver's *replicated* files are discarded; its
  *inserted* files are re-inserted with the leaver registered dead,
  landing at each subtree's next storage node.
* **Fail (§5.3)** — the crashed node's storage is lost.  With ``b > 0``
  the inserted files it was home to are recovered from another subtree
  into the new storage node; with ``b = 0`` a file with no surviving
  replica is lost and recorded as a fault.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.bits import check_id
from ..core.errors import MembershipError, NoLiveNodeError
from ..core.subtree import SubtreeView, subtree_of_pid
from ..node.storage import FileOrigin, FileStore

if TYPE_CHECKING:  # pragma: no cover
    from .system import LessLogSystem

__all__ = [
    "join_node",
    "leave_node",
    "fail_node",
    "gc_orphan_replicas",
    "kill_node",
    "recover_node",
    "arrive_node",
    "settle_node",
    "depart_node",
    "reinsert_node",
]


def gc_orphan_replicas(system: "LessLogSystem") -> list[tuple[str, int]]:
    """Drop replicas the update broadcast can no longer reach.

    The paper's top-down update discards at nodes without a copy, so a
    replica whose placement chain lost a link (its parent holder left
    or crashed) would silently go stale.  A departed holder orphans
    exactly the replicas it bridged; removing them keeps the paper's
    update protocol sound — they are recreated on the next overload.

    Returns the ``(file, pid)`` pairs garbage-collected.
    """
    removed: list[tuple[str, int]] = []
    for name in system.catalog:
        if name in system.faults:
            continue
        holders = set(system.holders_of(name))
        if not holders:
            continue
        reachable = set(system.reachable_holders(name))
        for pid in sorted(holders - reachable):
            store = system.stores[pid]
            if store.get(name, count_access=False).origin is FileOrigin.REPLICATED:
                store.remove(name)
                removed.append((name, pid))
                system.tracer.emit(
                    system.now, "gc_orphan", file=name, pid=pid
                )
    if removed:
        system.metrics.counter("system.orphans_collected").inc(len(removed))
    return removed


def join_node(system: "LessLogSystem", pid: int) -> list[str]:
    """§5.1: ``P(pid)`` joins; returns the file names migrated to it."""
    check_id(pid, system.m)
    if system.is_live(pid):
        raise MembershipError(f"P({pid}) is already live")
    system.membership.register_live(pid)
    system.stores[pid] = FileStore()
    migrated = _migrate_to_newcomer(system, pid)
    system.metrics.counter("system.joins").inc()
    system.tracer.emit(system.now, "join", pid=pid, migrated=migrated)
    return migrated


def _migrate_to_newcomer(system: "LessLogSystem", pid: int) -> list[str]:
    """§5.1 migration loop: copy to ``pid`` the files its absence displaced."""
    migrated: list[str] = []
    for name, entry in system.catalog.items():
        if name in system.faults:
            continue
        tree = system.tree(entry.target)
        sid = subtree_of_pid(tree, pid, system.b)
        view = SubtreeView(tree, system.b, sid)
        new_home = view.storage_node(system.membership)
        if new_home != pid:
            continue  # this file's placement was unaffected by the absence
        old_home = _inserted_holder(system, view, name, exclude=pid)
        if old_home is not None:
            copy = system.stores[old_home].get(name, count_access=False)
            system.stores[pid].store(
                name, copy.payload, copy.version, FileOrigin.INSERTED, system.now
            )
            # The previous home keeps serving as a plain replica: demand
            # that still routes to it is not dropped mid-migration.
            copy.origin = FileOrigin.REPLICATED
            migrated.append(name)
            continue
        # The subtree has no inserted copy at all — it emptied out
        # completely at some point (every member dead) and the newcomer
        # is repopulating it.  Restore from another subtree, exactly
        # like §5.3 recovery; if no copy survives anywhere the file is
        # already lost and stays that way.
        donor = _any_holder(system, name)
        if donor is None:
            if name not in system.faults:
                system.faults.append(name)
            continue
        copy = system.stores[donor].get(name, count_access=False)
        system.stores[pid].store(
            name, copy.payload, copy.version, FileOrigin.INSERTED, system.now
        )
        migrated.append(name)
    # A rejoining node re-enters broadcast chains *without* copies,
    # shadowing any replica that used to be bridged through its
    # position — those are orphans now too.
    gc_orphan_replicas(system)
    return migrated


def leave_node(system: "LessLogSystem", pid: int) -> list[str]:
    """§5.2: ``P(pid)`` leaves voluntarily; returns re-inserted files."""
    if not system.is_live(pid):
        raise MembershipError(f"P({pid}) is not live")
    store = system.stores.pop(pid)
    inserted = [(c.name, c.payload, c.version) for c in store.inserted_files()]
    # Replicated files are simply discarded with the store (§5.2).
    system.membership.register_dead(pid)
    moved = _reinsert_files(system, pid, inserted)
    system.metrics.counter("system.leaves").inc()
    system.tracer.emit(system.now, "leave", pid=pid, moved=moved)
    return moved


def _reinsert_files(
    system: "LessLogSystem",
    pid: int,
    inserted: list[tuple[str, object, int]],
) -> list[str]:
    """§5.2 re-insertion loop: re-home ``pid``'s inserted files."""
    moved: list[str] = []
    for name, payload, version in inserted:
        entry = system.catalog.get(name)
        if entry is None:  # pragma: no cover - defensive
            continue
        tree = system.tree(entry.target)
        sid = subtree_of_pid(tree, pid, system.b)
        view = SubtreeView(tree, system.b, sid)
        try:
            new_home = view.storage_node(system.membership)
        except NoLiveNodeError:
            # The subtree emptied out.  Other subtrees may still hold
            # the file (b > 0); if none do, it is gone.
            if not system.holders_of(name):
                system.faults.append(name)
            continue
        system.stores[new_home].store(
            name, payload, version, FileOrigin.INSERTED, system.now
        )
        moved.append(name)
    gc_orphan_replicas(system)
    return moved


def fail_node(system: "LessLogSystem", pid: int) -> list[str]:
    """§5.3: ``P(pid)`` crashes; returns the files recovered.

    Files that were homed at the crashed node with no surviving copy
    anywhere are appended to ``system.faults``.
    """
    if not system.is_live(pid):
        raise MembershipError(f"P({pid}) is not live")
    # The node's storage is destroyed — deliberately never read.
    system.stores.pop(pid)
    system.membership.register_dead(pid)
    recovered = _recover_after_loss(system, pid)
    system.metrics.counter("system.failures").inc()
    system.tracer.emit(system.now, "fail", pid=pid, recovered=recovered)
    return recovered


def _recover_after_loss(system: "LessLogSystem", pid: int) -> list[str]:
    """§5.3 recovery loop: re-home files orphaned by the death of ``pid``."""
    recovered: list[str] = []
    for name, entry in system.catalog.items():
        if name in system.faults:
            continue
        tree = system.tree(entry.target)
        sid = subtree_of_pid(tree, pid, system.b)
        view = SubtreeView(tree, system.b, sid)
        try:
            new_home = view.storage_node(system.membership)
        except NoLiveNodeError:
            if not system.holders_of(name):
                system.faults.append(name)
            continue
        if _inserted_holder(system, view, name) is not None:
            continue  # the crashed node was not this subtree's home
        donor = _any_holder(system, name)
        if donor is None:
            system.faults.append(name)
            continue
        copy = system.stores[donor].get(name, count_access=False)
        system.stores[new_home].store(
            name, copy.payload, copy.version, FileOrigin.INSERTED, system.now
        )
        recovered.append(name)
    gc_orphan_replicas(system)
    return recovered


def kill_node(system: "LessLogSystem", pid: int) -> None:
    """First half of §5.3 under live churn: the instant of death.

    The storage is destroyed and the membership flipped the moment the
    node dies; recovery belongs to :func:`recover_node`, which models
    the (possibly much later) *detection* of the failure.  Splitting
    the two halves lets the oracle replay a crash at the exact oplog
    position where the live cluster retired the node, with replication
    decisions taken mid-churn interleaving between the halves.
    """
    if not system.is_live(pid):
        raise MembershipError(f"P({pid}) is not live")
    system.stores.pop(pid)
    system.membership.register_dead(pid)
    system.metrics.counter("system.kills").inc()
    system.tracer.emit(system.now, "kill", pid=pid)


def recover_node(system: "LessLogSystem", pid: int) -> list[str]:
    """Second half of §5.3: recovery once the crash of ``pid`` is detected."""
    if system.is_live(pid):
        raise MembershipError(f"P({pid}) is live; kill it first")
    recovered = _recover_after_loss(system, pid)
    system.metrics.counter("system.recoveries").inc()
    system.tracer.emit(system.now, "recover", pid=pid, recovered=recovered)
    return recovered


def arrive_node(system: "LessLogSystem", pid: int) -> None:
    """First half of §5.1: the newcomer registers live with an empty store."""
    check_id(pid, system.m)
    if system.is_live(pid):
        raise MembershipError(f"P({pid}) is already live")
    system.membership.register_live(pid)
    system.stores[pid] = FileStore()
    system.metrics.counter("system.arrivals").inc()
    system.tracer.emit(system.now, "arrive", pid=pid)


def settle_node(system: "LessLogSystem", pid: int) -> list[str]:
    """Second half of §5.1: migrate to ``pid`` the files its absence displaced."""
    if not system.is_live(pid):
        raise MembershipError(f"P({pid}) has not arrived")
    migrated = _migrate_to_newcomer(system, pid)
    system.metrics.counter("system.settles").inc()
    system.tracer.emit(system.now, "settle", pid=pid, migrated=migrated)
    return migrated


def depart_node(system: "LessLogSystem", pid: int) -> list[tuple[str, object, int]]:
    """First half of §5.2: the leaver goes dark, its replicas discarded.

    Returns the ``(name, payload, version)`` triples of its *inserted*
    files, which :func:`reinsert_node` re-homes once the departure is
    processed.
    """
    if not system.is_live(pid):
        raise MembershipError(f"P({pid}) is not live")
    store = system.stores.pop(pid)
    inserted = [(c.name, c.payload, c.version) for c in store.inserted_files()]
    system.membership.register_dead(pid)
    system.metrics.counter("system.departures").inc()
    system.tracer.emit(system.now, "depart", pid=pid, inserted=[n for n, _, _ in inserted])
    return inserted


def reinsert_node(
    system: "LessLogSystem",
    pid: int,
    inserted: list[tuple[str, object, int]],
) -> list[str]:
    """Second half of §5.2: re-home the departed node's inserted files."""
    moved = _reinsert_files(system, pid, inserted)
    system.metrics.counter("system.reinserts").inc()
    system.tracer.emit(system.now, "reinsert", pid=pid, moved=moved)
    return moved


def _inserted_holder(
    system: "LessLogSystem", view: SubtreeView, name: str, exclude: int | None = None
) -> int | None:
    """The live subtree member holding the INSERTED copy, if any."""
    for member in view.members():
        if member == exclude or not system.is_live(member):
            continue
        store = system.stores[member]
        if name in store and (
            store.get(name, count_access=False).origin is FileOrigin.INSERTED
        ):
            return member
    return None


def _any_holder(system: "LessLogSystem", name: str) -> int | None:
    """Any live node holding a copy, preferring INSERTED copies."""
    best: int | None = None
    for pid in system.holders_of(name):
        origin = system.stores[pid].get(name, count_access=False).origin
        if origin is FileOrigin.INSERTED:
            return pid
        if best is None:
            best = pid
    return best
