"""Churn / fault-injection schedules.

Generates reproducible sequences of join / leave / fail events and
applies them to a :class:`~repro.cluster.system.LessLogSystem` — the
"real-world scenario where nodes dynamically join and leave" the
paper's §8 names as future work.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from ..core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from .system import LessLogSystem

__all__ = ["ChurnKind", "ChurnEvent", "ChurnSchedule"]


class ChurnKind(Enum):
    JOIN = "join"
    LEAVE = "leave"
    FAIL = "fail"


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change at a simulated time."""

    time: float
    kind: ChurnKind
    pid: int

    def to_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind.value, "pid": self.pid}

    @classmethod
    def from_dict(cls, data: dict) -> "ChurnEvent":
        time = float(data["time"])
        if not math.isfinite(time):
            raise ConfigurationError(
                f"churn event time must be finite, got {data['time']!r}"
            )
        return cls(time=time, kind=ChurnKind(data["kind"]), pid=int(data["pid"]))


class ChurnSchedule:
    """A time-ordered list of churn events with application helpers."""

    def __init__(self, events: list[ChurnEvent]) -> None:
        self.events = sorted(events, key=lambda e: e.time)
        self._cursor = 0

    @classmethod
    def generate(
        cls,
        system: "LessLogSystem",
        duration: float,
        rate: float,
        seed: int = 0,
        weights: tuple[float, float, float] = (1.0, 1.0, 1.0),
    ) -> "ChurnSchedule":
        """Poisson churn over ``duration`` at ``rate`` events/second.

        ``weights`` are relative odds of (join, leave, fail).  The
        generator tracks membership so joins target currently-dead PIDs
        and leaves/fails target currently-live ones, and never empties
        the system.
        """
        if duration < 0 or rate < 0:
            raise ConfigurationError("duration and rate must be non-negative")
        rng = random.Random(seed)
        live = set(system.membership.live_pids())
        all_pids = set(range(1 << system.m))
        events: list[ChurnEvent] = []
        t = 0.0
        kinds = [ChurnKind.JOIN, ChurnKind.LEAVE, ChurnKind.FAIL]
        while rate > 0:
            t += rng.expovariate(rate)
            if t > duration:
                break
            kind = rng.choices(kinds, weights=weights)[0]
            if kind is ChurnKind.JOIN:
                candidates = sorted(all_pids - live)
                if not candidates:
                    continue
                pid = rng.choice(candidates)
                live.add(pid)
            else:
                candidates = sorted(live)
                if len(candidates) <= 1:
                    continue  # never empty the system
                pid = rng.choice(candidates)
                live.discard(pid)
            events.append(ChurnEvent(time=t, kind=kind, pid=pid))
        return cls(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- serialization ------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        """Plain-data form of the (sorted) event list."""
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_dicts(cls, data: list[dict]) -> "ChurnSchedule":
        return cls([ChurnEvent.from_dict(d) for d in data])

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dicts(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ChurnSchedule":
        return cls.from_dicts(json.loads(text))

    def pending(self) -> list[ChurnEvent]:
        return self.events[self._cursor :]

    def apply_until(self, system: "LessLogSystem", time: float) -> list[ChurnEvent]:
        """Apply every not-yet-applied event with ``event.time <= time``."""
        applied: list[ChurnEvent] = []
        while self._cursor < len(self.events) and self.events[self._cursor].time <= time:
            event = self.events[self._cursor]
            self._cursor += 1
            system.now = event.time
            self.apply_one(system, event)
            applied.append(event)
        return applied

    @staticmethod
    def apply_one(system: "LessLogSystem", event: ChurnEvent) -> None:
        """Apply a single event to the system."""
        if event.kind is ChurnKind.JOIN:
            system.join(event.pid)
        elif event.kind is ChurnKind.LEAVE:
            system.leave(event.pid)
        else:
            system.fail(event.pid)

    def apply_all(self, system: "LessLogSystem") -> int:
        """Apply every remaining event; returns how many were applied."""
        return len(self.apply_until(system, float("inf")))
