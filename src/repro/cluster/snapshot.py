"""Snapshot / restore for LessLogSystem state.

Serialises the durable state of a system — membership, per-node stores
(with origins, versions, access counters), and the file catalog — to a
JSON document, and rebuilds an equivalent system from one.  Payloads
must be JSON-serialisable (strings/bytes/numbers/lists/dicts); bytes
are base64-tagged.

Used for experiment checkpointing and for the ``lesslog audit``-style
offline inspection workflows.
"""

from __future__ import annotations

import base64
import json
from typing import Any

from ..core.errors import ConfigurationError
from ..node.storage import FileOrigin
from .system import CatalogEntry, LessLogSystem

__all__ = ["snapshot_to_dict", "snapshot_to_json", "restore_from_dict", "restore_from_json"]

_FORMAT_VERSION = 1


def _encode_payload(payload: Any) -> Any:
    if isinstance(payload, bytes):
        return {"__bytes__": base64.b64encode(payload).decode("ascii")}
    return payload


def _decode_payload(payload: Any) -> Any:
    if isinstance(payload, dict) and set(payload) == {"__bytes__"}:
        return base64.b64decode(payload["__bytes__"])
    return payload


def snapshot_to_dict(system: LessLogSystem) -> dict:
    """Capture the durable state of ``system`` as plain data."""
    return {
        "format": _FORMAT_VERSION,
        "m": system.m,
        "b": system.b,
        "psi_salt": system.psi.salt,
        "now": system.now,
        "live": sorted(system.membership.live_pids()),
        "faults": sorted(set(system.faults)),
        "catalog": [
            {"name": e.name, "target": e.target, "version": e.version}
            for e in system.catalog.values()
        ],
        "stores": {
            str(pid): [
                {
                    "name": f.name,
                    "payload": _encode_payload(f.payload),
                    "version": f.version,
                    "origin": f.origin.value,
                    "access_count": f.access_count,
                    "stored_at": f.stored_at,
                }
                for f in (store.get(n, count_access=False) for n in store.names())
            ]
            for pid, store in sorted(system.stores.items())
        },
    }


def snapshot_to_json(system: LessLogSystem, indent: int | None = None) -> str:
    return json.dumps(snapshot_to_dict(system), indent=indent, sort_keys=True)


def restore_from_dict(data: dict, check: bool = True) -> LessLogSystem:
    """Rebuild a system from :func:`snapshot_to_dict` output.

    ``check=False`` skips the placement-invariant assertion, letting
    verification tooling round-trip a *deliberately* corrupted system
    (e.g. a fuzzer mutation) and report the violation itself instead of
    crashing inside the restore.
    """
    if data.get("format") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported snapshot format {data.get('format')!r}"
        )
    from ..core.hashing import Psi

    system = LessLogSystem(
        m=int(data["m"]),
        b=int(data["b"]),
        live=set(int(p) for p in data["live"]),
        psi=Psi(int(data["m"]), salt=str(data.get("psi_salt", ""))),
    )
    system.now = float(data.get("now", 0.0))
    system.faults = list(data.get("faults", []))
    for entry in data["catalog"]:
        system.catalog[entry["name"]] = CatalogEntry(
            name=entry["name"],
            target=int(entry["target"]),
            version=int(entry["version"]),
        )
    for pid_str, files in data["stores"].items():
        pid = int(pid_str)
        if pid not in system.stores:
            raise ConfigurationError(
                f"snapshot stores files at dead node P({pid})"
            )
        store = system.stores[pid]
        for f in files:
            stored = store.store(
                f["name"],
                _decode_payload(f["payload"]),
                int(f["version"]),
                FileOrigin(f["origin"]),
                now=float(f.get("stored_at", 0.0)),
            )
            stored.access_count = int(f.get("access_count", 0))
    if check:
        system.check_invariants()
    return system


def restore_from_json(text: str, check: bool = True) -> LessLogSystem:
    return restore_from_dict(json.loads(text), check=check)
