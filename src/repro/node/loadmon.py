"""Load monitoring: sliding-window request rates and overload detection.

The paper's overload criterion is a plain threshold — "if a node
receives more than [capacity] requests per second, it is overloaded".
The DES measures rates over a sliding window; per-file and per-source
breakdowns feed replica placement (hottest file) and the log-based
baseline (which child forwards most).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

__all__ = ["WindowedRate", "LoadMonitor"]


class WindowedRate:
    """Events-per-second over a trailing window."""

    __slots__ = ("window", "_times", "total")

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._times: deque[float] = deque()
        self.total = 0

    def record(self, now: float) -> None:
        """Record one event at time ``now`` (non-decreasing).

        Expiry is deferred to the read side (:meth:`rate` /
        :meth:`count`): record sits on the runtime's per-served-request
        path, and popping stale entries there buys nothing until
        someone actually asks for the rate.
        """
        if self._times and now < self._times[-1]:
            raise ValueError(f"events must be recorded in order ({now})")
        self._times.append(now)
        self.total += 1

    def rate(self, now: float) -> float:
        """Events per second over the window ending at ``now``."""
        self._expire(now)
        return len(self._times) / self.window

    def count(self, now: float) -> int:
        """Raw event count still inside the window."""
        self._expire(now)
        return len(self._times)

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        times = self._times
        while times and times[0] <= cutoff:
            times.popleft()


@dataclass
class _FileLoad:
    served: WindowedRate
    by_source: dict[int, WindowedRate]


class LoadMonitor:
    """Per-node request accounting.

    Tracks, per file: the rate of requests this node *served* (returned
    the file for), and the rate broken down by the immediate overlay
    source that forwarded them (``-1`` = arrived directly from a
    client).  The per-source split is exactly the information a
    client-access log would contain — only the log-based baseline is
    allowed to look at it.
    """

    def __init__(self, capacity: float = 100.0, window: float = 1.0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.window = window
        self._loads: dict[str, _FileLoad] = {}
        self._total = WindowedRate(window)
        # file → (rate, t0): synthetic load attributed from a crashed
        # holder, decaying linearly to zero over one window.
        self._inherited: dict[str, tuple[float, float]] = {}

    def _load(self, file: str) -> _FileLoad:
        entry = self._loads.get(file)
        if entry is None:
            entry = _FileLoad(WindowedRate(self.window), defaultdict(lambda: WindowedRate(self.window)))
            self._loads[file] = entry
        return entry

    def record_served(self, file: str, source: int, now: float) -> None:
        """This node returned ``file`` for a request forwarded by ``source``."""
        entry = self._load(file)
        entry.served.record(now)
        entry.by_source[source].record(now)
        self._total.record(now)

    def inherit(self, file: str, rate: float, now: float) -> None:
        """Attribute load a crashed holder of ``file`` was carrying.

        The heir has no samples for demand that used to land on the
        dead node, yet that demand is about to arrive — without this,
        the overload triggers stay blind for a full window after a
        crash.  Seed the monitor with the victim's last observed rate,
        decayed linearly over one window so real samples take over as
        they arrive.  Inherited load is synthetic: it feeds the
        overload views (:meth:`total_rate` / :meth:`file_rate` /
        :meth:`hottest_file`) but never :meth:`source_rates` — the
        access log only ever contains requests this node actually
        served.
        """
        if rate <= 0.0:
            return
        self._inherited[file] = (self._inherited_rate(file, now) + rate, now)

    def _inherited_rate(self, file: str, now: float) -> float:
        entry = self._inherited.get(file)
        if entry is None:
            return 0.0
        rate, t0 = entry
        remaining = rate * (1.0 - (now - t0) / self.window)
        if remaining <= 0.0:
            del self._inherited[file]
            return 0.0
        return min(remaining, rate)

    def total_rate(self, now: float) -> float:
        """Requests served per second, all files (plus inherited load)."""
        inherited = sum(self._inherited_rate(f, now) for f in list(self._inherited))
        return self._total.rate(now) + inherited

    def file_rate(self, file: str, now: float) -> float:
        entry = self._loads.get(file)
        served = entry.served.rate(now) if entry else 0.0
        return served + self._inherited_rate(file, now)

    def is_overloaded(self, now: float) -> bool:
        return self.total_rate(now) > self.capacity

    def hottest_file(self, now: float) -> str | None:
        """The file contributing the most load (served + inherited) right now."""
        best, best_rate = None, 0.0
        for name in sorted(set(self._loads) | set(self._inherited)):
            rate = self.file_rate(name, now)
            if rate > best_rate:
                best, best_rate = name, rate
        return best

    def source_rates(self, file: str, now: float) -> dict[int, float]:
        """Per-forwarder service rates for ``file`` (the 'access log')."""
        entry = self._loads.get(file)
        if entry is None:
            return {}
        return {
            src: wr.rate(now)
            for src, wr in sorted(entry.by_source.items())
            if wr.rate(now) > 0.0
        }

    def reset(self) -> None:
        self._loads.clear()
        self._inherited.clear()
        self._total = WindowedRate(self.window)
