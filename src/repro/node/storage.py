"""Per-node file storage.

§5.2 distinguishes two categories of stored file — *inserted* files
(the original copy placed by ``ADVANCEDINSERTFILE``) and *replicated*
files (pushed by an overloaded holder).  The distinction matters for
churn: a leaving node must migrate its inserted files but may discard
replicas.  The store also keeps per-file access counters, feeding the
counter-based replica-removal mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from ..core.errors import StorageError

__all__ = ["FileOrigin", "StoredFile", "FileStore"]


class FileOrigin(Enum):
    """How a copy arrived at this node."""

    INSERTED = "inserted"
    REPLICATED = "replicated"


@dataclass
class StoredFile:
    """One local copy of a file."""

    name: str
    payload: Any
    version: int
    origin: FileOrigin
    access_count: int = 0
    stored_at: float = 0.0

    def touch(self) -> None:
        self.access_count += 1


@dataclass
class FileStore:
    """A node's local storage: name → copy, with origin bookkeeping."""

    _files: dict[str, StoredFile] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def has(self, name: str) -> bool:
        return name in self._files

    def get(self, name: str, count_access: bool = True) -> StoredFile:
        """Fetch a copy; bumps the access counter unless told otherwise."""
        try:
            entry = self._files[name]
        except KeyError:
            raise StorageError(f"file {name!r} not in local store") from None
        if count_access:
            entry.touch()
        return entry

    def store(
        self,
        name: str,
        payload: Any,
        version: int,
        origin: FileOrigin,
        now: float = 0.0,
    ) -> StoredFile:
        """Store a copy.

        Re-storing an existing name keeps the *stronger* origin
        (INSERTED beats REPLICATED — a node can become the home of a
        file it already cached) and takes the newer version's payload.
        """
        existing = self._files.get(name)
        if existing is None:
            entry = StoredFile(name, payload, version, origin, stored_at=now)
            self._files[name] = entry
            return entry
        if version < existing.version:
            raise StorageError(
                f"refusing to downgrade {name!r} from v{existing.version} to v{version}"
            )
        existing.payload = payload
        existing.version = version
        if origin is FileOrigin.INSERTED:
            existing.origin = FileOrigin.INSERTED
        return existing

    def update(self, name: str, payload: Any, version: int) -> bool:
        """Apply an update if a copy is present; returns whether it was.

        Stale updates (version at or below the stored one) are ignored,
        which makes the top-down broadcast idempotent.
        """
        entry = self._files.get(name)
        if entry is None:
            return False
        if version > entry.version:
            entry.payload = payload
            entry.version = version
        return True

    def remove(self, name: str) -> StoredFile:
        """Drop a copy (replica pruning, or a leaving node clearing out)."""
        try:
            return self._files.pop(name)
        except KeyError:
            raise StorageError(f"file {name!r} not in local store") from None

    def discard(self, name: str) -> None:
        """Drop a copy if present."""
        self._files.pop(name, None)

    def names(self) -> list[str]:
        return sorted(self._files)

    def inserted_files(self) -> list[StoredFile]:
        """Original copies this node is the home of (§5.2 category 1)."""
        return [f for f in self._files.values() if f.origin is FileOrigin.INSERTED]

    def replicated_files(self) -> list[StoredFile]:
        """Replicas pushed here by overloaded holders (§5.2 category 2)."""
        return [f for f in self._files.values() if f.origin is FileOrigin.REPLICATED]

    def clear(self) -> None:
        self._files.clear()
