"""Membership status words (paper §5.1).

    "For the sake of performance, we maintain in each live node the
    status word where each bit indicates whether a corresponding node
    is a live node."

:class:`StatusWord` is that bitmap.  It satisfies the core package's
``LivenessView`` protocol, so a node's own (possibly stale) view can be
plugged straight into the routing and placement algorithms — which is
how the paper's nodes actually operate.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..core.bits import check_id, check_width
from ..core.errors import MembershipError

__all__ = ["StatusWord"]


class StatusWord:
    """A ``2**m``-bit liveness bitmap with set semantics.

    Internally one Python int; bit ``p`` set means ``P(p)`` is live.
    """

    __slots__ = ("_m", "_bits", "_epoch")

    def __init__(self, m: int, live: Iterable[int] = ()) -> None:
        check_width(m)
        self._m = m
        self._bits = 0
        self._epoch = 0
        for pid in live:
            check_id(pid, m)
            self._bits |= 1 << pid

    @classmethod
    def full(cls, m: int) -> "StatusWord":
        """All ``2**m`` identifiers live."""
        word = cls(m)
        word._bits = (1 << (1 << m)) - 1
        return word

    @classmethod
    def from_int(cls, m: int, bits: int) -> "StatusWord":
        check_width(m)
        if not 0 <= bits < (1 << (1 << m)):
            raise MembershipError(f"bitmap out of range for m={m}")
        word = cls(m)
        word._bits = bits
        return word

    # -- LivenessView protocol -----------------------------------------

    @property
    def m(self) -> int:
        return self._m

    def is_live(self, pid: int) -> bool:
        check_id(pid, self._m)
        return bool(self._bits >> pid & 1)

    def live_pids(self) -> Iterator[int]:
        bits = self._bits
        pid = 0
        while bits:
            if bits & 1:
                yield pid
            bits >>= 1
            pid += 1

    def live_count(self) -> int:
        return self._bits.bit_count()

    @property
    def epoch(self) -> int:
        """Mutation counter: bumped whenever the bitmap changes."""
        return self._epoch

    def cache_token(self) -> tuple:
        """Content fingerprint for the routing-table cache.

        The bitmap is a single int, so the token *is* the content — two
        words reporting identical liveness share a token, and any
        ``register_*`` mutation changes it, transparently invalidating
        cached :class:`~repro.core.routing.RoutingTable` entries.
        """
        return ("word", self._m, self._bits)

    # -- mutation --------------------------------------------------------

    def register_live(self, pid: int) -> None:
        """§5.1: record ``P(pid)`` as a live node."""
        check_id(pid, self._m)
        bit = 1 << pid
        if not self._bits & bit:
            self._bits |= bit
            self._epoch += 1

    def register_dead(self, pid: int) -> None:
        """§5.2/§5.3: record ``P(pid)`` as a dead node."""
        check_id(pid, self._m)
        bit = 1 << pid
        if self._bits & bit:
            self._bits &= ~bit
            self._epoch += 1

    def merge(self, other: "StatusWord") -> None:
        """Adopt another node's word (§5.1: 'obtains the updated status
        word from a neighboring live node')."""
        if other._m != self._m:
            raise MembershipError(
                f"cannot merge status words of widths {other._m} and {self._m}"
            )
        if self._bits != other._bits:
            self._bits = other._bits
            self._epoch += 1

    def copy(self) -> "StatusWord":
        return StatusWord.from_int(self._m, self._bits)

    def as_int(self) -> int:
        return self._bits

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StatusWord)
            and other._m == self._m
            and other._bits == self._bits
        )

    def __hash__(self) -> int:
        return hash((self._m, self._bits))

    def __contains__(self, pid: int) -> bool:
        return self.is_live(pid)

    def __repr__(self) -> str:
        return f"StatusWord(m={self._m}, live={self.live_count()})"
