"""Node runtime: storage, load monitoring, membership, message handling."""

from .loadmon import LoadMonitor, WindowedRate
from .membership import StatusWord
from .storage import FileOrigin, FileStore, StoredFile

__all__ = [
    "FileOrigin",
    "FileStore",
    "LoadMonitor",
    "StatusWord",
    "StoredFile",
    "WindowedRate",
]
