"""§5.1 status-word dissemination over the transport.

    "we maintain in each live node the status word [...] P(k) next
    broadcasts to every live node a message of registering P(k) as a
    live node.  At the same time, it obtains the updated status word
    from a neighboring live node."

:class:`MembershipAgent` implements that protocol for one node: it owns
the node's local (possibly stale) :class:`StatusWord`, applies incoming
``REGISTER_LIVE`` / ``REGISTER_DEAD`` messages, and can broadcast a
membership change to everyone its word currently believes alive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..net.message import Message, MessageKind
from .membership import StatusWord

if TYPE_CHECKING:  # pragma: no cover
    from ..net.transport import Transport

__all__ = ["MembershipAgent"]


class MembershipAgent:
    """One node's view of the membership, kept fresh by broadcasts."""

    def __init__(self, pid: int, word: StatusWord, transport: "Transport") -> None:
        self.pid = pid
        self.word = word
        self.transport = transport

    def handle(self, msg: Message) -> bool:
        """Apply a membership message; returns True when consumed."""
        if msg.kind is MessageKind.REGISTER_LIVE:
            self.word.register_live(int(msg.payload))
            return True
        if msg.kind is MessageKind.REGISTER_DEAD:
            self.word.register_dead(int(msg.payload))
            return True
        return False

    def broadcast(self, kind: MessageKind, subject: int) -> int:
        """Send a registration to every node this word believes alive.

        Returns the number of messages sent.  The subject's own entry
        is updated locally first, so the broadcast set reflects the
        change (a leaver is not messaged about its own departure).
        """
        if kind is MessageKind.REGISTER_LIVE:
            self.word.register_live(subject)
        elif kind is MessageKind.REGISTER_DEAD:
            self.word.register_dead(subject)
        else:
            raise ValueError(f"{kind} is not a membership message kind")
        sent = 0
        for peer in self.word.live_pids():
            if peer == self.pid:
                continue
            self.transport.send(
                Message(kind=kind, src=self.pid, dst=peer, payload=subject)
            )
            sent += 1
        return sent

    def adopt(self, other: StatusWord) -> None:
        """§5.1: copy a neighbour's (fresher) status word."""
        self.word.merge(other)
