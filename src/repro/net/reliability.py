"""The request-reliability layer: timeouts, retry/backoff, dead letters.

The transport is fire-and-forget: a message hit by the loss model or a
crashed destination is counted and traced, but the request it carried
silently never completes.  :class:`RequestTracker` closes that gap for
client-originated requests.  Every issued request gets a per-attempt
deadline on the DES engine; on expiry the tracker retries with
exponential backoff and deterministic seeded jitter, re-resolving the
entry point through a caller-supplied ``reroute`` hook so retries route
around nodes that died mid-flight — the client-side dual of the paper's
``FINDLIVENODE`` (§3).  A request that exhausts its attempt budget
lands in a :class:`DeadLetter` with its full attempt history.

A server that sheds a request under admission control answers with an
``OVERLOAD`` reply carrying an optional redirect hint; the tracker's
:meth:`RequestTracker.on_overload` cancels the pending deadline and —
budget permitting — retries straight at the hinted replica after a
jittered backoff.  A shed request that is out of budget (or got no
usable hint) terminates in the ``shed_letters`` list: a distinct
terminal state, not an expiry, because the server *told* us it refused
the work.

Churn makes hints go stale: a shedder may name a replica that died
between the FINDLIVENODE discovery that produced the hint and the
moment the client acts on it.  With a ``liveness`` oracle installed,
the tracker treats a dead redirect target as a *reroute* (the paper's
FINDLIVENODE applied client-side, §3) rather than a wasted attempt:
the ``reroute`` hook picks a fresh entry, ``request.stale_hints``
counts the dodge, and only when no live entry exists does the request
terminate in ``churn_letters`` — a churn loss, distinct from both
expiry and shed, because neither the client nor any server refused
the work; the membership underneath it moved.

Accounting is exact and audit-ready: counters
``request.{issued,completed,retried,expired,rerouted,stale_replies,``
``overloads,shed,stale_hints,churn_lost}``, histograms
``request.latency`` / ``request.attempts``, and ``retry`` / ``expire``
/ ``overload`` / ``shed`` / ``churn_lost`` trace records move in
lockstep, so verification layers can check the conservation identity

    ``request.issued == completed + inflight + dead_letter + shed
    + churn_lost``

at any instant, and ``inflight == 0`` once the engine drains — every
request terminates with a defined outcome.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field, replace

from ..core.errors import ConfigurationError, SimulationError
from ..sim.engine import Engine
from ..sim.events import EventHandle
from ..sim.metrics import MetricsRegistry
from ..sim.trace import Tracer
from .message import Message

__all__ = ["Attempt", "DeadLetter", "RequestTracker", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline / retry knobs for one request (or a tracker's default).

    ``max_attempts`` counts *all* sends including the first, so
    ``max_attempts=1`` is plain fire-and-expire (no retries).  Retry
    ``k`` waits ``backoff_base * backoff_factor**(k-1)`` after the
    timeout, stretched by a seeded jitter of up to ``±jitter`` of
    itself — deterministic for a fixed tracker seed and event order.
    """

    timeout: float = 0.25
    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {self.timeout}")
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0:
            raise ConfigurationError(
                f"backoff_base must be non-negative, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be at least 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, retry_number: int) -> float:
        """Nominal (un-jittered) wait before retry ``retry_number >= 1``."""
        return self.backoff_base * self.backoff_factor ** (retry_number - 1)


@dataclass(frozen=True)
class Attempt:
    """One send of a tracked request."""

    number: int
    entry: int
    sent_at: float


@dataclass(frozen=True)
class DeadLetter:
    """A request that exhausted its budget, with full attempt history."""

    request_id: int
    kind: str
    file: str
    budget: int
    first_sent: float
    expired_at: float
    attempts: tuple[Attempt, ...]


@dataclass
class _Tracked:
    """Tracker-internal state of one inflight request."""

    message: Message
    send: Callable[[Message], None]
    reroute: Callable[[int], int | None] | None
    policy: RetryPolicy
    attempts: list[Attempt] = field(default_factory=list)
    pending: EventHandle | None = None
    """The next scheduled event for this request: its attempt's timeout,
    or the backoff-delayed retry."""


class RequestTracker:
    """Registers client requests, enforces deadlines, retries, expires.

    The tracker owns the request lifecycle but not the wire: each
    request carries its own ``send`` callable (normally
    ``Transport.send``) and an optional ``reroute`` hook mapping the
    previous entry PID to the one the retry should use (``None`` =
    nowhere left to enter, expire immediately).  Replies are matched by
    ``request_id`` via :meth:`complete`; retries re-send the same id,
    so a late first reply still completes the request and any further
    replies count as ``request.stale_replies``.
    """

    def __init__(
        self,
        engine: Engine,
        policy: RetryPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        seed: int = 0,
        liveness: Callable[[int], bool] | None = None,
    ) -> None:
        self.engine = engine
        self.policy = policy if policy is not None else RetryPolicy()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._rng = random.Random(seed)
        self._inflight: dict[int, _Tracked] = {}
        self._completed_ids: set[int] = set()
        self.dead_letters: list[DeadLetter] = []
        self.shed_letters: list[DeadLetter] = []
        self.churn_letters: list[DeadLetter] = []
        self.liveness = liveness
        """Optional PID-liveness oracle.  When set, redirect hints naming
        a dead node are rerouted (or churn-lost) instead of fired at a
        corpse — see :meth:`on_overload`."""

    # -- observability ----------------------------------------------------

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    @property
    def inflight_ids(self) -> frozenset[int]:
        return frozenset(self._inflight)

    @property
    def completed_ids(self) -> frozenset[int]:
        return frozenset(self._completed_ids)

    @property
    def issued(self) -> int:
        return self.metrics.counter("request.issued").value

    @property
    def completed(self) -> int:
        return self.metrics.counter("request.completed").value

    @property
    def expired(self) -> int:
        return self.metrics.counter("request.expired").value

    @property
    def shed(self) -> int:
        return self.metrics.counter("request.shed").value

    @property
    def overloads(self) -> int:
        return self.metrics.counter("request.overloads").value

    @property
    def churn_lost(self) -> int:
        return self.metrics.counter("request.churn_lost").value

    @property
    def stale_hints(self) -> int:
        return self.metrics.counter("request.stale_hints").value

    # -- lifecycle ---------------------------------------------------------

    def issue(
        self,
        message: Message,
        send: Callable[[Message], None],
        reroute: Callable[[int], int | None] | None = None,
        policy: RetryPolicy | None = None,
    ) -> int:
        """Send ``message`` (attempt 1) and track it to a defined outcome."""
        if message.request_id in self._inflight:
            raise SimulationError(
                f"request {message.request_id} is already being tracked"
            )
        record = _Tracked(
            message=message,
            send=send,
            reroute=reroute,
            policy=policy if policy is not None else self.policy,
        )
        self._inflight[message.request_id] = record
        self.metrics.counter("request.issued").inc()
        self._send_attempt(record)
        return message.request_id

    def complete(self, request_id: int) -> bool:
        """A reply arrived: settle the request (idempotent for dupes)."""
        record = self._inflight.pop(request_id, None)
        if record is None:
            # Duplicate reply, or one that raced past its own expiry.
            self.metrics.counter("request.stale_replies").inc()
            return False
        if record.pending is not None:
            record.pending.cancel()
        self._completed_ids.add(request_id)
        self.metrics.counter("request.completed").inc()
        self.metrics.histogram("request.latency").observe(
            self.engine.now - record.attempts[0].sent_at
        )
        self.metrics.histogram("request.attempts").observe(float(len(record.attempts)))
        return True

    def on_overload(self, request_id: int, redirect: int | None = None) -> bool:
        """An ``OVERLOAD`` reply arrived: reroute at the hint or shed.

        The shedding server refused the work and (maybe) named an
        alternative holder.  With a usable hint (``redirect >= 0``) and
        attempts left in the budget, the tracker retries straight at the
        hinted replica after a jittered backoff — counted under
        ``request.rerouted`` when the destination actually changes.
        Otherwise the request terminates in :attr:`shed_letters`: a
        distinct terminal state from expiry, because the refusal was
        explicit.

        When a :attr:`liveness` oracle is installed and the hint names
        a node it calls dead, the hint is *stale* — the replica died
        after the shedder discovered it.  The tracker never burns the
        attempt on a corpse: it counts ``request.stale_hints`` and
        reroutes through the request's ``reroute`` hook (FINDLIVENODE,
        client-side); only when no live entry remains does the request
        land in :attr:`churn_letters` — a churn loss, never a shed,
        because nobody refused the work.  Returns ``False`` for
        stale/unknown ids (counted as ``request.stale_replies``),
        ``True`` otherwise.
        """
        record = self._inflight.get(request_id)
        if record is None:
            self.metrics.counter("request.stale_replies").inc()
            return False
        if record.pending is not None:
            record.pending.cancel()
            record.pending = None
        self.metrics.counter("request.overloads").inc()
        self.tracer.emit(
            self.engine.now,
            "overload",
            request_id=request_id,
            file=record.message.file,
            redirect=redirect,
            attempt=len(record.attempts),
        )
        if (
            redirect is not None
            and redirect >= 0
            and len(record.attempts) < record.policy.max_attempts
        ):
            target: int | None = redirect
            if self.liveness is not None and not self.liveness(redirect):
                target = self._dodge_stale_hint(record, redirect)
                if target is None:
                    self._churn_lose(record)
                    return True
            if target != record.message.dst:
                self.metrics.counter("request.rerouted").inc()
                record.message = replace(record.message, dst=target)
            delay = self._jittered_backoff(record.policy, len(record.attempts))
            record.pending = self.engine.schedule(
                delay,
                lambda: self._redirect_retry(record),
                label=f"redirect:{record.message.kind.value}:{request_id}",
            )
            return True
        self._shed(record)
        return True

    # -- internals ---------------------------------------------------------

    def _send_attempt(self, record: _Tracked) -> None:
        record.attempts.append(
            Attempt(
                number=len(record.attempts) + 1,
                entry=record.message.dst,
                sent_at=self.engine.now,
            )
        )
        record.send(record.message)
        record.pending = self.engine.schedule(
            record.policy.timeout,
            lambda: self._on_timeout(record),
            label=f"timeout:{record.message.kind.value}:{record.message.request_id}",
        )

    def _on_timeout(self, record: _Tracked) -> None:
        request_id = record.message.request_id
        if request_id not in self._inflight:  # pragma: no cover - defensive
            return
        if len(record.attempts) >= record.policy.max_attempts:
            self._expire(record)
            return
        delay = self._jittered_backoff(record.policy, len(record.attempts))
        record.pending = self.engine.schedule(
            delay,
            lambda: self._retry(record),
            label=f"retry:{record.message.kind.value}:{request_id}",
        )

    def _retry(self, record: _Tracked) -> None:
        request_id = record.message.request_id
        entry = record.message.dst
        if record.reroute is not None:
            new_entry = record.reroute(entry)
            if new_entry is None:
                self._expire(record)
                return
            if new_entry != entry:
                self.metrics.counter("request.rerouted").inc()
                record.message = replace(record.message, dst=new_entry)
        self.metrics.counter("request.retried").inc()
        self.tracer.emit(
            self.engine.now,
            "retry",
            request_id=request_id,
            attempt=len(record.attempts) + 1,
            entry=record.message.dst,
            file=record.message.file,
        )
        self._send_attempt(record)

    def _redirect_retry(self, record: _Tracked) -> None:
        """Re-send at the overload redirect target (no reroute hook on
        the happy path: the shedding server already picked the
        destination).  The liveness oracle is consulted once more at
        fire time — the target may have died during the backoff."""
        request_id = record.message.request_id
        if request_id not in self._inflight:  # pragma: no cover - defensive
            return
        if self.liveness is not None and not self.liveness(record.message.dst):
            target = self._dodge_stale_hint(record, record.message.dst)
            if target is None:
                self._churn_lose(record)
                return
            if target != record.message.dst:
                self.metrics.counter("request.rerouted").inc()
                record.message = replace(record.message, dst=target)
        self.metrics.counter("request.retried").inc()
        self.tracer.emit(
            self.engine.now,
            "retry",
            request_id=request_id,
            attempt=len(record.attempts) + 1,
            entry=record.message.dst,
            file=record.message.file,
        )
        self._send_attempt(record)

    def _dodge_stale_hint(self, record: _Tracked, hint: int) -> int | None:
        """The redirect target is dead: pick a live entry instead.

        Counts ``request.stale_hints`` and asks the request's
        ``reroute`` hook for a replacement, rejecting any candidate the
        liveness oracle also calls dead.  Returns the live entry to
        fire at, or ``None`` when the request has nowhere left to go.
        """
        self.metrics.counter("request.stale_hints").inc()
        self.tracer.emit(
            self.engine.now,
            "stale_hint",
            request_id=record.message.request_id,
            file=record.message.file,
            hint=hint,
        )
        if record.reroute is None:
            return None
        new_entry = record.reroute(record.message.dst)
        if new_entry is None:
            return None
        if self.liveness is not None and not self.liveness(new_entry):
            return None
        return new_entry

    def _churn_lose(self, record: _Tracked) -> None:
        """Terminal churn loss: the membership moved under the request.

        The hinted replica is dead and no live entry remains.  Nobody
        refused the work (not a shed) and the budget was not exhausted
        by timeouts (not an expiry) — the loss belongs to churn, and
        the conservation identity carries it as its own term.
        """
        request_id = record.message.request_id
        del self._inflight[request_id]
        self.churn_letters.append(
            DeadLetter(
                request_id=request_id,
                kind=record.message.kind.value,
                file=record.message.file,
                budget=record.policy.max_attempts,
                first_sent=record.attempts[0].sent_at,
                expired_at=self.engine.now,
                attempts=tuple(record.attempts),
            )
        )
        self.metrics.counter("request.churn_lost").inc()
        self.metrics.histogram("request.attempts").observe(float(len(record.attempts)))
        self.tracer.emit(
            self.engine.now,
            "churn_lost",
            request_id=request_id,
            file=record.message.file,
            attempts=len(record.attempts),
        )

    def _shed(self, record: _Tracked) -> None:
        """Terminal shed: the server refused the work, nowhere to go."""
        request_id = record.message.request_id
        del self._inflight[request_id]
        self.shed_letters.append(
            DeadLetter(
                request_id=request_id,
                kind=record.message.kind.value,
                file=record.message.file,
                budget=record.policy.max_attempts,
                first_sent=record.attempts[0].sent_at,
                expired_at=self.engine.now,
                attempts=tuple(record.attempts),
            )
        )
        self.metrics.counter("request.shed").inc()
        self.metrics.histogram("request.attempts").observe(float(len(record.attempts)))
        self.tracer.emit(
            self.engine.now,
            "shed",
            request_id=request_id,
            file=record.message.file,
            attempts=len(record.attempts),
        )

    def _jittered_backoff(self, policy: RetryPolicy, attempts_so_far: int) -> float:
        delay = policy.backoff(attempts_so_far)
        if policy.jitter:
            delay *= 1.0 + policy.jitter * (2.0 * self._rng.random() - 1.0)
        return max(delay, 0.0)

    def _expire(self, record: _Tracked) -> None:
        request_id = record.message.request_id
        del self._inflight[request_id]
        self.dead_letters.append(
            DeadLetter(
                request_id=request_id,
                kind=record.message.kind.value,
                file=record.message.file,
                budget=record.policy.max_attempts,
                first_sent=record.attempts[0].sent_at,
                expired_at=self.engine.now,
                attempts=tuple(record.attempts),
            )
        )
        self.metrics.counter("request.expired").inc()
        self.metrics.histogram("request.attempts").observe(float(len(record.attempts)))
        self.tracer.emit(
            self.engine.now,
            "expire",
            request_id=request_id,
            file=record.message.file,
            attempts=len(record.attempts),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestTracker(inflight={self.inflight_count}, "
            f"completed={self.completed}, dead_letters={len(self.dead_letters)}, "
            f"shed={len(self.shed_letters)}, churn_lost={len(self.churn_letters)})"
        )
