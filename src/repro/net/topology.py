"""Latency models for the simulated overlay network.

The paper's evaluation abstracts the underlay away, but a transport
needs *some* delay model to order events realistically.  Three are
provided; all are deterministic given their RNG stream.
"""

from __future__ import annotations

import random
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "CoordinateLatency",
]


@runtime_checkable
class LatencyModel(Protocol):
    """Maps a (src, dst) PID pair to a one-way delay in seconds."""

    def delay(self, src: int, dst: int) -> float: ...


class ConstantLatency:
    """Every hop costs the same fixed delay."""

    def __init__(self, seconds: float = 0.01) -> None:
        if seconds < 0:
            raise ValueError(f"latency must be non-negative, got {seconds}")
        self.seconds = seconds

    def delay(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else self.seconds


class UniformLatency:
    """Delay drawn uniformly from [low, high) per message (jitter)."""

    def __init__(self, low: float, high: float, rng: random.Random | None = None) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high})")
        self.low = low
        self.high = high
        self._rng = rng if rng is not None else random.Random(0)

    def delay(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return self._rng.uniform(self.low, self.high)


class CoordinateLatency:
    """Nodes are points on a unit torus; delay ∝ distance + base cost.

    A cheap stand-in for geographic placement: deterministic pairwise
    delays that satisfy symmetry and (approximate) triangle inequality,
    useful for the locality workload where region structure matters.
    """

    def __init__(
        self,
        n: int,
        base: float = 0.002,
        scale: float = 0.05,
        seed: int = 0,
    ) -> None:
        if n <= 0:
            raise ValueError(f"need a positive node count, got {n}")
        if base < 0 or scale < 0:
            raise ValueError("base and scale must be non-negative")
        rng = np.random.default_rng(seed)
        self._coords = rng.random((n, 2))
        self.base = base
        self.scale = scale
        self.n = n

    def delay(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        if not (0 <= src < self.n and 0 <= dst < self.n):
            raise ValueError(f"PID out of range for {self.n}-point topology")
        diff = np.abs(self._coords[src] - self._coords[dst])
        torus = np.minimum(diff, 1.0 - diff)
        return self.base + self.scale * float(np.hypot(*torus))
