"""The simulated message transport.

Delivers :class:`~repro.net.message.Message` objects between registered
handlers over the discrete-event engine, applying a latency model and
an optional loss rate.  Delivery to a node that has failed since the
send is silently dropped — exactly the behaviour a UDP-ish P2P overlay
would see — and counted.

Every dropped message is accounted under the ``transport.dropped.*``
counter family, split by reason (``loss`` for the random loss model,
``dead`` for delivery to an unregistered endpoint), and traced as a
``drop`` record carrying the same reason — so audits can reconcile
``sent == delivered + dropped.loss + dropped.dead`` exactly.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from ..core.errors import SimulationError
from ..sim.engine import Engine
from ..sim.metrics import MetricsRegistry
from ..sim.trace import Tracer
from .message import Message
from .topology import ConstantLatency, LatencyModel

__all__ = ["Transport"]

Handler = Callable[[Message], None]


class Transport:
    """Latency-delayed, lossy, liveness-aware message delivery."""

    def __init__(
        self,
        engine: Engine,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        rng: random.Random | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.engine = engine
        self.latency = latency if latency is not None else ConstantLatency()
        self.loss_rate = loss_rate
        self._rng = rng if rng is not None else random.Random(0)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._handlers: dict[int, Handler] = {}

    # -- endpoint management ---------------------------------------------

    def register(self, pid: int, handler: Handler) -> None:
        """Attach a node's message handler; replaces any previous one."""
        self._handlers[pid] = handler

    def unregister(self, pid: int) -> None:
        """Detach a node (messages in flight to it will be dropped)."""
        self._handlers.pop(pid, None)

    def is_registered(self, pid: int) -> bool:
        return pid in self._handlers

    # -- sending -----------------------------------------------------------

    def send(self, message: Message) -> None:
        """Queue ``message`` for delivery after the model's latency."""
        self.metrics.counter("transport.sent").inc()
        self.tracer.emit(
            self.engine.now,
            "send",
            msg_kind=message.kind.value,
            src=message.src,
            dst=message.dst,
            file=message.file,
            request_id=message.request_id,
        )
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self._drop(message, "loss")
            return
        delay = self.latency.delay(message.src, message.dst)
        if delay < 0:
            raise SimulationError(f"latency model produced negative delay {delay}")
        self.engine.schedule(
            delay,
            lambda: self._deliver(message),
            label=f"deliver:{message.kind.value}:{message.dst}",
        )

    def deliver_local(self, message: Message) -> None:
        """Deliver synchronously (used for a node talking to itself).

        Local delivery still counts as a send (with its trace record):
        the ``sent == delivered + dropped.*`` identity must survive a
        node talking to itself.  It bypasses latency and loss — there
        is no wire to lose the message on.
        """
        self.metrics.counter("transport.sent").inc()
        self.tracer.emit(
            self.engine.now,
            "send",
            msg_kind=message.kind.value,
            src=message.src,
            dst=message.dst,
            file=message.file,
            request_id=message.request_id,
        )
        self._deliver(message)

    def _drop(self, message: Message, reason: str) -> None:
        self.metrics.counter(f"transport.dropped.{reason}").inc()
        self.tracer.emit(
            self.engine.now,
            "drop",
            reason=reason,
            msg_kind=message.kind.value,
            dst=message.dst,
            request_id=message.request_id,
        )

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None:
            # Destination died (or never existed) — drop, like the real net.
            self._drop(message, "dead")
            return
        self.metrics.counter("transport.delivered").inc()
        self.metrics.histogram("transport.hops").observe(float(message.hops))
        handler(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Transport(endpoints={len(self._handlers)}, loss={self.loss_rate})"
