"""Simulated network substrate: messages, latency models, transport."""

from .message import Message, MessageKind
from .topology import (
    ConstantLatency,
    CoordinateLatency,
    LatencyModel,
    UniformLatency,
)
from .transport import Transport

__all__ = [
    "ConstantLatency",
    "CoordinateLatency",
    "LatencyModel",
    "Message",
    "MessageKind",
    "Transport",
    "UniformLatency",
]
