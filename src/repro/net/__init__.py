"""Simulated network substrate: messages, latency, transport, reliability."""

from .message import Message, MessageKind
from .reliability import Attempt, DeadLetter, RequestTracker, RetryPolicy
from .topology import (
    ConstantLatency,
    CoordinateLatency,
    LatencyModel,
    UniformLatency,
)
from .transport import Transport

__all__ = [
    "Attempt",
    "ConstantLatency",
    "CoordinateLatency",
    "DeadLetter",
    "LatencyModel",
    "Message",
    "MessageKind",
    "RequestTracker",
    "RetryPolicy",
    "Transport",
    "UniformLatency",
]
