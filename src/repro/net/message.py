"""Message types exchanged between simulated nodes.

The LessLog protocol needs only a handful of message kinds — the file
operations of §2.2/§3 plus membership broadcasts from §5.  Messages are
small immutable records; payloads ride along untouched.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["MessageKind", "Message", "fast_message"]

_msg_ids = itertools.count()


class MessageKind(Enum):
    """Protocol message kinds."""

    GET = "get"                      # lookup / read a file
    GET_REPLY = "get_reply"          # file contents back to the client
    GET_FAULT = "get_fault"          # no copy found (dead target, b=0)
    INSERT = "insert"                # store the original copy
    REPLICATE = "replicate"          # push a replica to a chosen node
    UPDATE = "update"                # top-down update broadcast
    REGISTER_LIVE = "register_live"  # §5.1 join broadcast
    REGISTER_DEAD = "register_dead"  # §5.2/§5.3 leave/fail broadcast
    TRANSFER = "transfer"            # file migration during churn
    ACK = "ack"                      # positive completion of a request
    ERROR = "error"                  # negative completion (reason in payload)
    OVERLOAD = "overload"            # admin: treat this node as overloaded
    REMOVE = "remove"                # drop a replicated copy (GC / pruning)
    DEMOTE = "demote"                # §5.1: inserted copy becomes a replica
    CONTROL = "control"              # scale-out bootstrap/worker coordination


@dataclass(frozen=True)
class Message:
    """One message in flight.

    ``src``/``dst`` are PIDs (``src = -1`` marks a client-originated
    request entering the overlay).  ``hops`` counts overlay forwards so
    experiments can read path lengths straight off delivered messages.
    ``origin`` is the PID where a client request entered the overlay
    (``-1`` until an entry node stamps it); the live runtime routes
    replies back through it, and ``forwarded`` copies preserve it.
    """

    kind: MessageKind
    src: int
    dst: int
    file: str = ""
    payload: Any = None
    version: int = 0
    hops: int = 0
    origin: int = -1
    request_id: int = field(default_factory=lambda: next(_msg_ids))

    def forwarded(self, new_src: int, new_dst: int) -> "Message":
        """A copy of this message forwarded one overlay hop."""
        # fast_message: this runs once per overlay hop on the runtime's
        # hot path, and both dataclasses.replace and the frozen
        # __init__ cost several times a direct __dict__ seed.
        return fast_message(
            self.kind, new_src, new_dst, self.file, self.payload,
            self.version, self.hops + 1, self.origin, self.request_id,
        )

    def reply(self, kind: MessageKind, payload: Any = None) -> "Message":
        """A reply travelling back to this message's source."""
        return fast_message(
            kind, self.dst, self.src, self.file, payload,
            self.version, self.hops, self.origin, self.request_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.kind.value} {self.src}->{self.dst} "
            f"file={self.file!r} hops={self.hops})"
        )


_MSG_NEW = Message.__new__


def fast_message(
    kind: MessageKind,
    src: int,
    dst: int,
    file: str = "",
    payload: Any = None,
    version: int = 0,
    hops: int = 0,
    origin: int = -1,
    request_id: int | None = None,
) -> Message:
    """Build a :class:`Message` without the frozen-``__setattr__`` toll.

    The generated ``__init__`` of a frozen dataclass routes every field
    through ``object.__setattr__``; seeding ``__dict__`` directly is
    ~3x cheaper, which matters on the wire-decode and reply paths that
    construct one message per frame.  The instance never escapes
    half-built, so immutability guarantees are unchanged.
    """
    msg = _MSG_NEW(Message)
    msg.__dict__.update(
        kind=kind, src=src, dst=dst, file=file, payload=payload,
        version=version, hops=hops, origin=origin,
        request_id=next(_msg_ids) if request_id is None else request_id,
    )
    return msg
