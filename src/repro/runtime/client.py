"""Async client and load generator for the live runtime.

:class:`RuntimeClient` speaks the wire protocol to one entry node:
requests go out as frames, a reader task resolves per-``request_id``
futures as replies land, and every call carries an asyncio deadline
(the live dual of the DES request-reliability layer's per-attempt
timeout — here a timed-out request simply reports ``timed_out``).

:class:`LoadGenerator` drives a whole cluster with a seeded workload:

* file popularity is ``uniform``, ``zipf`` (rank ** -s), or
  ``locality`` (a hot fraction absorbing a fixed share) — the same
  three shapes as ``repro.workloads``;
* entry nodes are drawn uniformly over the live set, one persistent
  client per node;
* **open-loop** mode fires at a target RPS on a fixed tick regardless
  of completions (the paper's requests-per-second axis); **closed-loop**
  mode keeps a fixed number of outstanding requests.

Every completed request records its latency; the report carries p50 /
p99 latency, achieved RPS, outcome counts, and the per-node served
counts read back from the cluster.
"""

from __future__ import annotations

import asyncio
import random
import statistics
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import ConfigurationError
from ..net.message import Message, MessageKind
from .node import CLIENT
from .wire import FrameError, WireDecodeError, encode_message, read_frame

_WRITE_HIGH_WATER = 1 << 16
"""Transport buffer level above which a request write awaits drain —
below it requests pipeline without a per-frame round trip."""

__all__ = [
    "ClientError",
    "RequestOutcome",
    "RuntimeClient",
    "WorkloadShape",
    "LoadReport",
    "LoadGenerator",
    "percentile",
]


class ClientError(Exception):
    """The cluster answered with an ERROR frame."""


@dataclass(frozen=True)
class RequestOutcome:
    """Terminal state of one client request."""

    ok: bool
    kind: str  # reply | fault | error | timeout
    payload: Any = None
    version: int = 0
    server: int = -1
    latency: float = 0.0


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation; 0.0 if empty."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class RuntimeClient:
    """One wire connection into the overlay via a fixed entry node."""

    def __init__(self, cluster, pid: int) -> None:
        self.cluster = cluster
        self.pid = pid
        self.wire_version = cluster.wire_version_of(pid)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._futures: dict[int, asyncio.Future] = {}
        self._task: asyncio.Task | None = None
        self._closed = False

    async def connect(self) -> "RuntimeClient":
        self._reader, self._writer = await self.cluster.open_connection(self.pid)
        self._task = asyncio.get_running_loop().create_task(
            self._read_loop(), name=f"client:{self.pid}"
        )
        return self

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while not self._closed:
                try:
                    msg, _version = await read_frame(
                        self._reader, self.cluster.config.max_frame,
                        self.wire_version,
                    )
                except WireDecodeError:
                    continue
                future = self._futures.pop(msg.request_id, None)
                if future is not None and not future.done():
                    future.set_result(msg)
        except (EOFError, FrameError, ConnectionError, OSError):
            pass

    async def _request(self, msg: Message, timeout: float) -> RequestOutcome:
        if self._writer is None:
            raise ConfigurationError("client is not connected")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._futures[msg.request_id] = future
        start = loop.time()
        self.cluster.count_client_send(self.pid)
        self._writer.write(encode_message(msg, self.wire_version))
        transport = self._writer.transport
        if (
            transport is not None
            and transport.get_write_buffer_size() > _WRITE_HIGH_WATER
        ):
            await self._writer.drain()
        try:
            reply = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._futures.pop(msg.request_id, None)
            return RequestOutcome(
                ok=False, kind="timeout", latency=loop.time() - start
            )
        latency = loop.time() - start
        if reply.kind is MessageKind.GET_FAULT:
            return RequestOutcome(ok=False, kind="fault", latency=latency)
        if reply.kind is MessageKind.ERROR:
            payload = reply.payload if isinstance(reply.payload, dict) else {}
            return RequestOutcome(
                ok=False, kind="error", payload=payload.get("reason"),
                latency=latency,
            )
        payload = reply.payload if isinstance(reply.payload, dict) else {}
        return RequestOutcome(
            ok=True,
            kind="reply",
            payload=payload.get("payload", reply.payload),
            version=reply.version,
            server=int(payload.get("server", reply.src)),
            latency=latency,
        )

    async def get(self, name: str, timeout: float = 5.0) -> RequestOutcome:
        return await self._request(
            Message(kind=MessageKind.GET, src=CLIENT, dst=self.pid, file=name),
            timeout,
        )

    async def insert(
        self, name: str, payload: Any = None, timeout: float = 5.0
    ) -> RequestOutcome:
        outcome = await self._request(
            Message(
                kind=MessageKind.INSERT, src=CLIENT, dst=self.pid,
                file=name, payload=payload,
            ),
            timeout,
        )
        if outcome.kind == "error":
            raise ClientError(str(outcome.payload))
        return outcome

    async def update(
        self, name: str, payload: Any = None, timeout: float = 5.0
    ) -> RequestOutcome:
        outcome = await self._request(
            Message(
                kind=MessageKind.UPDATE, src=CLIENT, dst=self.pid,
                file=name, payload=payload,
            ),
            timeout,
        )
        if outcome.kind == "error":
            raise ClientError(str(outcome.payload))
        return outcome

    async def close(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# -- workload shapes -----------------------------------------------------

@dataclass(frozen=True)
class WorkloadShape:
    """Seeded file-popularity shape for the load generator.

    ``uniform`` weighs every file equally; ``zipf`` weighs the rank-k
    file ``k ** -s`` under a seeded rank shuffle; ``locality`` gives a
    ``hot_fraction`` of the files a combined ``hot_share`` of the
    demand — the same three shapes as ``repro.workloads`` applied to
    files instead of entry nodes.
    """

    kind: str = "zipf"
    s: float = 1.0
    hot_fraction: float = 0.1
    hot_share: float = 0.9

    def weights(self, count: int, rng: random.Random) -> list[float]:
        if count < 1:
            raise ConfigurationError("a workload needs at least one file")
        if self.kind == "uniform":
            return [1.0] * count
        order = list(range(count))
        rng.shuffle(order)
        weights = [0.0] * count
        if self.kind == "zipf":
            for rank, idx in enumerate(order, start=1):
                weights[idx] = rank ** (-self.s)
            return weights
        if self.kind == "locality":
            hot = max(1, int(round(self.hot_fraction * count)))
            if hot >= count:
                return [1.0] * count
            for pos, idx in enumerate(order):
                if pos < hot:
                    weights[idx] = self.hot_share / hot
                else:
                    weights[idx] = (1.0 - self.hot_share) / (count - hot)
            return weights
        raise ConfigurationError(
            f"unknown workload {self.kind!r} (expected uniform/zipf/locality)"
        )


@dataclass
class LoadReport:
    """What a load-generator run measured."""

    requests: int = 0
    completed: int = 0
    faults: int = 0
    errors: int = 0
    timeouts: int = 0
    duration: float = 0.0
    latencies: list[float] = field(default_factory=list)
    served_by_node: dict[int, int] = field(default_factory=dict)

    _quantile_cache: tuple[int, float, float] | None = None

    @property
    def achieved_rps(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    def _quantiles(self) -> tuple[float, float]:
        """(p50, p99), computed from ONE sort and cached per stage.

        The naive per-property path re-sorted the full latency list on
        every access; ``statistics.quantiles`` with the *inclusive*
        method matches :func:`percentile`'s linear interpolation, so
        one pass yields both cut points.  The cache keys on the sample
        count: appending latencies invalidates it.
        """
        lat = self.latencies
        cached = self._quantile_cache
        if cached is not None and cached[0] == len(lat):
            return cached[1], cached[2]
        if not lat:
            p50 = p99 = 0.0
        elif len(lat) == 1:
            p50 = p99 = lat[0]
        else:
            cuts = statistics.quantiles(lat, n=100, method="inclusive")
            p50, p99 = cuts[49], cuts[98]
        self._quantile_cache = (len(lat), p50, p99)
        return p50, p99

    @property
    def p50(self) -> float:
        return self._quantiles()[0]

    @property
    def p99(self) -> float:
        return self._quantiles()[1]

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "faults": self.faults,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "duration_s": round(self.duration, 6),
            "achieved_rps": round(self.achieved_rps, 3),
            "latency_p50_s": round(self.p50, 6),
            "latency_p99_s": round(self.p99, 6),
            "served_by_node": {str(k): v for k, v in self.served_by_node.items()},
        }


class LoadGenerator:
    """Drive a live cluster with a seeded GET workload."""

    def __init__(
        self,
        cluster,
        files: list[str],
        shape: WorkloadShape | None = None,
        seed: int = 0,
        timeout: float = 5.0,
    ) -> None:
        if not files:
            raise ConfigurationError("the load generator needs inserted files")
        self.cluster = cluster
        self.files = list(files)
        self.shape = shape if shape is not None else WorkloadShape()
        self.rng = random.Random(seed)
        self.timeout = timeout
        self.weights = self.shape.weights(len(self.files), self.rng)
        self._clients: dict[int, RuntimeClient] = {}
        self._connect_lock = asyncio.Lock()
        self._entries: tuple[int, list[int]] | None = None

    async def _client(self, pid: int) -> RuntimeClient:
        client = self._clients.get(pid)
        if client is not None:
            return client
        # Serialize creation: concurrent requests to the same entry node
        # must not each open (and then leak) a connection.
        async with self._connect_lock:
            client = self._clients.get(pid)
            if client is None:
                client = await RuntimeClient(self.cluster, pid).connect()
                self._clients[pid] = client
            return client

    def _pick(self) -> tuple[str, int]:
        name = self.rng.choices(self.files, weights=self.weights, k=1)[0]
        # The sorted entry list only changes with membership: cache it
        # keyed on the status word's epoch instead of re-sorting per
        # request.
        epoch = self.cluster.word.epoch
        cached = self._entries
        if cached is None or cached[0] != epoch:
            cached = (epoch, sorted(self.cluster.nodes))
            self._entries = cached
        entry = self.rng.choice(cached[1])
        return name, entry

    async def _fire(self, report: LoadReport) -> None:
        name, entry = self._pick()
        client = await self._client(entry)
        report.requests += 1
        outcome = await client.get(name, timeout=self.timeout)
        if outcome.ok:
            report.completed += 1
            report.latencies.append(outcome.latency)
        elif outcome.kind == "fault":
            report.faults += 1
        elif outcome.kind == "timeout":
            report.timeouts += 1
        else:
            report.errors += 1

    async def run_open_loop(self, rps: float, duration: float) -> LoadReport:
        """Fire at ``rps`` for ``duration`` seconds, ignoring completions."""
        if rps <= 0 or duration <= 0:
            raise ConfigurationError("rps and duration must be positive")
        loop = asyncio.get_running_loop()
        report = LoadReport()
        start = loop.time()
        interval = 1.0 / rps
        tasks: list[asyncio.Task] = []
        next_fire = start
        while True:
            now = loop.time()
            if now - start >= duration:
                break
            if now < next_fire:
                await asyncio.sleep(next_fire - now)
            next_fire += interval
            tasks.append(loop.create_task(self._fire(report)))
        if tasks:
            await asyncio.gather(*tasks)
        report.duration = loop.time() - start
        report.served_by_node = self.cluster.served_counts()
        return report

    async def run_closed_loop(self, concurrency: int, requests: int) -> LoadReport:
        """Keep ``concurrency`` requests outstanding until ``requests`` done."""
        if concurrency < 1 or requests < 1:
            raise ConfigurationError("concurrency and requests must be positive")
        loop = asyncio.get_running_loop()
        report = LoadReport()
        start = loop.time()
        remaining = requests

        async def worker() -> None:
            nonlocal remaining
            while remaining > 0:
                remaining -= 1
                await self._fire(report)

        await asyncio.gather(*(worker() for _ in range(min(concurrency, requests))))
        report.duration = loop.time() - start
        report.served_by_node = self.cluster.served_counts()
        return report

    async def close(self) -> None:
        for client in self._clients.values():
            await client.close()
        self._clients.clear()
