"""Async client and load generator for the live runtime.

:class:`RuntimeClient` speaks the wire protocol to one entry node:
requests go out as frames, a reader task resolves per-``request_id``
futures as replies land, and every call carries an asyncio deadline
(the live dual of the DES request-reliability layer's per-attempt
timeout — here a timed-out request simply reports ``timed_out``).

:class:`LoadGenerator` drives a whole cluster with a seeded workload:

* file popularity is ``uniform``, ``zipf`` (rank ** -s), or
  ``locality`` (a hot fraction absorbing a fixed share) — the same
  three shapes as ``repro.workloads``;
* entry nodes are drawn uniformly over the live set, one persistent
  client per node;
* **open-loop** mode fires at a target RPS on a fixed tick regardless
  of completions (the paper's requests-per-second axis); **closed-loop**
  mode keeps a fixed number of outstanding requests.

Every completed request records its latency; the report carries p50 /
p99 latency, achieved RPS, outcome counts, and the per-node served
counts read back from the cluster.
"""

from __future__ import annotations

import asyncio
import random
import statistics
from bisect import bisect_left
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Any

from ..core.errors import ConfigurationError
from ..net.message import Message, MessageKind, fast_message
from .node import CLIENT
from .wire import FrameEncoder, FrameError, FrameReader

_WRITE_HIGH_WATER = 1 << 16
"""Transport buffer level above which a request write awaits drain —
below it requests pipeline without a per-frame round trip."""

_TIMEOUT_SWEEP = 0.25
"""Deadline-sweep period: one repeating timer per client expires every
overdue request, instead of a timer handle per request.  A timeout may
fire up to one sweep period late — noise against the multi-second
request timeouts, and thousands of heap pushes per second cheaper."""

__all__ = [
    "ClientError",
    "RequestOutcome",
    "RuntimeClient",
    "WorkloadShape",
    "LatencyHistogram",
    "LoadReport",
    "LoadGenerator",
    "percentile",
]


class ClientError(Exception):
    """The cluster answered with an ERROR frame."""


@dataclass(frozen=True)
class RequestOutcome:
    """Terminal state of one client request."""

    ok: bool
    kind: str  # reply | fault | error | timeout | overload
    payload: Any = None
    version: int = 0
    server: int = -1
    latency: float = 0.0


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation; 0.0 if empty."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class RuntimeClient:
    """One wire connection into the overlay via a fixed entry node."""

    def __init__(self, cluster, pid: int) -> None:
        self.cluster = cluster
        self.pid = pid
        self.wire_version = cluster.wire_version_of(pid)
        self._encoder = FrameEncoder(fixed=cluster.config.fixed_frames)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._futures: dict[int, asyncio.Future] = {}
        self._deadlines: dict[int, float] = {}
        self._sweep_timer: asyncio.TimerHandle | None = None
        self._task: asyncio.Task | None = None
        self._tick_coalesce = cluster.config.tick_coalesce
        self._flush_scheduled = False
        self._closed = False
        self._conn_lost = False

    async def connect(self) -> "RuntimeClient":
        self._reader, self._writer = await self.cluster.open_connection(self.pid)
        self._task = asyncio.get_running_loop().create_task(
            self._read_loop(), name=f"client:{self.pid}"
        )
        return self

    async def _read_loop(self) -> None:
        assert self._reader is not None
        frames = FrameReader(
            self._reader, self.cluster.config.max_frame, self.wire_version
        )
        try:
            while not self._closed:
                msgs, _errors = await frames.read_batch()
                for msg, _version in msgs:
                    self._deadlines.pop(msg.request_id, None)
                    future = self._futures.pop(msg.request_id, None)
                    if future is not None and not future.done():
                        future.set_result(msg)
        except (EOFError, FrameError, ConnectionError, OSError):
            self._conn_lost = True
            self._fail_pending()

    @property
    def connection_lost(self) -> bool:
        """The server end dropped this connection (the entry died).

        A lost client is a husk: its writes land in a dead transport,
        so callers holding one — a load generator whose entry died and
        later *rejoined* — must redial instead of reusing it.  Reusing
        it is worse than a lost request: the send is counted against
        the (live again) entry but the frame never arrives, so the
        cluster's in-flight ledger sticks above zero and ``drain()``
        blocks until its timeout.
        """
        return self._conn_lost

    def _fail_pending(self) -> None:
        """The connection dropped: resolve every in-flight request *now*.

        The failed send is the liveness protocol (FINDLIVENODE): a
        closed connection reveals the peer's death immediately, so
        pending requests must not sit out their full timeout before
        the caller learns.  Each future resolves with ``None`` — the
        same terminal a timeout produces — and the caller's dead-entry
        check classifies it (churn loss when the entry has left the
        membership, timeout otherwise).
        """
        if self._closed:
            return
        self._deadlines.clear()
        futures, self._futures = self._futures, {}
        for future in futures.values():
            if not future.done():
                future.set_result(None)

    def _flush_soon(self) -> None:
        """Tick-coalesced flush of every request buffered this iteration."""
        self._flush_scheduled = False
        if self._closed or self._writer is None or not self._encoder.pending:
            return
        try:
            self._encoder.flush_to(self._writer)
        except (ConnectionError, OSError):  # pragma: no cover - server died
            self._encoder.reset()

    def _sweep_deadlines(self) -> None:
        """Resolve every overdue request as a timeout; reschedule."""
        self._sweep_timer = None
        if self._closed:
            return
        loop = asyncio.get_running_loop()
        now = loop.time()
        overdue = [
            rid for rid, deadline in self._deadlines.items() if deadline <= now
        ]
        for rid in overdue:
            del self._deadlines[rid]
            future = self._futures.pop(rid, None)
            if future is not None and not future.done():
                future.set_result(None)
        if self._deadlines:
            self._sweep_timer = loop.call_later(
                _TIMEOUT_SWEEP, self._sweep_deadlines
            )

    def request_future(self, msg: Message, timeout: float) -> asyncio.Future:
        """Register and transmit one request without a coroutine.

        The synchronous fast path: encodes into the client's reusable
        frame buffer (tick-coalesced with every other request of this
        event-loop iteration), arms the shared deadline sweep, and
        returns the reply future — resolved with the reply
        :class:`Message`, or ``None`` on timeout.  No write
        backpressure is applied here; callers that may queue faster
        than the transport drains should check the write buffer first.
        """
        if self._writer is None:
            raise ConfigurationError("client is not connected")
        if self._conn_lost:
            raise ConnectionError(f"connection to P({self.pid}) was lost")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._futures[msg.request_id] = future
        self.cluster.count_client_send(self.pid)
        self._encoder.add(msg, self.wire_version)
        if self._tick_coalesce:
            # Requests issued in the same event-loop iteration (e.g. a
            # burst of load-generator fires waking from one sleep) ride
            # a single vectored write, scheduled once per tick.
            if not self._flush_scheduled:
                self._flush_scheduled = True
                loop.call_soon(self._flush_soon)
        else:
            self._encoder.flush_to(self._writer)
        # Per-request deadlines go through the shared sweep timer: one
        # heap entry per client per sweep period instead of a
        # call_later handle (and its heap churn) per request.
        self._deadlines[msg.request_id] = loop.time() + timeout
        if self._sweep_timer is None:
            self._sweep_timer = loop.call_later(
                _TIMEOUT_SWEEP, self._sweep_deadlines
            )
        return future

    async def _request(self, msg: Message, timeout: float) -> RequestOutcome:
        loop = asyncio.get_running_loop()
        start = loop.time()
        future = self.request_future(msg, timeout)
        assert self._writer is not None
        transport = self._writer.transport
        if (
            transport is not None
            and transport.get_write_buffer_size() > _WRITE_HIGH_WATER
        ):
            await self._writer.drain()
        try:
            reply = await future
        finally:
            self._deadlines.pop(msg.request_id, None)
        latency = loop.time() - start
        if reply is None:
            return RequestOutcome(ok=False, kind="timeout", latency=latency)
        if reply.kind is MessageKind.GET_FAULT:
            return RequestOutcome(ok=False, kind="fault", latency=latency)
        if reply.kind is MessageKind.ERROR:
            payload = reply.payload if isinstance(reply.payload, dict) else {}
            return RequestOutcome(
                ok=False, kind="error", payload=payload.get("reason"),
                latency=latency,
            )
        if reply.kind is MessageKind.OVERLOAD:
            # Shed by admission control: the payload carries the
            # shedding node and a redirect hint for the retry layer.
            payload = reply.payload if isinstance(reply.payload, dict) else {}
            return RequestOutcome(
                ok=False, kind="overload", payload=payload,
                server=int(payload.get("shed_by", reply.src)),
                latency=latency,
            )
        payload = reply.payload if isinstance(reply.payload, dict) else {}
        return RequestOutcome(
            ok=True,
            kind="reply",
            payload=payload.get("payload", reply.payload),
            version=reply.version,
            server=int(payload.get("server", reply.src)),
            latency=latency,
        )

    async def get(self, name: str, timeout: float = 5.0) -> RequestOutcome:
        return await self._request(
            Message(kind=MessageKind.GET, src=CLIENT, dst=self.pid, file=name),
            timeout,
        )

    async def insert(
        self, name: str, payload: Any = None, timeout: float = 5.0
    ) -> RequestOutcome:
        outcome = await self._request(
            Message(
                kind=MessageKind.INSERT, src=CLIENT, dst=self.pid,
                file=name, payload=payload,
            ),
            timeout,
        )
        if outcome.kind == "error":
            raise ClientError(str(outcome.payload))
        return outcome

    async def update(
        self, name: str, payload: Any = None, timeout: float = 5.0
    ) -> RequestOutcome:
        outcome = await self._request(
            Message(
                kind=MessageKind.UPDATE, src=CLIENT, dst=self.pid,
                file=name, payload=payload,
            ),
            timeout,
        )
        if outcome.kind == "error":
            raise ClientError(str(outcome.payload))
        return outcome

    async def close(self) -> None:
        if self._writer is not None and self._encoder.pending:
            try:
                self._encoder.flush_to(self._writer)
            except (ConnectionError, OSError):
                self._encoder.reset()
        self._closed = True
        if self._sweep_timer is not None:
            self._sweep_timer.cancel()
            self._sweep_timer = None
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# -- workload shapes -----------------------------------------------------

@dataclass(frozen=True)
class WorkloadShape:
    """Seeded file-popularity shape for the load generator.

    ``uniform`` weighs every file equally; ``zipf`` weighs the rank-k
    file ``k ** -s`` under a seeded rank shuffle; ``locality`` gives a
    ``hot_fraction`` of the files a combined ``hot_share`` of the
    demand — the same three shapes as ``repro.workloads`` applied to
    files instead of entry nodes.
    """

    kind: str = "zipf"
    s: float = 1.0
    hot_fraction: float = 0.1
    hot_share: float = 0.9

    def weights(self, count: int, rng: random.Random) -> list[float]:
        if count < 1:
            raise ConfigurationError("a workload needs at least one file")
        if self.kind == "uniform":
            return [1.0] * count
        order = list(range(count))
        rng.shuffle(order)
        weights = [0.0] * count
        if self.kind == "zipf":
            for rank, idx in enumerate(order, start=1):
                weights[idx] = rank ** (-self.s)
            return weights
        if self.kind == "locality":
            hot = max(1, int(round(self.hot_fraction * count)))
            if hot >= count:
                return [1.0] * count
            for pos, idx in enumerate(order):
                if pos < hot:
                    weights[idx] = self.hot_share / hot
                else:
                    weights[idx] = (1.0 - self.hot_share) / (count - hot)
            return weights
        raise ConfigurationError(
            f"unknown workload {self.kind!r} (expected uniform/zipf/locality)"
        )


def _hist_bounds_ms() -> tuple[float, ...]:
    """HDR-style log-linear bucket upper bounds: 4 per octave.

    0.25 ms up to ~4 s in sub-bucket steps of a quarter octave — fine
    enough that a latency-shape regression moves visible mass, coarse
    enough that the whole histogram is ~60 integers.
    """
    bounds: list[float] = []
    base = 0.25
    while base < 4096.0:
        bounds.extend(base * (1.0 + i / 4.0) for i in (1, 2, 3, 4))
        base *= 2.0
    return tuple(bounds)


class LatencyHistogram:
    """Fixed-bucket latency histogram for latency-*shape* regression.

    Percentile gates (p99 <= SLO) are blind to shape: a distribution
    can go bimodal — most requests faster, a new slow mode under the
    p99 — without moving the gate.  Recording every completion into
    log-linear buckets keeps the full shape, cheap enough for the hot
    path (one bisect per sample) and small enough to persist into
    ``BENCH_runtime.json`` per ramp entry.
    """

    BOUNDS_MS: tuple[float, ...] = _hist_bounds_ms()

    __slots__ = ("counts", "total")

    def __init__(self) -> None:
        # One bucket per bound plus the overflow bucket (> 4 s).
        self.counts = [0] * (len(self.BOUNDS_MS) + 1)
        self.total = 0

    def record(self, latency_s: float) -> None:
        self.counts[bisect_left(self.BOUNDS_MS, latency_s * 1e3)] += 1
        self.total += 1

    def as_dict(self) -> dict[str, Any]:
        """Sparse JSON form: only the occupied buckets.

        The overflow bucket's bound is ``None`` (strict JSON has no
        ``Infinity``).
        """
        le_ms: list[float | None] = []
        counts: list[int] = []
        bounds = self.BOUNDS_MS
        for idx, count in enumerate(self.counts):
            if count:
                le_ms.append(bounds[idx] if idx < len(bounds) else None)
                counts.append(count)
        return {"total": self.total, "le_ms": le_ms, "counts": counts}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LatencyHistogram":
        hist = cls()
        bounds = cls.BOUNDS_MS
        for le, count in zip(data.get("le_ms", []), data.get("counts", [])):
            idx = len(bounds) if le is None else bisect_left(bounds, le)
            hist.counts[min(idx, len(bounds))] += int(count)
            hist.total += int(count)
        return hist

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram, in place.

        Buckets are fixed and integer-counted, so merging K shard
        histograms is *exact*: bucket-wise addition commutes with
        recording — the merged histogram is bit-identical to one fed
        the concatenated samples (the sharded-loadgen property test
        pins this down).
        """
        for idx, count in enumerate(other.counts):
            self.counts[idx] += count
        self.total += other.total
        return self

    def shape_distance(self, other: "LatencyHistogram") -> float:
        """Earth-mover distance between normalized shapes, in buckets.

        The L1 distance between the two cumulative distributions: how
        many bucket-widths of probability mass must move to turn one
        shape into the other.  A uniform one-octave slowdown (a slower
        CI machine) costs ~4.0; a new latency mode several octaves out
        costs far more — which is exactly the signal a p99 gate misses.
        Returns ``inf`` when either histogram is empty.
        """
        if not self.total or not other.total:
            return float("inf")
        distance = 0.0
        cum_self = 0.0
        cum_other = 0.0
        for mine, theirs in zip(self.counts, other.counts):
            cum_self += mine / self.total
            cum_other += theirs / other.total
            distance += abs(cum_self - cum_other)
        return distance


@dataclass
class LoadReport:
    """What a load-generator run measured."""

    requests: int = 0
    completed: int = 0
    faults: int = 0
    errors: int = 0
    timeouts: int = 0
    shed: int = 0
    """Requests whose *terminal* outcome was an OVERLOAD reply (no
    usable redirect, or the redirect budget ran out)."""
    churn_lost: int = 0
    """Requests lost to churn: the entry or redirect target died under
    the request (connection refused, or a timeout at a node that is no
    longer serving) and no live alternative remained — the fourth
    terminal next to completed/timeout/shed."""
    stale_sheds: int = 0
    """Terminal sheds caused *solely* by a dead redirect hint while
    redirect budget remained.  With the FINDLIVENODE-style client
    reroute enabled this is zero by construction — the stale-redirect
    invariant gates on it."""
    overloads: int = 0
    """Total OVERLOAD replies received (≥ ``shed``: a redirected
    request that later completes still counted its shed replies)."""
    redirected: int = 0
    """Retries fired at a redirect hint from an OVERLOAD reply."""
    rerouted: int = 0
    """Redirect retries whose hint named a dead node and were rerouted
    to a seeded live entry instead (FINDLIVENODE at the client)."""
    duration: float = 0.0
    latencies: list[float] = field(default_factory=list)
    served_by_node: dict[int, int] = field(default_factory=dict)
    hist: LatencyHistogram = field(default_factory=LatencyHistogram)

    _quantile_cache: tuple[int, float, float] | None = None

    @property
    def achieved_rps(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def conserved(self) -> bool:
        """Request-lifecycle conservation, live edition: every fired
        request lands in exactly one terminal bucket — under churn,
        including the churn-loss terminal."""
        return self.requests == (
            self.completed + self.faults + self.errors + self.timeouts
            + self.shed + self.churn_lost
        )

    def _quantiles(self) -> tuple[float, float]:
        """(p50, p99), computed from ONE sort and cached per stage.

        The naive per-property path re-sorted the full latency list on
        every access; ``statistics.quantiles`` with the *inclusive*
        method matches :func:`percentile`'s linear interpolation, so
        one pass yields both cut points.  The cache keys on the sample
        count: appending latencies invalidates it.
        """
        lat = self.latencies
        cached = self._quantile_cache
        if cached is not None and cached[0] == len(lat):
            return cached[1], cached[2]
        if not lat:
            p50 = p99 = 0.0
        elif len(lat) == 1:
            p50 = p99 = lat[0]
        else:
            cuts = statistics.quantiles(lat, n=100, method="inclusive")
            p50, p99 = cuts[49], cuts[98]
        self._quantile_cache = (len(lat), p50, p99)
        return p50, p99

    @property
    def p50(self) -> float:
        return self._quantiles()[0]

    @property
    def p99(self) -> float:
        return self._quantiles()[1]

    _COUNTERS = (
        "requests", "completed", "faults", "errors", "timeouts", "shed",
        "churn_lost", "stale_sheds", "overloads", "redirected", "rerouted",
    )

    def merge(self, other: "LoadReport") -> "LoadReport":
        """Fold another shard's report into this one, in place.

        Every field is mergeable by construction: the terminal counters
        add, the raw latency samples concatenate, the log-linear
        histogram adds bucket-wise, per-node serve totals add, and the
        duration is the max (shards run the same wall-clock window in
        parallel, not back to back).  Conservation is preserved exactly:
        each side's ledger balances, and addition keeps it balanced —
        so the union's identity and the p99-SLO criterion hold over K
        driver processes with no approximation.
        """
        for attr in self._COUNTERS:
            setattr(self, attr, getattr(self, attr) + getattr(other, attr))
        self.latencies.extend(other.latencies)
        self.hist.merge(other.hist)
        for pid, count in other.served_by_node.items():
            self.served_by_node[pid] = self.served_by_node.get(pid, 0) + count
        self.duration = max(self.duration, other.duration)
        self._quantile_cache = None
        return self

    def to_wire(self) -> dict[str, Any]:
        """Lossless JSON form for shipping a shard's report to the
        merging parent — unlike :meth:`as_dict` (the human-facing bench
        payload, which drops the raw samples), this round-trips the
        latency list exactly: ``json.dumps`` emits ``repr(float)``,
        which parses back to the identical double."""
        return {
            "counters": {a: getattr(self, a) for a in self._COUNTERS},
            "duration": self.duration,
            "latencies": self.latencies,
            "served_by_node": {str(k): v for k, v in self.served_by_node.items()},
            "hist": self.hist.as_dict(),
        }

    @classmethod
    def from_wire(cls, data: dict[str, Any]) -> "LoadReport":
        report = cls()
        for attr, value in data.get("counters", {}).items():
            if attr in cls._COUNTERS:
                setattr(report, attr, int(value))
        report.duration = float(data.get("duration", 0.0))
        report.latencies = [float(x) for x in data.get("latencies", [])]
        report.served_by_node = {
            int(k): int(v) for k, v in data.get("served_by_node", {}).items()
        }
        report.hist = LatencyHistogram.from_dict(data.get("hist", {}))
        return report

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "faults": self.faults,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "shed": self.shed,
            "churn_lost": self.churn_lost,
            "stale_sheds": self.stale_sheds,
            "overloads": self.overloads,
            "redirected": self.redirected,
            "rerouted": self.rerouted,
            "duration_s": round(self.duration, 6),
            "achieved_rps": round(self.achieved_rps, 3),
            "latency_p50_s": round(self.p50, 6),
            "latency_p99_s": round(self.p99, 6),
            "served_by_node": {str(k): v for k, v in self.served_by_node.items()},
            "latency_hist": self.hist.as_dict(),
        }


class LoadGenerator:
    """Drive a live cluster with a seeded GET workload."""

    def __init__(
        self,
        cluster,
        files: list[str],
        shape: WorkloadShape | None = None,
        seed: int = 0,
        timeout: float = 5.0,
        redirects: int = 3,
        churn_reroute: bool = True,
        entry_shard: tuple[int, int] | None = None,
        collect_served: bool = True,
    ) -> None:
        if not files:
            raise ConfigurationError("the load generator needs inserted files")
        if redirects < 0:
            raise ConfigurationError("redirects must be non-negative")
        if entry_shard is not None:
            shard, shards = entry_shard
            if shards < 1 or not (0 <= shard < shards):
                raise ConfigurationError(
                    "entry_shard must be (k, K) with 0 <= k < K"
                )
        self.cluster = cluster
        self.files = list(files)
        self.shape = shape if shape is not None else WorkloadShape()
        self.rng = random.Random(seed)
        self.timeout = timeout
        self.max_redirects = redirects
        self.churn_reroute = churn_reroute
        """Reroute a redirect whose hint died to a live entry instead of
        terminally shedding (FINDLIVENODE at the client).  ``False`` is
        the stale-hint bug-injection profile: a dead hint becomes a
        terminal shed, counted in ``LoadReport.stale_sheds``."""
        self._reroute_rng = random.Random(seed ^ 0x517A1E)
        self._retry_tasks: set[asyncio.Task] = set()
        self.weights = self.shape.weights(len(self.files), self.rng)
        # rng.choices recomputes the running sum on every call when
        # given raw weights; precomputing cum_weights consumes the
        # exact same rng stream while skipping that O(n) pass per pick.
        self._cum_weights = list(accumulate(self.weights))
        self._clients: dict[int, RuntimeClient] = {}
        self._connect_lock = asyncio.Lock()
        self._entries: tuple[int, list[int]] | None = None
        self.entry_shard = entry_shard
        """Disjoint entry-node partition for sharded load generation:
        shard ``k`` of ``K`` picks entries with ``pid % K == k``, so K
        driver processes never share a client connection or an entry
        node's accept queue.  Redirect chases stay unpartitioned — they
        go wherever the holder is.  ``None`` means all entries."""
        self.collect_served = collect_served
        """``False`` skips the per-run served-counts poll.  A sharded
        driver sets this: against a scale-out fleet that poll is a
        full snapshot collection, and K shards each polling would both
        multiply the cost and *double-count* — serve totals are
        cluster-cumulative, so the merging parent attaches them once
        instead."""

    async def _client(self, pid: int) -> RuntimeClient:
        client = self._clients.get(pid)
        if client is not None and not client.connection_lost:
            return client
        # Serialize creation: concurrent requests to the same entry node
        # must not each open (and then leak) a connection.  A cached
        # client whose connection dropped (the entry died — perhaps to
        # rejoin later) is a husk: close it out and redial, like a real
        # client reconnecting to a restarted peer.
        async with self._connect_lock:
            client = self._clients.get(pid)
            if client is None or client.connection_lost:
                if client is not None:
                    await client.close()
                client = await RuntimeClient(self.cluster, pid).connect()
                self._clients[pid] = client
            return client

    def _pick(self) -> tuple[str, int]:
        name = self.rng.choices(self.files, cum_weights=self._cum_weights, k=1)[0]
        # The sorted entry list only changes with membership: cache it
        # keyed on the status word's epoch instead of re-sorting per
        # request.
        epoch = self.cluster.word.epoch
        cached = self._entries
        if cached is None or cached[0] != epoch:
            entries = sorted(self.cluster.nodes)
            if self.entry_shard is not None:
                shard, shards = self.entry_shard
                mine = [p for p in entries if p % shards == shard]
                # Churn can empty a shard's partition; falling back to
                # the full membership keeps the driver live (and the
                # conservation ledger whole) at the cost of briefly
                # sharing entries.
                entries = mine or entries
            cached = (epoch, entries)
            self._entries = cached
        entry = self.rng.choice(cached[1])
        return name, entry

    async def _fire(self, report: LoadReport) -> None:
        name, entry = self._pick()
        await self._fire_path(entry, name, report)

    async def _fire_path(self, entry: int, name: str, report: LoadReport) -> None:
        """Awaited fire: resolves the client first (connect, backlog)."""
        loop = asyncio.get_running_loop()
        report.requests += 1
        start = loop.time()
        try:
            client = await self._client(entry)
            outcome = await client.get(name, timeout=self.timeout)
        except (ConnectionError, OSError):
            # The entry died between the pick and the connect/write —
            # under mid-burst churn that is a churn loss, not a crash
            # of the whole generator.
            report.churn_lost += 1
            return
        if outcome.kind == "overload":
            await self._follow_redirects(outcome, name, report, start, loop)
        elif outcome.kind == "timeout" and entry not in self.cluster.nodes:
            report.churn_lost += 1  # the entry died holding our request
        else:
            self._classify(outcome, report, loop.time() - start)

    def _redirect_target(self, outcome: RequestOutcome) -> int | None:
        """The redirect hint of an OVERLOAD outcome, if it names a live
        node (``-1`` means the shedder knew no alternative holder)."""
        payload = outcome.payload if isinstance(outcome.payload, dict) else {}
        target = payload.get("redirect", -1)
        if isinstance(target, int) and target in self.cluster.nodes:
            return target
        return None

    def _reroute_target(self, exclude: set[int]) -> int | None:
        """A seeded live entry for a reroute, avoiding ``exclude``."""
        choices = [p for p in sorted(self.cluster.nodes) if p not in exclude]
        if not choices:
            return None
        return choices[self._reroute_rng.randrange(len(choices))]

    async def _follow_redirects(
        self,
        outcome: RequestOutcome,
        name: str,
        report: LoadReport,
        start: float,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        """Chase OVERLOAD redirect hints until served or out of budget.

        The live dual of the DES ``RequestTracker``'s
        reroute-on-overload: each shed reply names an alternative
        holder; the retry goes straight at it.  A completion's recorded
        latency spans the *whole* chain — redirect hops are not free.

        Under churn a hint can name a node that died between the shed
        and this retry.  That is not a wasted attempt: the retry is
        rerouted to a seeded live entry (FINDLIVENODE at the client),
        still consuming redirect budget.  Only when *no* live node
        remains does the request land in the churn-loss terminal.
        """
        redirects = 0
        target: int | None = None
        while outcome.kind == "overload":
            report.overloads += 1
            if redirects >= self.max_redirects:
                break  # budget exhausted: terminal shed, as ever
            payload = outcome.payload if isinstance(outcome.payload, dict) else {}
            hint = payload.get("redirect", -1)
            target = self._redirect_target(outcome)
            if target is None:
                if not (isinstance(hint, int) and hint >= 0):
                    break  # the shedder knew no alternative: terminal shed
                # The hint named a node that has since died.
                if not self.churn_reroute:
                    report.shed += 1
                    report.stale_sheds += 1
                    return
                target = self._reroute_target({hint, outcome.server})
                if target is None:
                    report.churn_lost += 1
                    return
                report.rerouted += 1
            redirects += 1
            report.redirected += 1
            try:
                client = await self._client(target)
                outcome = await client.get(name, timeout=self.timeout)
            except (ConnectionError, OSError):
                report.churn_lost += 1
                return
        if (
            outcome.kind == "timeout"
            and target is not None
            and target not in self.cluster.nodes
        ):
            report.churn_lost += 1  # the redirect target died holding it
            return
        self._classify(outcome, report, loop.time() - start)

    @staticmethod
    def _classify(
        outcome: RequestOutcome, report: LoadReport, latency: float
    ) -> None:
        """Record one request's terminal outcome (exactly one bucket)."""
        if outcome.ok:
            report.completed += 1
            report.latencies.append(latency)
            report.hist.record(latency)
        elif outcome.kind == "fault":
            report.faults += 1
        elif outcome.kind == "timeout":
            report.timeouts += 1
        elif outcome.kind == "overload":
            report.shed += 1
        else:
            report.errors += 1

    def _fire_nowait(
        self, report: LoadReport, loop: asyncio.AbstractEventLoop
    ) -> "asyncio.Future | asyncio.Task":
        """Fire one GET without a per-request task when possible.

        With the entry node's client already connected and its
        transport unbacklogged, the request goes out through
        :meth:`RuntimeClient.request_future` and the report is updated
        from a done callback — no task, no coroutine frames.  First
        contact with an entry node (or a backlogged writer, which
        needs an awaited ``drain``) falls back to the task path.
        """
        name, entry = self._pick()
        client = self._clients.get(entry)
        # A lost connection (the entry died, perhaps to rejoin) falls
        # back to the task path, which redials through _client().
        if (
            client is not None
            and not client.connection_lost
            and client._writer is not None
        ):
            transport = client._writer.transport
            if (
                transport is not None
                and transport.get_write_buffer_size() <= _WRITE_HIGH_WATER
            ):
                report.requests += 1
                start = loop.time()
                future = client.request_future(
                    fast_message(MessageKind.GET, CLIENT, client.pid, name),
                    self.timeout,
                )
                future.add_done_callback(
                    lambda fut, s=start, e=entry: self._record(
                        report, fut, loop, s, e
                    )
                )
                return future
        return loop.create_task(self._fire_path(entry, name, report))

    def _record(
        self,
        report: LoadReport,
        future: asyncio.Future,
        loop: asyncio.AbstractEventLoop,
        start: float,
        entry: int,
    ) -> None:
        """Done callback of a no-task fire: classify the raw reply."""
        if future.cancelled():
            return
        reply = future.result()
        if reply is None:
            if entry not in self.cluster.nodes:
                report.churn_lost += 1  # the entry died holding our request
            else:
                report.timeouts += 1
        elif reply.kind is MessageKind.GET_REPLY:
            latency = loop.time() - start
            report.completed += 1
            report.latencies.append(latency)
            report.hist.record(latency)
        elif reply.kind is MessageKind.GET_FAULT:
            report.faults += 1
        elif reply.kind is MessageKind.OVERLOAD:
            payload = reply.payload if isinstance(reply.payload, dict) else {}
            outcome = RequestOutcome(
                ok=False,
                kind="overload",
                payload=payload,
                server=int(payload.get("shed_by", reply.src)),
                latency=loop.time() - start,
            )
            task = loop.create_task(
                self._follow_redirects(outcome, reply.file, report, start, loop)
            )
            self._retry_tasks.add(task)
            task.add_done_callback(self._retry_tasks.discard)
        else:
            report.errors += 1

    async def run_open_loop(self, rps: float, duration: float) -> LoadReport:
        """Fire at ``rps`` for ``duration`` seconds, ignoring completions."""
        if rps <= 0 or duration <= 0:
            raise ConfigurationError("rps and duration must be positive")
        loop = asyncio.get_running_loop()
        report = LoadReport()
        start = loop.time()
        interval = 1.0 / rps
        tasks: list[asyncio.Future] = []
        next_fire = start
        while True:
            now = loop.time()
            if now - start >= duration:
                break
            if now < next_fire:
                await asyncio.sleep(next_fire - now)
            next_fire += interval
            tasks.append(self._fire_nowait(report, loop))
        if tasks:
            await asyncio.gather(*tasks)
        while self._retry_tasks:
            await asyncio.gather(*list(self._retry_tasks))
        report.duration = loop.time() - start
        report.served_by_node = await self._served_counts()
        return report

    async def run_closed_loop(self, concurrency: int, requests: int) -> LoadReport:
        """Keep ``concurrency`` requests outstanding until ``requests`` done."""
        if concurrency < 1 or requests < 1:
            raise ConfigurationError("concurrency and requests must be positive")
        loop = asyncio.get_running_loop()
        report = LoadReport()
        start = loop.time()
        remaining = requests

        async def worker() -> None:
            nonlocal remaining
            while remaining > 0:
                remaining -= 1
                await self._fire(report)

        await asyncio.gather(*(worker() for _ in range(min(concurrency, requests))))
        report.duration = loop.time() - start
        report.served_by_node = await self._served_counts()
        return report

    async def _served_counts(self) -> dict[int, int]:
        """Per-node serve totals, from either flavor of cluster.

        `LiveCluster.served_counts` reads node objects synchronously;
        the scale-out endpoint has to ask every worker over the wire,
        so its implementation is a coroutine.  Tolerate both.
        """
        if not self.collect_served:
            return {}
        counts = self.cluster.served_counts()
        if asyncio.iscoroutine(counts):
            counts = await counts
        return counts

    async def close(self) -> None:
        for client in self._clients.values():
            await client.close()
        self._clients.clear()
