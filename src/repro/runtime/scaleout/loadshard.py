"""Sharded load generation: K driver processes for one fleet.

A single `LoadGenerator` is one CPython interpreter — one event loop,
one GIL — and at fleet scale *it* becomes the serialization point: the
cluster is 128 processes wide but the offered load is generated one
coroutine step at a time.  :class:`ShardedLoadDriver` removes that cap
the same way the fleet itself scaled: fork K real OS processes, each
with its own asyncio loop, its own :class:`ScaleoutEndpoint`, and a
**disjoint entry-node partition** (shard ``k`` of ``K`` enters through
pids with ``pid % K == k``), so shards never share a client connection
or an entry node's accept queue.

Measurement stays exact because every ledger a shard produces is
mergeable by construction (`LoadReport.merge`): terminal counters add,
the HDR-style log-linear histogram adds bucket-wise, raw latency
samples concatenate (shipped as JSON floats, which round-trip doubles
exactly), and the wall-clock window is shared, so the union's
conservation identity and p99-SLO sustained criterion are the same
predicates a single driver would have computed over the concatenated
samples — the tier-1 property test pins the merge down bit-for-bit.

Process discipline mirrors the supervisor's: :meth:`launch` forks
**before any event loop exists** in the parent; each child closes the
fds it inherited but does not own (the bootstrap listen socket, the
other shards' pipes), parks on a go-pipe read, and only then starts
its own loop.  The parent inserts the file set and drains through its
own endpoint, releases the gate (:meth:`start`), and collects one
JSON report per result pipe (:meth:`collect`) — reading all
pipes concurrently, so a shard's report can exceed the pipe buffer
without deadlock.  Each shard's endpoint ships its per-destination
send counts on close, so the bootstrap's quiescence ledger balances
over the union of shards exactly as it did for one client.
"""

from __future__ import annotations

import asyncio
import gc
import json
import os
import signal
from dataclasses import dataclass
from typing import Any, Sequence

from ...core.errors import ConfigurationError
from ..client import LoadGenerator, LoadReport, WorkloadShape
from .endpoint import ScaleoutEndpoint
from .supervisor import _die_with_parent

__all__ = ["ShardedLoadDriver"]


@dataclass
class _Shard:
    """Parent-side handle for one forked driver process."""

    index: int
    ospid: int
    go_w: int
    """Write end of the go pipe: one byte releases the shard."""
    res_r: int
    """Read end of the result pipe: the shard's report, as JSON."""


class ShardedLoadDriver:
    """K forked load-generator processes over one scale-out fleet."""

    def __init__(
        self,
        host: str,
        port: int,
        files: Sequence[str],
        shards: int,
        rps: float,
        duration: float,
        warmup: float = 0.0,
        shape: WorkloadShape | None = None,
        seed: int = 0,
        timeout: float = 5.0,
        redirects: int = 3,
        inherited_sockets: Sequence[Any] = (),
    ) -> None:
        if shards < 1:
            raise ConfigurationError("shards must be positive")
        if rps <= 0 or duration <= 0:
            raise ConfigurationError("rps and duration must be positive")
        if not files:
            raise ConfigurationError("the sharded driver needs inserted files")
        self.host = host
        self.port = port
        self.files = list(files)
        self.shards = shards
        self.rps = rps
        self.duration = duration
        self.warmup = warmup
        self.shape = shape if shape is not None else WorkloadShape()
        self.seed = seed
        self.timeout = timeout
        self.redirects = redirects
        self.inherited_sockets = list(inherited_sockets)
        """Sockets the parent holds that shard children must close
        (the supervisor's bootstrap listen socket, chiefly)."""
        self._handles: list[_Shard] = []
        self.shard_reports: list[LoadReport] = []
        """Per-shard reports from the last :meth:`collect`, in shard
        order — the per-shard achieved-rps column of ``run_meta``."""

    # -- lifecycle -----------------------------------------------------------

    def launch(self) -> None:
        """Fork the K shard processes.  Call *before* any asyncio loop
        exists in the parent — same discipline as the fleet supervisor,
        for the same reason (a forked epoll set is shared corruption).
        Children park on their go pipe; nothing dials until
        :meth:`start`."""
        if self._handles:
            raise ConfigurationError("the shard drivers are already launched")
        for k in range(self.shards):
            go_r, go_w = os.pipe()
            res_r, res_w = os.pipe()
            child = os.fork()
            if child:
                os.close(go_r)
                os.close(res_w)
                self._handles.append(
                    _Shard(index=k, ospid=child, go_w=go_w, res_r=res_r)
                )
                continue
            # Shard child: drop everything inherited but not ours.
            status = 1
            try:
                _die_with_parent()
                os.close(go_w)
                os.close(res_r)
                for sock in self.inherited_sockets:
                    sock.close()
                for prev in self._handles:
                    os.close(prev.go_w)
                    os.close(prev.res_r)
                self._handles = []
                status = self._shard_child(k, go_r, res_w)
            except BaseException:  # pragma: no cover - crash visibly
                import traceback

                traceback.print_exc()
            finally:
                os._exit(status)

    def start(self) -> None:
        """Release the gate: every shard starts its loop and dials."""
        for shard in self._handles:
            os.write(shard.go_w, b"g")
            os.close(shard.go_w)
            shard.go_w = -1

    async def collect(self) -> LoadReport:
        """Await every shard's report and merge them, in shard order.

        Result pipes are read concurrently (a big report can exceed
        the pipe buffer, so the reader must not serialize behind a
        writer), then each child is reaped.  A shard that died without
        shipping a report fails the whole run — a lost shard would
        silently shrink the offered load and fake a sustained verdict.
        """
        loop = asyncio.get_running_loop()
        raws = await asyncio.gather(
            *(loop.run_in_executor(None, self._read_all, shard.res_r)
              for shard in self._handles)
        )
        statuses = await asyncio.gather(
            *(loop.run_in_executor(None, self._reap, shard.ospid)
              for shard in self._handles)
        )
        reports: list[LoadReport] = []
        for shard, raw, status in zip(self._handles, raws, statuses):
            if not raw:
                raise RuntimeError(
                    f"load shard {shard.index} died without a report "
                    f"(exit status {status})"
                )
            reports.append(LoadReport.from_wire(json.loads(raw)))
        self._handles = []
        self.shard_reports = reports
        merged = LoadReport()
        for report in reports:
            merged.merge(report)
        return merged

    def kill(self) -> None:
        """Abort path: SIGKILL any shard still running, close fds."""
        for shard in self._handles:
            try:
                os.kill(shard.ospid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            self._reap(shard.ospid)
            for fd in (shard.go_w, shard.res_r):
                if fd >= 0:
                    try:
                        os.close(fd)
                    except OSError:
                        pass
        self._handles = []

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _read_all(fd: int) -> bytes:
        chunks: list[bytes] = []
        while True:
            chunk = os.read(fd, 1 << 16)
            if not chunk:
                break
            chunks.append(chunk)
        os.close(fd)
        return b"".join(chunks)

    @staticmethod
    def _reap(ospid: int) -> int:
        try:
            _pid, status = os.waitpid(ospid, 0)
        except ChildProcessError:  # pragma: no cover - reaped elsewhere
            return 0
        return status

    def _shard_child(self, k: int, go_r: int, res_w: int) -> int:
        """Everything a shard process does: park, drive, report."""
        # Park *before* any event loop exists: the fd read blocks this
        # whole process at zero cost while the parent inserts the file
        # set and drains the fleet.
        released = os.read(go_r, 1)
        os.close(go_r)
        if not released:  # parent died or aborted: no run to do
            return 1
        report = asyncio.run(self._shard_main(k))
        payload = json.dumps(report.to_wire()).encode()
        written = 0
        while written < len(payload):
            written += os.write(res_w, payload[written:])
        os.close(res_w)
        return 0

    async def _shard_main(self, k: int) -> LoadReport:
        endpoint = await ScaleoutEndpoint.connect(self.host, self.port)
        try:
            gen = LoadGenerator(
                endpoint,
                self.files,
                shape=self.shape,
                seed=self.seed + 7919 * (k + 1),
                timeout=self.timeout,
                redirects=self.redirects,
                entry_shard=(k, self.shards),
                collect_served=False,
            )
            share = self.rps / self.shards
            if self.warmup > 0:
                await gen.run_open_loop(rps=share, duration=self.warmup)
            gc.collect()
            gc.disable()
            try:
                report = await gen.run_open_loop(
                    rps=share, duration=self.duration
                )
            finally:
                gc.enable()
            await gen.close()
            return report
        finally:
            # close() ships this shard's per-destination send counts —
            # its column of the bootstrap's quiescence ledger.
            await endpoint.close()
