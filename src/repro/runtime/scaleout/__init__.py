"""Multi-process scale-out runtime: one OS process per LessLog node.

The pieces, smallest to largest:

* :mod:`.control` — the CONTROL-frame RPC/cast channel everything
  coordinates over (same wire framing as the data plane);
* :mod:`.worker` — `WorkerRuntime` (the per-process coordination
  facade `NodeServer` runs against, unchanged) and the process
  entrypoint;
* :mod:`.bootstrap` — identifier assignment, the address book, and
  the mirror-oracle coordination plane that ships the oplog at
  decision time;
* :mod:`.endpoint` — the client facade `RuntimeClient`/`LoadGenerator`
  drive unchanged;
* :mod:`.loadshard` — `ShardedLoadDriver`, K forked load-generator
  processes with disjoint entry partitions and exactly-merging
  ledgers;
* :mod:`.supervisor` — forks/boots the fleet, injects ``kill -9``,
  and tears it down.
"""

from .bootstrap import BootstrapServer, ScaleoutStats
from .control import (
    ControlLink,
    config_from_wire,
    config_to_wire,
    decode_batch,
    encode_batch,
)
from .endpoint import ScaleoutEndpoint
from .loadshard import ShardedLoadDriver
from .supervisor import ScaleoutSupervisor
from .worker import WorkerProcess, WorkerRuntime, run_worker

__all__ = [
    "BootstrapServer",
    "ScaleoutStats",
    "ControlLink",
    "config_from_wire",
    "config_to_wire",
    "encode_batch",
    "decode_batch",
    "ScaleoutEndpoint",
    "ShardedLoadDriver",
    "ScaleoutSupervisor",
    "WorkerProcess",
    "WorkerRuntime",
    "run_worker",
]
