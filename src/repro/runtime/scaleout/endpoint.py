"""`ScaleoutEndpoint`: the client's view of a multi-process cluster.

`RuntimeClient` and `LoadGenerator` were written against `LiveCluster`
but only ever touch a narrow slice of it: ``config``, ``nodes`` (as an
iterable/containment check for entry picking), ``word.epoch`` (the
entry-list cache key), ``open_connection``, ``count_client_send``, and
``served_counts``.  This facade serves that exact slice from the
bootstrap's address book, so both classes drive a fleet of real
processes **unchanged**:

* ``nodes`` is the address book — a ``dict[pid, (host, port)]``, which
  sorts/iterates/contains exactly like `LiveCluster.nodes`;
* ``open_connection`` dials the book over TCP;
* ``word`` is a one-field epoch shim bumped on every book push, so the
  generator's sorted-entries cache invalidates on churn exactly as it
  does when the live word flips a bit;
* client sends are counted per destination and shipped with the drain
  RPC — the client's column of the bootstrap's quiescence ledger.
"""

from __future__ import annotations

import asyncio

from ...core.errors import ConfigurationError
from ..addressing import Address, dial_peer
from .control import ControlLink, config_from_wire

__all__ = ["ScaleoutEndpoint"]


class _EpochShim:
    """Stands in for ``cluster.word`` where only ``.epoch`` is read."""

    __slots__ = ("epoch",)

    def __init__(self) -> None:
        self.epoch = 0


class ScaleoutEndpoint:
    """Duck-types the `LiveCluster` surface the client stack consumes."""

    def __init__(self) -> None:
        self.config = None
        self.nodes: dict[int, Address] = {}
        self.word = _EpochShim()
        self.link: ControlLink | None = None
        self._sent: dict[int, int] = {}

    @classmethod
    async def connect(cls, host: str, port: int) -> "ScaleoutEndpoint":
        self = cls()
        reader, writer = await asyncio.open_connection(host, port)
        self.link = ControlLink(reader, writer, self._handle, label="endpoint")
        self.link.start()
        hello = await self.link.call("client_hello")
        self.config = config_from_wire(hello["config"])
        self._apply_book(hello.get("book") or {}, int(hello.get("epoch", 0)))
        return self

    async def _handle(self, op: str, body: dict) -> dict | None:
        if op == "book":
            self._apply_book(body.get("book") or {}, int(body.get("epoch", 0)))
            return None
        if op == "ping":
            return {"ok": True}
        return {"error": f"unknown endpoint op {op!r}"}

    def _apply_book(self, book: dict[str, list], epoch: int) -> None:
        self.nodes = {
            int(pid): (entry[0], int(entry[1])) for pid, entry in book.items()
        }
        self.word.epoch = max(self.word.epoch + 1, epoch)

    # -- the client-facing slice of LiveCluster ------------------------------

    def wire_version_of(self, pid: int) -> int:
        if self.config is None:
            raise ConfigurationError("endpoint is not connected")
        if pid in self.config.v1_pids:
            from ..wire import WIRE_VERSION

            return WIRE_VERSION
        return self.config.wire_version

    async def open_connection(
        self, pid: int
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await dial_peer(self.nodes.get(pid), pid)

    def count_client_send(self, pid: int) -> None:
        """The client column of the quiescence ledger.  Gated on the
        book like `LiveCluster.count_client_send` is on ``nodes`` — a
        send racing a retirement never lands, so counting it would
        wedge the drain."""
        if pid in self.nodes:
            self._sent[pid] = self._sent.get(pid, 0) + 1

    async def served_counts(self) -> dict[int, int]:
        assert self.link is not None
        reply = await self.link.call("served_counts")
        return {int(pid): int(n) for pid, n in (reply.get("counts") or {}).items()}

    def _sent_wire(self) -> dict[str, int]:
        return {str(pid): n for pid, n in self._sent.items()}

    async def drain(self) -> None:
        """Cluster-wide drain, with this endpoint's send counts."""
        assert self.link is not None
        await self.link.call("client_drain", sent=self._sent_wire())

    async def quiesce(self) -> None:
        """Pause replication fleet-wide, then drain."""
        assert self.link is not None
        await self.link.call("client_quiesce", sent=self._sent_wire())

    async def close(self) -> None:
        if self.link is not None:
            # Ship the final send counts (no drain): frames this client
            # put on the wire stay accounted for after it disconnects.
            self.link.cast("client_sent", sent=self._sent_wire())
            await self.link.close()
            self.link = None
