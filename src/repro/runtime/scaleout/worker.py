"""One LessLog node as its own OS process.

:class:`WorkerRuntime` is the per-process stand-in for `LiveCluster`:
it exposes the exact coordination surface `NodeServer` consumes, but
every coordination call is an RPC to the bootstrap process and every
data-plane send dials the address book.  The node code itself —
routing, the four flows, the overload plane, the zero-copy fast lane —
runs *unchanged*; the only behavioural difference it can observe is
``pushes_replicas = True`` (the bootstrap delivers the REPLICATE frame
atomically with the oplog record, so no crash window separates them).

Documented v1 fidelity gap, by design:

* Pending-holder/pending-removal bookkeeping is a no-op here: the
  bootstrap's mirror applies each decision in the same step it is
  recorded, so decision-order state lives entirely on the mirror.

(:meth:`WorkerRuntime.holders` used to be a second gap — own-store
view only, so shed redirect hints degraded to ``-1``.  It now unions
the own-store view with a bounded holder-hint cache fed by placement
deltas piggybacked on ``decide``/``catalog_claim`` replies and book
pushes; staleness is handled by the machinery that already existed —
the status-word filter in ``NodeServer._redirect_hint`` and the
client's FINDLIVENODE reroute.)

:class:`WorkerProcess` is the process entrypoint: connect (with
retry) → ``hello`` (identifier assignment) → boot the `NodeServer` and
its TCP listener → ``register`` the address → serve until SIGTERM,
then drain the local inbox and ship a ``goodbye`` snapshot (store,
word, ledgers) before exiting — the clean half of the lifecycle the
supervisor's ``kill -9`` deliberately skips.
"""

from __future__ import annotations

import asyncio
import os
import signal
from typing import Any

from ...net.message import Message
from ...node.membership import StatusWord
from ..addressing import Address, PeerUnreachableError, dial_peer, start_listener
from ..cluster import ADMIN, RuntimeConfig, _FrameSink
from ..node import CLIENT, NodeServer
from ..wire import WIRE_VERSION, WireError
from ...core.hashing import Psi
from ...core.tree import LookupTree
from .control import ControlLink, config_from_wire, message_from_wire

__all__ = ["WorkerRuntime", "WorkerProcess", "run_worker"]

PSI_CACHE_CAP = 4096
"""Upper bound on memoized ψ values per worker — a wide catalog must
not grow worker memory without limit."""

HOLDER_CACHE_CAP = 4096
"""Upper bound on cached holder hints per worker."""


class _BoundedCache(dict):
    """A size-capped dict: inserting past ``cap`` evicts the oldest
    entry (dicts preserve insertion order, so ``next(iter(...))`` is
    the first-inserted key).  O(1) insertion-order eviction rather
    than strict LRU — hits don't reorder — which is plenty for ψ and
    holder memoization: the hot set re-inserts right after any
    eviction, and correctness never depends on a hit (a ψ miss
    recomputes, a holder miss degrades to the pre-cache ``-1`` path).
    """

    __slots__ = ("cap",)

    def __init__(self, cap: int) -> None:
        super().__init__()
        if cap < 1:
            raise ValueError("cache cap must be positive")
        self.cap = cap

    def __setitem__(self, key: Any, value: Any) -> None:
        if key not in self and len(self) >= self.cap:
            del self[next(iter(self))]
        super().__setitem__(key, value)


class WorkerRuntime:
    """The coordination plane, as seen from inside one worker process."""

    pushes_replicas = True
    """The bootstrap pushes REPLICATE frames itself, in the same step
    that appends the decision record (see `BootstrapServer._op_decide`)."""

    def __init__(
        self,
        config: RuntimeConfig,
        pid: int,
        live: list[int],
        link: ControlLink,
    ) -> None:
        self.config = config
        self.pid = pid
        self.link = link
        self.word = StatusWord(config.m, set(live))
        self.book: dict[int, Address] = {}
        self.node: NodeServer | None = None
        self.replication_enabled = True
        self.counters: dict[str, int] = {}
        self.stage_seconds: dict[str, float] = {
            "encode": 0.0, "decode": 0.0, "route": 0.0, "serve": 0.0,
        }
        self.sent_to: dict[int, int] = {}
        """Cumulative data-plane frames sent per destination PID."""
        self.recv_from: dict[int, int] = {}
        """Cumulative frames received per source bucket (peer PID,
        ``CLIENT``, or ``ADMIN`` for control-channel delivers).  Counted
        per *source* so quiescence survives a sender that is killed
        along with its send counters: the victim's column is simply
        ignored once it leaves the live set."""
        self.psi = Psi(config.m)
        self._psi_cache: _BoundedCache = _BoundedCache(PSI_CACHE_CAP)
        self._holder_cache: _BoundedCache = _BoundedCache(HOLDER_CACHE_CAP)
        """name -> sorted tuple of holder PIDs, as last reported by the
        bootstrap (piggybacked on decide/claim replies and book
        pushes).  Possibly stale; see :meth:`holders`."""
        self._trees: dict[int, LookupTree] = {}
        self._sinks: dict[int, _FrameSink] = {}

    # -- small helpers (the LiveCluster surface NodeServer reads) -----------

    def tree(self, r: int) -> LookupTree:
        tree = self._trees.get(r)
        if tree is None:
            tree = LookupTree(r, self.config.m)
            self._trees[r] = tree
        return tree

    def psi_of(self, name: str) -> int:
        r = self._psi_cache.get(name)
        if r is None:
            r = self.psi(name)
            self._psi_cache[name] = r
        return r

    def count(self, name: str) -> None:
        self.counters[name] = self.counters.get(name, 0) + 1

    def note_decode_error(self, pid: int) -> None:
        self.count("wire_decode_errors")

    def note_handler_error(self, pid: int) -> None:
        self.count("handler_errors")

    def wire_version_of(self, pid: int) -> int:
        if pid in self.config.v1_pids:
            return WIRE_VERSION
        return self.config.wire_version

    def wire_version_for(self, src: int, dst: int) -> int:
        sender = self.wire_version_of(src) if src >= 0 else self.config.wire_version
        return min(sender, self.wire_version_of(dst))

    def holders(self, name: str) -> set[int]:
        """Own store ∪ the holder-hint cache.

        The cache is best-effort: an entry can name a holder that has
        since removed its copy or silently died.  That is safe by the
        same argument the whole redirect plane rests on —
        ``NodeServer._redirect_hint`` filters candidates through the
        status word, and a hint that is stale anyway triggers the
        client's FINDLIVENODE reroute.  What a warm entry buys is a
        real pid where the old own-store-only view produced ``-1``
        and forced a blind client-side reroute on every shed."""
        out = set(self._holder_cache.get(name, ()))
        node = self.node
        if node is not None and name in node.store:
            out.add(self.pid)
        else:
            out.discard(self.pid)
        return out

    def note_holders(self, name: str, pids: Any) -> None:
        """Record a placement delta for ``name`` (cache feed)."""
        try:
            holders = tuple(sorted({int(p) for p in pids}))
        except (TypeError, ValueError):
            return
        if holders:
            self._holder_cache[name] = holders
        else:
            self._holder_cache.pop(name, None)

    def note_evicted(self, gone: set[int]) -> None:
        """A book push shrank the membership: close data-plane sinks to
        the evicted pids and scrub them from cached holder hints.  The
        status word is deliberately NOT touched — a silent kill stays
        silent until autopsy (REGISTER_DEAD); peers still discover the
        death through failed dials, just sooner."""
        if not gone:
            return
        for pid in gone:
            sink = self._sinks.pop(pid, None)
            if sink is not None:
                sink.close()
        for name, cached in list(self._holder_cache.items()):
            kept = tuple(p for p in cached if p not in gone)
            if kept != cached:
                if kept:
                    self._holder_cache[name] = kept
                else:
                    del self._holder_cache[name]

    # -- data plane ----------------------------------------------------------

    async def send(self, src: int, msg: Message) -> None:
        """One data-plane frame to a peer worker, via the address book."""
        dst = msg.dst
        if dst == src:
            assert self.node is not None
            self.node.deliver_local(msg)
            return
        sink = self._sinks.get(dst)
        if sink is None:
            _reader, writer = await dial_peer(self.book.get(dst), dst)
            sink = _FrameSink(
                writer, self.config.coalesce_bytes, self.config.coalesce_delay,
                fixed=self.config.fixed_frames,
                tick=self.config.tick_coalesce,
            )
            self._sinks[dst] = sink
        version = self.wire_version_for(src, dst)
        try:
            sink.add(msg, version)
            sink.poke()
            await sink.drain_if_needed()
        except WireError:
            raise
        except (ConnectionError, OSError):
            self._sinks.pop(dst, None)
            sink.close()
            raise PeerUnreachableError(f"connection to P({dst}) failed") from None
        self.sent_to[dst] = self.sent_to.get(dst, 0) + 1

    def msg_enqueued(self, pid: int, src: int = CLIENT) -> None:
        bucket = src if src >= 0 else CLIENT
        self.recv_from[bucket] = self.recv_from.get(bucket, 0) + 1

    def count_admin_recv(self) -> None:
        """A control-channel ``deliver`` landed (`deliver_local` skips
        :meth:`msg_enqueued`, so the handler counts it here)."""
        self.recv_from[ADMIN] = self.recv_from.get(ADMIN, 0) + 1

    # -- coordination RPCs ---------------------------------------------------

    async def catalog_check(self, name: str) -> bool:
        try:
            reply = await self.link.call("catalog_check", name=name)
        except ConnectionError:
            return False
        return bool(reply.get("ok"))

    async def catalog_claim(self, name: str, target: int, payload: Any) -> bool:
        try:
            reply = await self.link.call(
                "catalog_claim", name=name, pid=self.pid, payload=payload
            )
        except (ConnectionError, RuntimeError):
            return False
        if "holders" in reply:
            self.note_holders(name, reply["holders"])
        return bool(reply.get("ok"))

    async def catalog_advance(self, name: str, payload: Any) -> int | None:
        try:
            reply = await self.link.call(
                "catalog_advance", name=name, payload=payload
            )
        except (ConnectionError, RuntimeError):
            return None
        version = reply.get("version")
        return None if version is None else int(version)

    async def decide_replication(
        self, name: str, holder: int, seed: int, rates: dict[int, float]
    ) -> int | None:
        try:
            reply = await self.link.call(
                "decide", name=name, holder=holder, seed=seed,
                rates={str(src): rate for src, rate in rates.items()},
            )
        except (ConnectionError, RuntimeError):
            return None
        if "holders" in reply:
            self.note_holders(name, reply["holders"])
        target = reply.get("target")
        return None if target is None else int(target)

    def record_removal(self, name: str, pid: int) -> None:
        """Ship the idle-decay decision; the record (and the oracle's
        orphan GC, as REMOVE frames back through ``deliver``) land at
        the bootstrap in control-channel FIFO order."""
        self.link.cast("record_removal", name=name, pid=pid)

    def resolve_pending_holder(self, name: str, pid: int) -> None:
        pass  # decision-order state lives on the bootstrap's mirror

    def resolve_pending_removal(self, name: str, pid: int) -> None:
        pass  # decision-order state lives on the bootstrap's mirror

    async def gc_after_removal(self, name: str) -> list[int]:
        return []  # the orphan GC rides the record_removal cast

    # -- lifecycle -----------------------------------------------------------

    def snapshot_body(self) -> dict[str, Any]:
        """This worker's contribution to the central conformance
        snapshot: real store contents, its own word, and the ledgers."""
        node = self.node
        assert node is not None
        store = [
            (copy.name, copy.payload, copy.version, copy.origin.value)
            for copy in sorted(
                (node.store.get(name, count_access=False)
                 for name in node.store.names()),
                key=lambda c: c.name,
            )
        ]
        return {
            "store": store,
            "word": sorted(node.word.live_pids()),
            "served": node.served_total,
            "shed": node.shed_total,
            "decisions": node._decision_count,
            "stage": dict(self.stage_seconds),
            "counters": dict(self.counters),
        }

    def probe_body(self) -> dict[str, Any]:
        node = self.node
        return {
            "sent": {str(dst): n for dst, n in self.sent_to.items()},
            "recv": {str(src): n for src, n in self.recv_from.items()},
            "idle": node is not None and not node.active,
        }

    def close_sinks(self) -> None:
        for sink in self._sinks.values():
            sink.close()
        self._sinks.clear()


class WorkerProcess:
    """Entrypoint state machine for one worker OS process."""

    def __init__(self) -> None:
        self.runtime: WorkerRuntime | None = None
        self.node: NodeServer | None = None
        self.go = asyncio.Event()
        self.stop = asyncio.Event()
        self._book_wire: dict[str, list] = {}

    async def _handle(self, op: str, body: dict) -> dict | None:
        if op == "go":
            self._book_wire = body.get("book") or {}
            if self.runtime is not None:
                self.runtime.book = _book_from_wire(self._book_wire)
            self.go.set()
            return None
        if op == "deliver":
            runtime = self.runtime
            if runtime is not None and runtime.node is not None:
                runtime.count_admin_recv()
                runtime.node.deliver_local(message_from_wire(body["msg"]))
            return None
        if op == "book":
            # Membership/placement push: refresh the dial table, drop
            # sinks and cached hints for evicted pids, absorb any
            # piggybacked holder deltas.  Never touches the status
            # word — silent kills stay silent until autopsy.
            runtime = self.runtime
            if "book" in body:
                self._book_wire = body.get("book") or {}
                if runtime is not None:
                    new_book = _book_from_wire(self._book_wire)
                    gone = set(runtime.book) - set(new_book)
                    runtime.book = new_book
                    runtime.note_evicted(gone)
            holders = body.get("holders")
            if runtime is not None and isinstance(holders, dict):
                for name, pids in holders.items():
                    runtime.note_holders(name, pids)
            return None
        if op == "probe":
            assert self.runtime is not None
            return self.runtime.probe_body()
        if op == "snapshot":
            assert self.runtime is not None
            return self.runtime.snapshot_body()
        if op == "ping":
            return {"ok": True}
        if op == "pause":
            if self.runtime is not None:
                self.runtime.replication_enabled = False
            return None
        if op == "resume":
            if self.runtime is not None:
                self.runtime.replication_enabled = True
            return None
        if op == "term":
            self.stop.set()
            return {"ok": True}
        return {"error": f"unknown worker op {op!r}"}

    async def run(self, host: str, port: int) -> None:
        reader, writer = await _connect_retry(host, port)
        link = ControlLink(reader, writer, self._handle, label="worker")
        link.start()
        hello = await link.call("hello", ospid=os.getpid())
        config = config_from_wire(hello["config"])
        pid = int(hello["pid"])
        runtime = WorkerRuntime(config, pid, list(hello["live"]), link)
        self.runtime = runtime
        node = NodeServer(pid, runtime)  # type: ignore[arg-type]
        runtime.node = node
        self.node = node
        server, (node_host, node_port) = await start_listener(node.attach)
        await link.call("register", host=node_host, port=node_port)
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, self.stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
        # Inbound frames can land the instant peers get their books, and
        # a forwarded request would make this node dial out — so the
        # inbox consumer must not start until our own book arrived via
        # the ``go`` cast.  Early frames just queue in the inbox.
        go_wait = loop.create_task(self.go.wait())
        boot_dead = loop.create_task(link.closed.wait())
        try:
            await asyncio.wait(
                (go_wait, boot_dead), return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            go_wait.cancel()
            boot_dead.cancel()
        if self._book_wire:
            runtime.book = _book_from_wire(self._book_wire)
        node.start()
        stop_wait = loop.create_task(self.stop.wait())
        dead_wait = loop.create_task(link.closed.wait())
        try:
            await asyncio.wait(
                (stop_wait, dead_wait), return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            stop_wait.cancel()
            dead_wait.cancel()
        if self.stop.is_set() and not link.closed.is_set():
            # Clean shutdown: drain the local inbox, then ship the
            # goodbye snapshot.  A bootstrap that vanished instead
            # (dead_wait fired) gets neither — that is the kill path.
            deadline = loop.time() + config.drain_timeout
            while node.active and loop.time() < deadline:
                await asyncio.sleep(0.005)
            try:
                await link.call("goodbye", **runtime.snapshot_body())
            except (ConnectionError, RuntimeError):  # pragma: no cover
                pass
        server.close()
        await server.wait_closed()
        runtime.close_sinks()
        await node.shutdown()
        await link.close()


def _book_from_wire(book: dict[str, list]) -> dict[int, Address]:
    return {int(pid): (entry[0], int(entry[1])) for pid, entry in book.items()}


async def _connect_retry(
    host: str, port: int, timeout: float = 15.0
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial the bootstrap, retrying while the fleet boots."""
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while True:
        try:
            return await asyncio.open_connection(host, port)
        except (ConnectionError, OSError):
            if loop.time() >= deadline:
                raise
            await asyncio.sleep(0.05)


def run_worker(host: str, port: int) -> None:
    """Blocking entrypoint: serve one worker until SIGTERM or EOF."""
    asyncio.run(WorkerProcess().run(host, port))
