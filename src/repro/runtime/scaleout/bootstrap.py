"""The scale-out bootstrap: identifier assignment, address book, and
the coordination plane for a cluster of per-node worker processes.

In the single-process runtime the `LiveCluster` object *is* the
coordination plane — catalog, status word, oplog, churn orchestration.
Split across OS processes, that role moves here: the bootstrap process
listens on one TCP endpoint, assigns each connecting worker its LessLog
identifier, hands out the address book once everyone has registered,
and serves every coordination decision over :class:`ControlLink` RPCs.

**The mirror oracle.**  Instead of tracking catalog/placement state in
bespoke dicts, the bootstrap holds a live synchronous
:class:`LessLogSystem` — the same class the conformance replay builds —
and applies every oplog record to it *in the same step* that appends
the record.  The invariant ``mirror == replay(oplog)`` therefore holds
by construction at every instant, which is what makes coordination
decisions replayable:

* a replicate decision is computed by ``mirror.replicate(...)`` with
  the worker's reported seed and forwarder rates — the exact call the
  replay will make — and the chosen target's copy is *pushed by the
  bootstrap itself* (a REPLICATE admin frame over the target's control
  channel) atomically with the record, so a ``kill -9`` can never land
  between the decision and the copy;
* §5.3 crash recovery is reconcile-by-state-diff: apply
  ``recover_node`` to the mirror, diff placement before/after, and
  emit exactly the TRANSFER/DEMOTE/REMOVE frames that realize the diff
  on the live stores.

**Oplog shipping** therefore happens at decision time: every worker's
placement decisions flow through these RPCs in true decision order, so
the central log needs no post-hoc merge — shutdown only ships final
stores and counters for the conformance snapshot.

**Quiescence** across processes is a per-(source, dest) ledger: each
worker counts its sends per destination and its receipts per source,
the bootstrap counts its own admin delivers, and client endpoints ship
their per-destination send counts with their drain call.  The cluster
is quiet when, for every ordered pair of *live* nodes, sends equal
receipts, every inbox is empty, and nobody is busy — three consecutive
stable rounds, exactly `LiveCluster.drain`'s discipline.  Counting
receipts per source is what makes the ledger churn-proof: a victim's
send counters die with it, but its frames land in receivers'
``recv_from[victim]`` buckets, which the quiet check simply ignores
once the victim is dead.

Scale-out v1 scope: crash churn only (no join/leave over the wire),
silent kills with a post-burst autopsy (PR 8's semantics), and no
cross-process inherited-load attribution — the victim's load monitor
dies with its process, and that accounting is runtime-only (never
oplogged), so conformance is unaffected.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any

from ...cluster.churn import kill_node, recover_node
from ...cluster.system import LessLogSystem
from ...core.errors import (
    ConfigurationError,
    FileNotFoundInSystemError,
    MembershipError,
)
from ...net.message import Message, MessageKind
from ...node.storage import FileOrigin
from ..addressing import Address
from ..cluster import ADMIN, OpRecord, RuntimeConfig
from ..conformance import ClusterStateSnapshot
from ..node import CLIENT
from .control import ControlLink, config_to_wire, message_to_wire

__all__ = ["BootstrapServer", "ScaleoutStats"]


@dataclass
class ScaleoutStats:
    """Aggregated per-worker runtime stats, collected with the snapshot."""

    served_by_node: dict[int, int] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    decisions: dict[int, int] = field(default_factory=dict)


@dataclass
class _Peer:
    """One control connection's identity (worker / client endpoint)."""

    link: ControlLink
    kind: str = "unknown"  # unknown | worker | client
    pid: int = -1
    ospid: int = -1


class BootstrapServer:
    """The coordination plane of a multi-process LessLog deployment."""

    def __init__(self, config: RuntimeConfig, n_nodes: int | None = None) -> None:
        total = 1 << config.m
        n = total if n_nodes is None else n_nodes
        if not 1 <= n <= total:
            raise ConfigurationError(
                f"n_nodes must be in [1, {total}] for m={config.m}"
            )
        self.config = config
        self.expected = n
        self.initial_live: tuple[int, ...] = tuple(range(n))
        self.mirror = LessLogSystem(
            m=config.m, b=config.b, live=set(self.initial_live), seed=config.seed
        )
        self.oplog: list[OpRecord] = []
        self.book: dict[int, Address] = {}
        self.paused = False
        self.ready = asyncio.Event()
        """Set once every expected worker has registered its address."""
        self._lock = asyncio.Lock()
        self._unassigned = list(reversed(self.initial_live))
        self._workers: dict[int, _Peer] = {}
        self._ospids: dict[int, int] = {}
        self._clients: list[_Peer] = []
        self._silent_deaths: set[int] = set()
        self._admin_sent: dict[int, int] = {}
        self._client_sent: dict[int, dict[int, int]] = {}
        """Per-endpoint cumulative client sends per destination PID."""
        self._goodbyes: dict[int, dict[str, Any]] = {}
        self._book_epoch = 0
        self._server: asyncio.base_events.Server | None = None

    # -- serving ------------------------------------------------------------

    async def serve(self, sock: Any = None, host: str = "127.0.0.1",
                    port: int = 0) -> Address:
        """Start accepting control connections; returns the address."""
        if sock is not None:
            self._server = await asyncio.start_server(self._on_connect, sock=sock)
        else:
            self._server = await asyncio.start_server(self._on_connect, host, port)
        name = self._server.sockets[0].getsockname()
        return (name[0], name[1])

    async def shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for peer in list(self._workers.values()) + list(self._clients):
            await peer.link.close()
        self._workers.clear()
        self._clients.clear()

    def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = _Peer(link=None)  # type: ignore[arg-type]

        async def handle(op: str, body: dict) -> dict | None:
            return await self._handle(peer, op, body)

        peer.link = ControlLink(reader, writer, handle, label="bootstrap")
        peer.link.start()

    # -- the control protocol ----------------------------------------------

    async def _handle(self, peer: _Peer, op: str, body: dict) -> dict | None:
        if op == "hello":
            return self._op_hello(peer, body)
        if op == "register":
            return self._op_register(peer, body)
        if op == "client_hello":
            return self._op_client_hello(peer, body)
        if op == "ping":
            return {"ok": True}
        if op == "catalog_check":
            return {"ok": body.get("name", "") not in self.mirror.catalog}
        if op == "catalog_claim":
            async with self._lock:
                return self._op_claim(body)
        if op == "catalog_advance":
            async with self._lock:
                return self._op_advance(body)
        if op == "decide":
            async with self._lock:
                return self._op_decide(body)
        if op == "record_removal":
            async with self._lock:
                self._op_removal(body)
            return None
        if op == "goodbye":
            self._goodbyes[peer.pid] = dict(body)
            return {"ok": True}
        if op == "client_sent":
            self._note_client_sent(peer, body)
            return None
        if op == "client_drain":
            self._note_client_sent(peer, body)
            await self.drain()
            return {"ok": True}
        if op == "client_quiesce":
            self._note_client_sent(peer, body)
            await self.quiesce()
            return {"ok": True}
        if op == "served_counts":
            stats = await self.collect_stats()
            return {"counts": {str(p): c for p, c in stats.served_by_node.items()}}
        return {"error": f"unknown control op {op!r}"}

    def _op_hello(self, peer: _Peer, body: dict) -> dict:
        if not self._unassigned:
            return {"error": "cluster is fully assigned"}
        pid = self._unassigned.pop()
        peer.kind = "worker"
        peer.pid = pid
        peer.ospid = int(body.get("ospid", -1))
        self._workers[pid] = peer
        self._ospids[pid] = peer.ospid
        return {
            "pid": pid,
            "config": config_to_wire(self.config),
            "live": sorted(self.initial_live),
        }

    def _op_register(self, peer: _Peer, body: dict) -> dict:
        self.book[peer.pid] = (str(body["host"]), int(body["port"]))
        if len(self.book) == self.expected and not self.ready.is_set():
            self.ready.set()
            book = self._wire_book()
            for worker in self._workers.values():
                worker.link.cast("go", book=book)
        return {"ok": True}

    def _op_client_hello(self, peer: _Peer, body: dict) -> dict:
        peer.kind = "client"
        peer.pid = -len(self._clients) - 1
        self._clients.append(peer)
        return {
            "config": config_to_wire(self.config),
            "book": self._wire_book(),
            "epoch": self._book_epoch,
        }

    def _op_claim(self, body: dict) -> dict:
        name = str(body["name"])
        entry = int(body.get("pid", -1))
        if name in self.mirror.catalog:
            return {"ok": False}
        if entry >= 0 and not self.mirror.membership.is_live(entry):
            return {"ok": False}  # the entry died while the RPC was queued
        try:
            self.mirror.insert(name, body.get("payload"))
        except FileNotFoundInSystemError:
            return {"ok": False}  # no live storage node in any subtree
        self.oplog.append(
            OpRecord(kind="insert", name=name, payload=body.get("payload"))
        )
        # Placement delta piggyback: the claimer learns where the
        # mirror actually put the copy, warming its holder-hint cache.
        return {"ok": True, "holders": self.mirror.holders_of(name)}

    def _op_advance(self, body: dict) -> dict:
        name = str(body["name"])
        if name in self.mirror.faults or name not in self.mirror.catalog:
            return {"version": None}
        result = self.mirror.update(name, body.get("payload"))
        self.oplog.append(
            OpRecord(
                kind="update", name=name, payload=body.get("payload"),
                version=result.version,
            )
        )
        return {"version": result.version}

    def _op_decide(self, body: dict) -> dict:
        """One replication decision, computed *on the mirror*.

        Applying ``mirror.replicate`` with the reported seed/rates is
        exactly the call the conformance replay will make for this
        record, so decision and replay agree by construction.  The
        target's copy leaves here too — same step as the record — so
        no crash window separates them.
        """
        name = str(body["name"])
        holder = int(body["holder"])
        seed = int(body["seed"])
        rates = {int(k): float(v) for k, v in (body.get("rates") or {}).items()}
        if self.paused or not self.mirror.membership.is_live(holder):
            return {"target": None, "holders": self.mirror.holders_of(name)}
        if name not in self.mirror.stores[holder]:
            # The holder's copy is already gone in decision order
            # (decayed or GC'd); nothing to replicate, nothing recorded.
            return {"target": None, "holders": self.mirror.holders_of(name)}
        target = self.mirror.replicate(
            name, holder, forwarder_rates=rates, rng=random.Random(seed)
        )
        self.oplog.append(
            OpRecord(
                kind="replicate", name=name, pid=holder, seed=seed,
                target=target, rates=rates,
            )
        )
        if target is not None:
            copy = self.mirror.stores[target].get(name, count_access=False)
            self._deliver(
                target,
                Message(
                    kind=MessageKind.REPLICATE, src=ADMIN, dst=target,
                    file=name, payload={"payload": copy.payload},
                    version=copy.version,
                ),
            )
        # Placement delta piggyback: the decider learns the full holder
        # set in decision order — its next shed of this file can emit a
        # real redirect hint instead of ``-1``.
        return {"target": target, "holders": self.mirror.holders_of(name)}

    def _op_removal(self, body: dict) -> None:
        """Apply a worker's idle-decay removal + the oracle's orphan GC.

        The worker already discarded its local copy (REMOVE-to-self);
        here the record lands, the mirror applies the same removal, and
        any holder the mirror's orphan GC dropped gets a REMOVE frame —
        the cross-process form of `LiveCluster.gc_after_removal`.
        """
        name = str(body["name"])
        pid = int(body["pid"])
        store = self.mirror.stores.get(pid)
        if (
            not self.mirror.membership.is_live(pid)
            or store is None
            or name not in store
            or store.get(name, count_access=False).origin is not FileOrigin.REPLICATED
        ):
            return  # raced a kill or a GC that already dropped the copy
        before = set(self.mirror.holders_of(name))
        self.mirror.remove_replica(name, pid)
        self.oplog.append(OpRecord(kind="remove", name=name, pid=pid))
        after = set(self.mirror.holders_of(name))
        for orphan in sorted(before - after - {pid}):
            self._deliver(
                orphan,
                Message(kind=MessageKind.REMOVE, src=ADMIN, dst=orphan, file=name),
            )

    # -- admin frame delivery ------------------------------------------------

    def _deliver(self, pid: int, msg: Message) -> None:
        """Push one admin frame to a worker over its control channel."""
        peer = self._workers.get(pid)
        if peer is None:  # pragma: no cover - racing death
            return
        self._admin_sent[pid] = self._admin_sent.get(pid, 0) + 1
        peer.link.cast("deliver", msg=message_to_wire(msg))

    async def trigger_overload(self, pid: int, name: str, seed: int) -> None:
        """Admin knob: tell a holder it is overloaded (conformance driver)."""
        self._deliver(
            pid,
            Message(kind=MessageKind.OVERLOAD, src=ADMIN, dst=pid, file=name,
                    payload={"seed": seed}),
        )

    def set_replication(self, enabled: bool) -> None:
        """Gate autonomous replication: the bootstrap's decide gate is
        authoritative (an unrecorded ``None``), the cast keeps worker
        sweepers from spinning against it."""
        self.paused = not enabled
        for peer in self._workers.values():
            peer.link.cast("resume" if enabled else "pause")

    # -- crash churn (§5.3 over real processes) -----------------------------

    async def note_killed(self, pid: int) -> None:
        """A worker was ``kill -9``ed (the supervisor already reaped it).

        Mirrors `LiveCluster.crash(announce=False)`: the kill record
        lands with the membership flip and the store pop, no
        REGISTER_DEAD circulates (peers will discover the death through
        failed dials — message-level FINDLIVENODE), and client
        endpoints get the shrunk address book, exactly like
        `LoadGenerator` watching ``cluster.nodes`` shrink.
        """
        if not self.mirror.membership.is_live(pid):
            raise MembershipError(f"P({pid}) is not live")
        async with self._lock:
            self.oplog.append(OpRecord(kind="kill", pid=pid))
            kill_node(self.mirror, pid)
            self._silent_deaths.add(pid)
            peer = self._workers.pop(pid, None)
            if peer is not None:
                await peer.link.close()
            self.book.pop(pid, None)
            self._admin_sent.pop(pid, None)
            self._push_book()

    async def announce_crash(self, pid: int) -> None:
        """The autopsy: deferred §5.3 detection + recovery for a kill.

        Reconcile-by-state-diff: REGISTER_DEAD circulates to every live
        worker, ``recover_node`` runs on the mirror, and the placement
        diff becomes TRANSFER / DEMOTE / REMOVE frames — so live stores
        land exactly where the oracle says recovery puts them.  The
        ``recover`` record closes the kill/recover pair.
        """
        if pid not in self._silent_deaths:
            raise MembershipError(f"P({pid}) has no unannounced crash")
        self._silent_deaths.discard(pid)
        async with self._lock:
            for other in sorted(self._workers):
                self._deliver(
                    other,
                    Message(kind=MessageKind.REGISTER_DEAD, src=ADMIN, dst=other,
                            payload={"pid": pid}),
                )
            before = self._mirror_placement()
            recover_node(self.mirror, pid)
            after = self._mirror_placement()
            for name in sorted(self.mirror.catalog):
                was = before.get(name, {})
                now = after.get(name, {})
                for holder in sorted(now):
                    if holder == pid or holder not in self._workers:
                        continue
                    origin = now[holder]
                    if holder not in was:
                        self._deliver(holder, self._transfer_frame(name, holder))
                    elif was[holder] != origin:
                        if origin == FileOrigin.INSERTED.value:
                            self._deliver(
                                holder, self._transfer_frame(name, holder)
                            )
                        else:  # pragma: no cover - recovery never demotes
                            self._deliver(
                                holder,
                                Message(kind=MessageKind.DEMOTE, src=ADMIN,
                                        dst=holder, file=name),
                            )
                for holder in sorted(set(was) - set(now)):
                    if holder == pid or holder not in self._workers:
                        continue
                    self._deliver(
                        holder,
                        Message(kind=MessageKind.REMOVE, src=ADMIN, dst=holder,
                                file=name),
                    )
            changed = {
                name: sorted(after.get(name, {}))
                for name in sorted(set(before) | set(after))
                if before.get(name, {}) != after.get(name, {})
            }
            self._push_holders(changed)
            # A ping per worker flushes the link FIFO: every frame
            # above is in its destination's inbox before the record
            # closes the pair.
            for other in sorted(self._workers):
                await self._workers[other].link.call("ping")
            self.oplog.append(OpRecord(kind="recover", pid=pid))
        # No drain here: the quiescence ledger's CLIENT column balances
        # only once endpoints ship their send counts (their drain RPC
        # does) — callers drain through an endpoint after the autopsy.

    def _transfer_frame(self, name: str, holder: int) -> Message:
        copy = self.mirror.stores[holder].get(name, count_access=False)
        return Message(
            kind=MessageKind.TRANSFER, src=ADMIN, dst=holder, file=name,
            payload={"payload": copy.payload}, version=copy.version,
        )

    def _mirror_placement(self) -> dict[str, dict[int, str]]:
        out: dict[str, dict[int, str]] = {}
        for name in self.mirror.catalog:
            out[name] = {
                pid: self.mirror.stores[pid].get(name, count_access=False)
                .origin.value
                for pid in self.mirror.holders_of(name)
            }
        return out

    def _push_book(self) -> None:
        """Membership changed: push the shrunk book to clients AND
        workers.  For a worker the push only refreshes its dial table
        (and scrubs cached holder hints naming the victim) — its
        status word is untouched, so silent-kill semantics hold: the
        death is still only *observable* as a failed send, it just
        fails at the dial instead of at the dead peer's socket."""
        self._book_epoch += 1
        book = self._wire_book()
        for peer in self._clients:
            peer.link.cast("book", book=book, epoch=self._book_epoch)
        for peer in self._workers.values():
            peer.link.cast("book", book=book, epoch=self._book_epoch)

    def _push_holders(self, deltas: dict[str, list[int]]) -> None:
        """Piggyback placement deltas on a book-channel cast to every
        worker (no membership payload — dial tables are already
        current), warming holder-hint caches after recovery moved
        copies around."""
        if not deltas:
            return
        for peer in self._workers.values():
            peer.link.cast("book", holders=deltas)

    def _wire_book(self) -> dict[str, list]:
        return {str(pid): [host, port] for pid, (host, port) in self.book.items()}

    def _note_client_sent(self, peer: _Peer, body: dict) -> None:
        sent = {int(k): int(v) for k, v in (body.get("sent") or {}).items()}
        self._client_sent[peer.pid] = sent

    # -- quiescence ----------------------------------------------------------

    async def _quiet(self) -> bool:
        live = sorted(self._workers)
        try:
            reports = await asyncio.gather(
                *(self._workers[pid].link.call("probe") for pid in live)
            )
        except (ConnectionError, RuntimeError):  # pragma: no cover - racing death
            return False
        by_pid = dict(zip(live, reports))
        if not all(rep.get("idle") for rep in by_pid.values()):
            return False
        client_sent: dict[int, int] = {}
        for sent in self._client_sent.values():
            for dst, count in sent.items():
                client_sent[dst] = client_sent.get(dst, 0) + count
        for dst in live:
            recv = by_pid[dst].get("recv") or {}
            for src in live:
                if src == dst:
                    continue
                want = int((by_pid[src].get("sent") or {}).get(str(dst), 0))
                if want != int(recv.get(str(src), 0)):
                    return False
            if self._admin_sent.get(dst, 0) != int(recv.get(str(ADMIN), 0)):
                return False
            if client_sent.get(dst, 0) != int(recv.get(str(CLIENT), 0)):
                return False
        return True

    async def drain(self, timeout: float | None = None) -> None:
        """`LiveCluster.drain` across processes: three stable rounds of
        a fully balanced send/receive ledger with idle workers."""
        loop = asyncio.get_running_loop()
        limit = self.config.drain_timeout if timeout is None else timeout
        deadline = loop.time() + limit
        stable = 0
        while stable < 3:
            if loop.time() > deadline:
                raise TimeoutError(f"cluster did not drain within {limit}s")
            if await self._quiet():
                stable += 1
                await asyncio.sleep(0.005)
            else:
                stable = 0
                await asyncio.sleep(0.02)

    async def quiesce(self) -> None:
        self.set_replication(False)
        await self.drain()

    # -- conformance snapshot ------------------------------------------------

    async def collect_snapshot(self) -> tuple[ClusterStateSnapshot, ScaleoutStats]:
        """Freeze the deployment for central oracle replay.

        Catalog, versions, faults, and the oplog come from the
        coordination plane; **placement and per-node words come from
        the workers' real stores** — that is the claim under test.
        Call on a quiesced cluster.
        """
        live = sorted(self._workers)
        raw = await asyncio.gather(
            *(self._workers[pid].link.call("snapshot") for pid in live)
        )
        snaps = dict(zip(live, raw))
        placement: dict[str, dict[int, str]] = {name: {} for name in self.mirror.catalog}
        stats = ScaleoutStats()
        for pid in live:
            snap = snaps[pid]
            for name, _payload, _version, origin in snap.get("store", []):
                placement.setdefault(name, {})[pid] = origin
            stats.served_by_node[pid] = int(snap.get("served", 0))
            stats.decisions[pid] = int(snap.get("decisions", 0))
            for key, value in (snap.get("stage") or {}).items():
                stats.stage_seconds[key] = (
                    stats.stage_seconds.get(key, 0.0) + float(value)
                )
            for key, value in (snap.get("counters") or {}).items():
                stats.counters[key] = stats.counters.get(key, 0) + int(value)
        snapshot = ClusterStateSnapshot(
            config=self.config,
            initial_live=self.initial_live,
            oplog=list(self.oplog),
            live_pids=set(self.mirror.membership.live_pids()),
            node_words={pid: set(snaps[pid].get("word", [])) for pid in live},
            catalog=set(self.mirror.catalog),
            versions={n: e.version for n, e in self.mirror.catalog.items()},
            placement=placement,
            faults=list(self.mirror.faults),
            replicas_created=sum(
                1 for rec in self.oplog
                if rec.kind == "replicate" and rec.target is not None
            ),
        )
        return snapshot, stats

    async def collect_stats(self) -> ScaleoutStats:
        _snapshot, stats = await self.collect_snapshot()
        return stats

    @property
    def n_live(self) -> int:
        return self.mirror.membership.live_count()

    @property
    def goodbyes(self) -> dict[int, dict[str, Any]]:
        """Final snapshots shipped by cleanly terminated workers."""
        return self._goodbyes

    def worker_pids(self) -> list[int]:
        """Node PIDs with a live control connection."""
        return sorted(self._workers)

    def ospid_of(self, pid: int) -> int:
        """The OS process id ``P(pid)`` reported in its hello (-1 if
        unknown) — the supervisor's ``kill -9`` target."""
        return self._ospids.get(pid, -1)
