"""The scale-out control channel: CONTROL frames over the wire protocol.

Bootstrap, workers, and client endpoints coordinate over the same
length-prefixed framing the data plane uses — a ``CONTROL`` message
whose payload is a small dict — pinned to the JSON-v1 codec, whose
generic body carries arbitrary (JSON-safe) dict payloads.  One
:class:`ControlLink` wraps one stream and is fully symmetric: either
side can issue ``call`` (request/response, matched by ``rid``/``re``)
or ``cast`` (fire and forget), and both sides answer the peer through
a handler coroutine.

Dispatch discipline: replies (``re``) are resolved inline by the read
loop, while requests and casts are queued and dispatched *in arrival
order* by one dispatcher task.  That keeps admin frame delivery FIFO
(a REGISTER_DEAD cast and the ping that confirms it cannot reorder)
while a handler that blocks — e.g. a catalog RPC waiting out a
recovery — can never deadlock the link against its own outstanding
calls.

Payload constraint: everything that rides the control channel must be
JSON-safe (the v1 profile).  Admin frames delivered through ``deliver``
casts inherit this — scale-out file payloads are strings/numbers/
lists/dicts, as every workload in this repo already is.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import fields as dataclass_fields
from typing import Any, Awaitable, Callable

from ...net.message import Message, MessageKind, fast_message
from ..cluster import ADMIN, RuntimeConfig
from ..wire import (
    WIRE_VERSION,
    FrameEncoder,
    FrameError,
    WireError,
    message_from_dict,
    message_to_dict,
    read_frame,
)

__all__ = [
    "ControlLink",
    "config_to_wire",
    "config_from_wire",
    "message_to_wire",
    "message_from_wire",
]

Handler = Callable[[str, dict], Awaitable[dict | None]]

_INF = "inf"
"""JSON has no Infinity; ``float('inf')`` config fields ship as this."""


def config_to_wire(config: RuntimeConfig) -> dict[str, Any]:
    """A JSON-safe dict a worker can rebuild its RuntimeConfig from."""
    out: dict[str, Any] = {}
    for f in dataclass_fields(config):
        value = getattr(config, f.name)
        if isinstance(value, float) and value == float("inf"):
            value = _INF
        elif isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def config_from_wire(data: dict[str, Any]) -> RuntimeConfig:
    """Inverse of :func:`config_to_wire`."""
    kwargs: dict[str, Any] = {}
    for f in dataclass_fields(RuntimeConfig):
        if f.name not in data:
            continue
        value = data[f.name]
        if value == _INF:
            value = float("inf")
        elif f.name == "v1_pids":
            value = tuple(value)
        kwargs[f.name] = value
    return RuntimeConfig(**kwargs)


def message_to_wire(msg: Message) -> dict[str, Any]:
    """Serialize an admin frame for a ``deliver`` cast."""
    return message_to_dict(msg)


def message_from_wire(data: dict[str, Any]) -> Message:
    """Rebuild a delivered admin frame."""
    return message_from_dict(data)


class ControlLink:
    """One symmetric control connection (bootstrap <-> worker/client)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        handler: Handler,
        label: str = "",
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.handler = handler
        self.label = label
        self.closed = asyncio.Event()
        self._rid = itertools.count(1)
        self._waiters: dict[int, asyncio.Future] = {}
        self._inbox: asyncio.Queue[dict] = asyncio.Queue()
        self._encoder = FrameEncoder(fixed=False)
        self._tasks: list[asyncio.Task] = []

    def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._tasks.append(
            loop.create_task(self._read_loop(), name=f"ctl-read:{self.label}")
        )
        self._tasks.append(
            loop.create_task(self._dispatch_loop(), name=f"ctl-disp:{self.label}")
        )

    async def _read_loop(self) -> None:
        try:
            while True:
                msg, _version = await read_frame(self.reader)
                body = msg.payload if isinstance(msg.payload, dict) else {}
                re = body.get("re")
                if re is not None:
                    waiter = self._waiters.pop(re, None)
                    if waiter is not None and not waiter.done():
                        waiter.set_result(body)
                    continue
                self._inbox.put_nowait(body)
        except (EOFError, FrameError, WireError, ConnectionError, OSError):
            pass
        finally:
            self._fail_waiters()
            self.closed.set()

    async def _dispatch_loop(self) -> None:
        while True:
            body = await self._inbox.get()
            op = body.get("op", "")
            rid = body.get("rid")
            try:
                result = await self.handler(op, body)
            except asyncio.CancelledError:  # pragma: no cover
                raise
            except Exception as exc:
                result = {"error": f"{type(exc).__name__}: {exc}"}
            if rid is not None:
                try:
                    self._write({"re": rid, **(result or {})})
                except (ConnectionError, OSError):  # pragma: no cover
                    return

    def _write(self, body: dict) -> None:
        if self.writer.is_closing():
            raise ConnectionError("control peer is closing")
        msg = fast_message(MessageKind.CONTROL, ADMIN, ADMIN, "", body)
        self._encoder.add(msg, WIRE_VERSION)
        self._encoder.flush_to(self.writer)

    async def call(self, op: str, **fields: Any) -> dict:
        """One request/response round trip; raises on a dead link."""
        rid = next(self._rid)
        waiter = asyncio.get_running_loop().create_future()
        self._waiters[rid] = waiter
        try:
            self._write({"op": op, "rid": rid, **fields})
        except (ConnectionError, OSError):
            self._waiters.pop(rid, None)
            raise ConnectionError(f"control link down ({self.label})") from None
        reply = await waiter
        if "error" in reply:
            raise RuntimeError(f"control {op!r} failed: {reply['error']}")
        return reply

    def cast(self, op: str, **fields: Any) -> None:
        """Fire-and-forget; silently dropped on a dead link (the peer
        is gone — its death is handled elsewhere)."""
        try:
            self._write({"op": op, **fields})
        except (ConnectionError, OSError):
            pass

    def _fail_waiters(self) -> None:
        for waiter in self._waiters.values():
            if not waiter.done():
                waiter.set_exception(
                    ConnectionError(f"control link closed ({self.label})")
                )
        self._waiters.clear()

    async def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
        self._tasks.clear()
        try:
            self.writer.close()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
        self.closed.set()
