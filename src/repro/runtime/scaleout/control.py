"""The scale-out control channel: CONTROL frames over the wire protocol.

Bootstrap, workers, and client endpoints coordinate over the same
length-prefixed framing the data plane uses — a ``CONTROL`` message
whose payload is a small dict — pinned to the JSON-v1 codec, whose
generic body carries arbitrary (JSON-safe) dict payloads.  One
:class:`ControlLink` wraps one stream and is fully symmetric: either
side can issue ``call`` (request/response, matched by ``rid``/``re``)
or ``cast`` (fire and forget), and both sides answer the peer through
a handler coroutine.

Dispatch discipline: replies (``re``) are resolved inline by the read
loop, while requests and casts are queued in arrival order and each
dispatched as its own task.  FIFO still holds where it matters: tasks
are created in arrival order and run in creation order up to their
first ``await``, so a handler whose effect precedes its first await
(every worker-side admin handler) lands before any later frame — a
REGISTER_DEAD cast and the ping that confirms it cannot reorder — and
handlers that serialize on a lock (every mutating bootstrap op)
acquire it in arrival order because ``asyncio.Lock`` wakes waiters
FIFO.  What pipelining buys: a handler that blocks — a ``decide``
waiting out a recovery, a catalog RPC — no longer convoys every
frame behind it, so concurrent in-flight calls from many workers
overlap instead of queueing one round-trip at a time.

Write discipline: bodies are coalesced per event-loop tick.  ``cast``
and replies enqueue and flush at the end of the current iteration
(one ``call_soon``); ``call`` flushes immediately, carrying any
pending casts first.  Multiple bodies in one flush leave as a single
``batch`` frame — one length-prefixed message, one syscall — which
the peer's read loop expands back into individual bodies in order,
so batching is invisible to FIFO semantics.

Payload constraint: everything that rides the control channel must be
JSON-safe (the v1 profile).  Admin frames delivered through ``deliver``
casts inherit this — scale-out file payloads are strings/numbers/
lists/dicts, as every workload in this repo already is.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import fields as dataclass_fields
from typing import Any, Awaitable, Callable

from ...net.message import Message, MessageKind, fast_message
from ..cluster import ADMIN, RuntimeConfig
from ..wire import (
    WIRE_VERSION,
    FrameEncoder,
    FrameError,
    WireError,
    message_from_dict,
    message_to_dict,
    read_frame,
)

__all__ = [
    "ControlLink",
    "BATCH_OP",
    "encode_batch",
    "decode_batch",
    "config_to_wire",
    "config_from_wire",
    "message_to_wire",
    "message_from_wire",
]

Handler = Callable[[str, dict], Awaitable[dict | None]]

_INF = "inf"
"""JSON has no Infinity; ``float('inf')`` config fields ship as this."""

BATCH_OP = "batch"
"""Reserved op name for a coalesced control frame.  No coordination op
may use it — the read loop unconditionally expands it."""


def encode_batch(bodies: list[dict]) -> dict[str, Any]:
    """Wrap several control bodies into one batch frame.

    The wrapper is itself a plain JSON-safe control body, so it rides
    the existing CONTROL/JSON-v1 framing unchanged; order inside
    ``ops`` is wire order.
    """
    return {"op": BATCH_OP, "ops": list(bodies)}


def decode_batch(body: dict) -> list[dict]:
    """Expand a control body into its constituent bodies, in order.

    A non-batch body decodes to itself, so callers can pipe every
    received frame through this unconditionally; malformed batch
    members (non-dicts) are dropped rather than poisoning the link.
    """
    if body.get("op") != BATCH_OP:
        return [body]
    ops = body.get("ops")
    if not isinstance(ops, list):
        return []
    return [op for op in ops if isinstance(op, dict)]


def config_to_wire(config: RuntimeConfig) -> dict[str, Any]:
    """A JSON-safe dict a worker can rebuild its RuntimeConfig from."""
    out: dict[str, Any] = {}
    for f in dataclass_fields(config):
        value = getattr(config, f.name)
        if isinstance(value, float) and value == float("inf"):
            value = _INF
        elif isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def config_from_wire(data: dict[str, Any]) -> RuntimeConfig:
    """Inverse of :func:`config_to_wire`."""
    kwargs: dict[str, Any] = {}
    for f in dataclass_fields(RuntimeConfig):
        if f.name not in data:
            continue
        value = data[f.name]
        if value == _INF:
            value = float("inf")
        elif f.name == "v1_pids":
            value = tuple(value)
        kwargs[f.name] = value
    return RuntimeConfig(**kwargs)


def message_to_wire(msg: Message) -> dict[str, Any]:
    """Serialize an admin frame for a ``deliver`` cast."""
    return message_to_dict(msg)


def message_from_wire(data: dict[str, Any]) -> Message:
    """Rebuild a delivered admin frame."""
    return message_from_dict(data)


class ControlLink:
    """One symmetric control connection (bootstrap <-> worker/client)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        handler: Handler,
        label: str = "",
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.handler = handler
        self.label = label
        self.closed = asyncio.Event()
        self._rid = itertools.count(1)
        self._waiters: dict[int, asyncio.Future] = {}
        self._inbox: asyncio.Queue[dict] = asyncio.Queue()
        self._encoder = FrameEncoder(fixed=False)
        self._tasks: list[asyncio.Task] = []
        self._pending: list[dict] = []
        self._flush_scheduled = False
        self._inflight: set[asyncio.Task] = set()

    def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._tasks.append(
            loop.create_task(self._read_loop(), name=f"ctl-read:{self.label}")
        )
        self._tasks.append(
            loop.create_task(self._dispatch_loop(), name=f"ctl-disp:{self.label}")
        )

    async def _read_loop(self) -> None:
        try:
            while True:
                msg, _version = await read_frame(self.reader)
                frame = msg.payload if isinstance(msg.payload, dict) else {}
                for body in decode_batch(frame):
                    re = body.get("re")
                    if re is not None:
                        waiter = self._waiters.pop(re, None)
                        if waiter is not None and not waiter.done():
                            waiter.set_result(body)
                        continue
                    self._inbox.put_nowait(body)
        except (EOFError, FrameError, WireError, ConnectionError, OSError):
            pass
        finally:
            self._fail_waiters()
            self.closed.set()

    async def _dispatch_loop(self) -> None:
        # Pipelined: one task per inbound body, created in arrival
        # order.  See the module docstring for why FIFO effects and
        # FIFO lock acquisition survive this.
        loop = asyncio.get_running_loop()
        while True:
            body = await self._inbox.get()
            task = loop.create_task(self._dispatch_one(body))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _dispatch_one(self, body: dict) -> None:
        op = body.get("op", "")
        rid = body.get("rid")
        try:
            result = await self.handler(op, body)
        except asyncio.CancelledError:  # pragma: no cover
            raise
        except Exception as exc:
            result = {"error": f"{type(exc).__name__}: {exc}"}
        if rid is not None:
            try:
                self._write({"re": rid, **(result or {})})
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _write(self, body: dict) -> None:
        """Queue one body; bytes leave in the tick's batch flush."""
        if self.writer.is_closing():
            raise ConnectionError("control peer is closing")
        self._pending.append(body)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            try:
                asyncio.get_running_loop().call_soon(self._tick_flush)
            except RuntimeError:  # no loop: teardown path, flush now
                self._flush_scheduled = False
                self._flush()

    def _tick_flush(self) -> None:
        self._flush_scheduled = False
        try:
            self._flush()
        except (ConnectionError, OSError):
            pass  # link died under the buffer; the read loop notices

    def _flush(self) -> None:
        """Write everything queued this tick as one frame.

        One pending body goes out bare (the pre-batching wire form);
        several leave as a single ``batch`` frame — coalescing is an
        encoding detail the peer's read loop reverses, never a
        semantic one.
        """
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        if self.writer.is_closing():
            raise ConnectionError("control peer is closing")
        body = pending[0] if len(pending) == 1 else encode_batch(pending)
        msg = fast_message(MessageKind.CONTROL, ADMIN, ADMIN, "", body)
        self._encoder.add(msg, WIRE_VERSION)
        self._encoder.flush_to(self.writer)

    async def call(self, op: str, **fields: Any) -> dict:
        """One request/response round trip; raises on a dead link."""
        rid = next(self._rid)
        waiter = asyncio.get_running_loop().create_future()
        self._waiters[rid] = waiter
        try:
            # A call should not sit out the tick: flush immediately,
            # carrying any casts queued before it (FIFO preserved —
            # they ride ahead of the request in the same batch frame).
            self._write({"op": op, "rid": rid, **fields})
            self._flush()
        except (ConnectionError, OSError):
            self._waiters.pop(rid, None)
            raise ConnectionError(f"control link down ({self.label})") from None
        reply = await waiter
        if "error" in reply:
            raise RuntimeError(f"control {op!r} failed: {reply['error']}")
        return reply

    def cast(self, op: str, **fields: Any) -> None:
        """Fire-and-forget; silently dropped on a dead link (the peer
        is gone — its death is handled elsewhere)."""
        try:
            self._write({"op": op, **fields})
        except (ConnectionError, OSError):
            pass

    def _fail_waiters(self) -> None:
        for waiter in self._waiters.values():
            if not waiter.done():
                waiter.set_exception(
                    ConnectionError(f"control link closed ({self.label})")
                )
        self._waiters.clear()

    async def close(self) -> None:
        # Ship anything still queued for the tick flush first — a
        # shard endpoint's final ``client_sent`` cast must reach the
        # quiescence ledger or drain wedges waiting on it.  The
        # transport flushes its own buffer before closing, so a
        # successful _flush is on the wire.
        try:
            self._flush()
        except (ConnectionError, OSError):
            pass
        for task in (*self._tasks, *self._inflight):
            task.cancel()
        for task in (*self._tasks, *tuple(self._inflight)):
            try:
                await task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
        self._tasks.clear()
        self._inflight.clear()
        try:
            self.writer.close()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
        self.closed.set()
