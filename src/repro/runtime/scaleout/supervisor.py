"""The scale-out supervisor: boot, watch, and kill real OS processes.

`ScaleoutSupervisor` owns the process tree of a deployment: it binds
the bootstrap's listen socket, spawns one OS process per LessLog node
(``fork`` by default — copy-on-write makes a 256-node fleet cheap even
on a single-core host; ``subprocess`` re-execs the interpreter for a
fully isolated fleet), runs the :class:`BootstrapServer` in the parent,
and injects §5.3 crash churn with a literal ``kill -9``.

Lifecycle discipline:

* **launch() is synchronous and runs before any event loop exists** —
  forking with a live asyncio loop would duplicate its epoll state
  into every child.  Children close the inherited listen socket, ask
  the kernel for a SIGKILL when the parent dies (``PR_SET_PDEATHSIG``,
  best effort), run the worker coroutine on a fresh loop, and
  ``os._exit`` so no parent cleanup (atexit hooks, buffered writers)
  runs twice.
* **kill(pid)** resolves the node's OS pid from its ``hello``, sends
  ``SIGKILL``, reaps the zombie, and only then tells the bootstrap —
  the process is provably gone before the coordination plane flips the
  membership bit, so nothing the victim might still have written races
  the kill record.
* **shutdown()** SIGTERMs the remaining children, collects their
  ``goodbye`` snapshots (each worker drains its inbox first), reaps
  everyone, and closes the bootstrap.
"""

from __future__ import annotations

import asyncio
import ctypes
import os
import signal
import socket
import subprocess
import sys

from ...core.errors import ConfigurationError, MembershipError
from ..cluster import RuntimeConfig
from .bootstrap import BootstrapServer
from .worker import run_worker

__all__ = ["ScaleoutSupervisor"]

_PR_SET_PDEATHSIG = 1


def _die_with_parent() -> None:
    """Best effort: have the kernel SIGKILL us if the parent dies."""
    try:
        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        libc.prctl(_PR_SET_PDEATHSIG, signal.SIGKILL)
    except (OSError, AttributeError):  # pragma: no cover - non-glibc
        pass


class ScaleoutSupervisor:
    """One multi-process LessLog deployment, end to end."""

    def __init__(
        self,
        config: RuntimeConfig,
        n_nodes: int | None = None,
        mode: str = "fork",
    ) -> None:
        if mode not in ("fork", "subprocess"):
            raise ConfigurationError(
                f"mode must be 'fork' or 'subprocess', got {mode!r}"
            )
        self.mode = mode
        self.bootstrap = BootstrapServer(config, n_nodes)
        self.address: tuple[str, int] | None = None
        self._listen_sock: socket.socket | None = None
        self._children: list[int] = []
        """OS pids of forked children (fork mode)."""
        self._procs: list[subprocess.Popen] = []
        self._reaped: set[int] = set()

    # -- boot ----------------------------------------------------------------

    def launch(self) -> tuple[str, int]:
        """Bind the bootstrap socket and spawn the fleet.  Call this
        *before* any asyncio loop exists in the parent process."""
        if self._listen_sock is not None:
            raise ConfigurationError("the fleet is already launched")
        sock = socket.create_server(
            ("127.0.0.1", 0), backlog=max(512, self.bootstrap.expected * 2)
        )
        self._listen_sock = sock
        host, port = sock.getsockname()[:2]
        self.address = (host, port)
        for _ in range(self.bootstrap.expected):
            self._spawn(host, port)
        return (host, port)

    def _spawn(self, host: str, port: int) -> None:
        if self.mode == "subprocess":
            self._procs.append(
                subprocess.Popen(
                    [sys.executable, "-m", "repro", "worker",
                     "--bootstrap", f"{host}:{port}"],
                    env=os.environ.copy(),
                )
            )
            return
        child = os.fork()
        if child:
            self._children.append(child)
            return
        # Child: a fresh worker process sharing nothing but memory pages.
        status = 1
        try:
            _die_with_parent()
            assert self._listen_sock is not None
            self._listen_sock.close()
            run_worker(host, port)
            status = 0
        except KeyboardInterrupt:  # pragma: no cover
            status = 0
        except BaseException:  # pragma: no cover - crash visibly
            import traceback

            traceback.print_exc()
        finally:
            os._exit(status)

    @property
    def listen_socket(self) -> socket.socket | None:
        """The bootstrap's bound listen socket, while launched.  Forked
        shard-driver children must close their inherited copy so the
        address actually dies with this parent."""
        return self._listen_sock

    async def start(self, boot_timeout: float = 60.0) -> None:
        """Serve the bootstrap and wait until every worker registered."""
        await self.bootstrap.serve(sock=self._listen_sock)
        await asyncio.wait_for(self.bootstrap.ready.wait(), boot_timeout)

    # -- liveness / crash injection ------------------------------------------

    def alive(self) -> dict[int, bool]:
        """Liveness of every spawned OS process (``wait``-free poll)."""
        out: dict[int, bool] = {}
        for ospid in self._children:
            out[ospid] = self._poll_fork(ospid)
        for proc in self._procs:
            out[proc.pid] = proc.poll() is None
        return out

    def _poll_fork(self, ospid: int) -> bool:
        if ospid in self._reaped:
            return False
        try:
            done, _status = os.waitpid(ospid, os.WNOHANG)
        except ChildProcessError:  # pragma: no cover - reaped elsewhere
            self._reaped.add(ospid)
            return False
        if done:
            self._reaped.add(ospid)
            return False
        return True

    async def kill(self, pid: int) -> None:
        """``kill -9`` the worker serving node ``pid`` — no drain, no
        goodbye, no flush; then record the silent death (PR 8's crash
        semantics over a real process table)."""
        ospid = self.bootstrap.ospid_of(pid)
        if ospid <= 0:
            raise MembershipError(f"no OS process known for P({pid})")
        os.kill(ospid, signal.SIGKILL)
        self._reap(ospid)
        await self.bootstrap.note_killed(pid)

    def _reap(self, ospid: int) -> None:
        if ospid in self._reaped:
            return
        if self.mode == "subprocess":
            for proc in self._procs:
                if proc.pid == ospid:
                    proc.wait()
                    self._reaped.add(ospid)
                    return
        try:
            os.waitpid(ospid, 0)
        except ChildProcessError:  # pragma: no cover - already reaped
            pass
        self._reaped.add(ospid)

    # -- teardown ------------------------------------------------------------

    async def shutdown(self, term_timeout: float = 30.0) -> None:
        """SIGTERM the fleet, await the goodbyes, reap, close."""
        survivors = [
            pid for pid in sorted(self.bootstrap.worker_pids())
        ]
        for pid in survivors:
            ospid = self.bootstrap.ospid_of(pid)
            if ospid > 0 and ospid not in self._reaped:
                try:
                    os.kill(ospid, signal.SIGTERM)
                except ProcessLookupError:  # pragma: no cover
                    pass
        loop = asyncio.get_running_loop()
        deadline = loop.time() + term_timeout
        while (
            len(self.bootstrap.goodbyes) < len(survivors)
            and loop.time() < deadline
        ):
            await asyncio.sleep(0.01)
        for ospid in list(self._children) + [p.pid for p in self._procs]:
            if ospid not in self._reaped:
                self._reap(ospid)
        await self.bootstrap.shutdown()
        if self._listen_sock is not None:
            self._listen_sock.close()
            self._listen_sock = None
