"""Address resolution shared by every stream-dialing path.

The runtime reaches a node three ways — a `LiveCluster` peer/client
stream in socketpair mode, the same in TCP mode, and (scale-out) a
worker or client dialing a ``(host, port)`` entry from the bootstrap's
address book.  Before this module each path open-coded its own dial,
and the socketpair/TCP asymmetry lived inside
``LiveCluster.open_connection``.  Now every mode resolves through one
code path:

* an **address** — a ``(host, port)`` pair — dials the kernel's TCP
  stack;
* ``None`` with an ``attach`` callback builds an in-process
  ``socket.socketpair`` and hands the server end to the node, which is
  exactly what a TCP accept would have done.

``PeerUnreachableError`` lives here (re-exported by
``repro.runtime.cluster`` for compatibility) so the scale-out worker
can raise the same class a `LiveCluster` send does — `NodeServer`'s §3
FINDLIVENODE reaction keys on it.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Callable

__all__ = [
    "Address",
    "PeerUnreachableError",
    "dial_node",
    "dial_peer",
    "start_listener",
]

Address = tuple[str, int]
"""One address-book entry: ``(host, port)`` of a listening node."""


class PeerUnreachableError(ConnectionError):
    """The destination node is not accepting connections (dead/crashed)."""


async def dial_node(
    address: Address | None,
    attach: Callable[[asyncio.StreamReader, asyncio.StreamWriter], object]
    | None = None,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """A fresh client-side stream to one node, either transport mode.

    ``address`` dials TCP; ``None`` requires ``attach`` and builds the
    in-process socketpair equivalent, delivering the server end to the
    node the way its TCP listener would.
    """
    if address is not None:
        return await asyncio.open_connection(address[0], address[1])
    if attach is None:
        raise ValueError("socketpair mode needs an attach callback")
    ours, theirs = socket.socketpair()
    ours.setblocking(False)
    theirs.setblocking(False)
    server_reader, server_writer = await asyncio.open_connection(sock=theirs)
    attach(server_reader, server_writer)
    return await asyncio.open_connection(sock=ours)


async def dial_peer(
    address: Address | None, pid: int
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial a peer's published address, mapping failure to the §3 signal.

    A missing address-book entry or a refused/unroutable connect both
    mean the same thing to the sender — the peer is dead — so both
    surface as :class:`PeerUnreachableError`, the exception the
    FINDLIVENODE reroute path catches.
    """
    if address is None:
        raise PeerUnreachableError(f"P({pid}) has no published address")
    try:
        return await dial_node(address)
    except (ConnectionError, OSError) as exc:
        raise PeerUnreachableError(f"connection to P({pid}) failed: {exc}") from None


async def start_listener(
    attach: Callable[[asyncio.StreamReader, asyncio.StreamWriter], object],
    host: str = "127.0.0.1",
    port: int = 0,
) -> tuple[asyncio.base_events.Server, Address]:
    """Bind one node's listener; returns the server and its address.

    Shared by `LiveCluster._boot_node` (TCP mode) and the scale-out
    worker entrypoint, so both transports publish addresses the same
    shape.
    """
    server = await asyncio.start_server(lambda r, w: attach(r, w), host, port)
    sockname = server.sockets[0].getsockname()
    return server, (sockname[0], sockname[1])
