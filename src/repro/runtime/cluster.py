"""`LiveCluster`: boot and operate N `NodeServer`s as one deployment.

The cluster is two planes:

* **Data plane** — every file operation and membership fact crosses a
  real stream connection as a wire frame (`repro.runtime.wire`).  By
  default connections are in-process ``socket.socketpair`` streams; with
  ``RuntimeConfig(tcp=True)`` every node listens on a real TCP port on
  loopback and the exact same frames flow through the kernel's stack.
* **Coordination plane** — the cluster object itself plays the roles a
  deployment would delegate to a tracker: it owns the authoritative §5
  status word, the file catalog (name → target, version), and the
  churn orchestration that computes §5's migration plans.  The plans
  are *executed* purely as messages (TRANSFER / DEMOTE / REMOVE /
  REGISTER_*) — node stores only ever change when a frame arrives.
  This mirrors the DES driver's documented "oracle view" convention:
  policies and plans may read global state, data may not teleport.

Every placement-mutating decision is appended to ``oplog`` in decision
order; ``repro.runtime.conformance`` replays that log through the
synchronous ``LessLogSystem`` oracle and diffs final state.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from time import perf_counter
from typing import Any

from ..baselines.base import PlacementContext
from ..baselines.lesslog_policy import LessLogPolicy
from ..core.bits import check_id, check_width
from ..core.errors import ConfigurationError, MembershipError, NoLiveNodeError
from ..core.hashing import Psi
from ..core.subtree import SubtreeView, SvidLiveness, check_b, identity_tree, subtree_of_pid
from ..core.tree import LookupTree
from ..net.message import Message, MessageKind
from ..node.membership import StatusWord
from ..node.storage import FileOrigin
from .addressing import PeerUnreachableError, dial_node, start_listener
from .node import CLIENT, NodeServer, subtree_children
from .overload import OverloadPolicy
from .wire import (
    MAX_FRAME,
    MAX_WIRE_VERSION,
    WIRE_VERSION,
    FrameEncoder,
    WireError,
)

__all__ = [
    "ADMIN",
    "RuntimeConfig",
    "PeerUnreachableError",
    "OpRecord",
    "LiveCluster",
]

ADMIN = -2
"""``src`` of coordination-plane messages (the cluster orchestrator)."""


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs for a live cluster."""

    m: int
    b: int = 0
    seed: int = 0
    tcp: bool = False
    capacity: float = float("inf")
    """Served requests/second beyond which a node is overloaded
    (``inf`` disables rate-triggered replication — the conformance
    default, so sequential replays stay deterministic)."""
    window: float = 1.0
    check_interval: float = 0.02
    cooldown: float = 0.1
    inflight_limit: int = 10**9
    """Inbox depth at which the in-flight window counts as saturated."""
    service_time: float = 0.0
    """Simulated per-GET service latency (seconds); lets small bursts
    actually queue so the load monitor has something to measure."""
    max_frame: int = MAX_FRAME
    drain_timeout: float = 30.0
    wire_version: int = MAX_WIRE_VERSION
    """Codec ceiling for every node and client: 2 = binary fast path
    (the default), 1 = the JSON-v1 compat profile.  Per-connection
    negotiation picks ``min(sender, receiver)``."""
    v1_pids: tuple[int, ...] = ()
    """PIDs pinned to the JSON-v1 codec (mixed-version cluster tests)."""
    fixed_frames: bool = True
    """Emit struct-packed fixed-layout bodies (GET/ACK/GET_REPLY) on v2
    connections; ``False`` pins every v2 frame to the generic tagged
    body (the pre-fast-lane interop profile)."""
    batch_max: int = 16
    """Messages a node's inbox consumer drains per scheduling tick."""
    coalesce_bytes: int = 0
    """Frame-coalescing watermark for peer streams, in bytes; ``0``
    disables coalescing (every frame written immediately)."""
    coalesce_delay: float = 0.001
    """Latency budget (seconds) before a partial coalescing buffer is
    flushed regardless of size."""
    tick_coalesce: bool = True
    """Defer frame flushes to the end of the current event-loop
    iteration (one ``call_soon`` per stream per tick): every frame
    produced in the same tick leaves in a single vectored write — one
    syscall instead of one per frame — at zero added latency, because
    the callback runs before the loop goes back to sleep.  ``False``
    restores the write-per-frame profile."""
    idle_timeout: float = float("inf")
    """Counter-based removal: a REPLICATED copy whose access counter
    sits still this long is REMOVEd (``inf`` disables decay)."""
    inbox_limit: int = 0
    """Bounded-inbox admission control: the most queued data GETs a
    node accepts before the shed/queue/victim policy evicts one and
    answers OVERLOAD (``0`` disables admission control — the default,
    so existing profiles are untouched)."""
    shed_policy: str = "conservative"
    """How much to evict when the bound trips: ``conservative`` sheds
    the minimum, ``aggressive`` clears backlog to half the limit."""
    queue_policy: str = "fcfs"
    """``fcfs`` treats queued requests equally; ``priority`` protects
    peer-forwarded requests and sheds fresh client entries first."""
    victim_policy: str = "lifo"
    """Which candidate is evicted: ``lifo`` (newest), ``fifo``
    (oldest / drop-head), or ``random`` (seeded)."""
    slo_budget: float = float("inf")
    """SLO-aware replication: replicate away load when a node's
    windowed response-latency p99 drifts past this budget (seconds),
    not just when the raw hit counter trips (``inf`` disables)."""

    def __post_init__(self) -> None:
        check_width(self.m)
        check_b(self.b, self.m)
        if self.capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.service_time < 0:
            raise ConfigurationError("service_time must be non-negative")
        if self.inflight_limit < 1:
            raise ConfigurationError("inflight_limit must be at least 1")
        if not WIRE_VERSION <= self.wire_version <= MAX_WIRE_VERSION:
            raise ConfigurationError(
                f"wire_version must be in [{WIRE_VERSION}, {MAX_WIRE_VERSION}]"
            )
        for pid in self.v1_pids:
            check_id(pid, self.m)
        if self.batch_max < 1:
            raise ConfigurationError("batch_max must be at least 1")
        if self.coalesce_bytes < 0:
            raise ConfigurationError("coalesce_bytes must be non-negative")
        if self.coalesce_delay <= 0:
            raise ConfigurationError("coalesce_delay must be positive")
        if self.idle_timeout <= 0:
            raise ConfigurationError("idle_timeout must be positive")
        if self.inbox_limit < 0:
            raise ConfigurationError("inbox_limit must be non-negative")
        if self.slo_budget <= 0:
            raise ConfigurationError("slo_budget must be positive")
        try:
            self.overload_policy()
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from None

    def overload_policy(self) -> OverloadPolicy:
        """The validated shed × queue × victim cell this config names."""
        return OverloadPolicy(
            shed=self.shed_policy,
            queue=self.queue_policy,
            victim=self.victim_policy,
        )


@dataclass(frozen=True)
class OpRecord:
    """One placement-mutating decision, in cluster decision order."""

    kind: str
    """insert | update | replicate | remove | join | leave | crash, plus
    the split churn halves: ``kill``/``recover`` (crash effect vs
    detection+recovery), ``arrive``/``settle`` (join registration vs
    migration), ``depart``/``reinsert`` (leave effect vs re-homing).
    Halves are appended when their *effects* land, so replication
    decisions taken mid-churn interleave between them in true decision
    order — the order the conformance replay needs."""
    name: str = ""
    payload: Any = None
    pid: int = -1
    version: int = 0
    seed: int = 0
    target: int | None = None
    rates: dict[int, float] | None = None
    """Replicate only: the deciding holder's observed forwarder rates —
    replayed verbatim so the oracle's max-traffic-child choice matches."""


@dataclass
class _CatalogEntry:
    name: str
    target: int
    version: int


_SINK_HIGH_WATER = 1 << 16
"""Transport buffer level above which a sink's writer is awaited."""


class _FrameSink:
    """One peer stream, coalescing frames per tick or Nagle-style.

    Frames are encoded straight into the sink's reusable
    :class:`~repro.runtime.wire.FrameEncoder` buffer — no per-frame
    ``bytes`` object exists — and leave through one vectored
    ``writelines`` per flush.  Three flush policies:

    * ``tick=True`` (the fast lane): the first frame of an event-loop
      iteration schedules one ``call_soon`` flush; every frame the
      sender produces before the loop goes back to sleep rides the
      same syscall, at zero added latency.
    * ``max_bytes > 0``: Nagle-style — flush at the byte watermark or
      after ``delay`` seconds, whichever first.
    * otherwise: flush on every ``add``.

    In-flight accounting happens at :meth:`LiveCluster.send` time
    (before buffering), so a buffered frame still holds the cluster
    un-quiet until it lands.
    """

    __slots__ = ("writer", "encoder", "max_bytes", "delay", "tick",
                 "_timer", "_scheduled")

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        max_bytes: int,
        delay: float,
        fixed: bool = True,
        tick: bool = False,
    ) -> None:
        self.writer = writer
        self.encoder = FrameEncoder(fixed=fixed)
        self.max_bytes = max_bytes
        self.delay = delay
        self.tick = tick
        self._timer: asyncio.TimerHandle | None = None
        self._scheduled = False

    def add(self, msg: Message, version: int) -> None:
        """Encode one frame into the sink buffer (no flush).

        Raises :class:`WireError` on an unencodable message (the
        buffer is rolled back, the sink stays usable) and
        ``ConnectionError`` on a stream the peer already closed.
        Callers follow up with :meth:`poke` — encoding and the flush
        policy are split so the bench's ``encode`` stage never absorbs
        a write syscall.
        """
        if self.writer.is_closing():
            raise ConnectionError("peer stream is closing")
        self.encoder.add(msg, version)

    def poke(self) -> None:
        """Apply the flush policy to whatever :meth:`add` buffered.

        Propagates ``ConnectionError``/``OSError`` from an immediate
        flush.
        """
        if self.tick:
            if self.encoder.pending_bytes >= _SINK_HIGH_WATER:
                self.flush()
            elif not self._scheduled:
                self._scheduled = True
                asyncio.get_running_loop().call_soon(self._flush_soon)
        elif self.max_bytes <= 0 or self.encoder.pending_bytes >= self.max_bytes:
            self.flush()
        elif self._timer is None:
            self._timer = asyncio.get_running_loop().call_later(
                self.delay, self._flush_timer
            )

    def flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self.encoder.pending:
            self.encoder.flush_to(self.writer)

    def _flush_soon(self) -> None:
        self._scheduled = False
        self._flush_timer()

    def _flush_timer(self) -> None:
        self._timer = None
        if not self.encoder.pending:
            return
        try:
            self.encoder.flush_to(self.writer)
        except (ConnectionError, OSError):  # pragma: no cover - peer died
            self.encoder.reset()

    async def drain_if_needed(self) -> None:
        transport = self.writer.transport
        if (
            transport is not None
            and transport.get_write_buffer_size() > _SINK_HIGH_WATER
        ):
            await self.writer.drain()

    def close(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.encoder.reset()
        try:
            self.writer.close()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


class LiveCluster:
    """N live LessLog nodes over streams, plus the coordination plane."""

    pushes_replicas = False
    """Whether the coordination plane delivers REPLICATE frames itself.

    ``False`` here: after :meth:`decide_replication` picks a target the
    deciding `NodeServer` pushes its own copy, as §2.2 describes.  The
    scale-out worker facade sets ``True`` — the bootstrap pushes the
    frame in the same step that appends the oplog record, so a
    ``kill -9`` can never land between the record and the copy."""

    def __init__(self, config: RuntimeConfig, live: set[int] | None = None) -> None:
        self.config = config
        total = 1 << config.m
        pids = set(live) if live is not None else set(range(total))
        if not pids:
            raise ConfigurationError("a cluster needs at least one live node")
        for pid in pids:
            check_id(pid, config.m)
        self.psi = Psi(config.m)
        self.policy = LessLogPolicy()
        self.word = StatusWord(config.m, pids)
        self.nodes: dict[int, NodeServer] = {}
        self.catalog: dict[str, _CatalogEntry] = {}
        self.faults: list[str] = []
        self.oplog: list[OpRecord] = []
        self.replication_enabled = True
        self.counters: dict[str, int] = {}
        self.initial_live: tuple[int, ...] = tuple(sorted(pids))
        self.stage_seconds: dict[str, float] = {
            "encode": 0.0, "decode": 0.0, "route": 0.0, "serve": 0.0,
        }
        self._pending_holders: dict[str, set[int]] = {}
        self._pending_removals: dict[str, set[int]] = {}
        self._silent_deaths: set[int] = set()
        self._crash_loads: dict[int, dict[str, float]] = {}
        self._psi_cache: dict[str, int] = {}
        self._trees: dict[int, LookupTree] = {}
        self._auth_ctx: dict[
            tuple[int, int], tuple[SubtreeView, LookupTree, SvidLiveness]
        ] = {}
        self._inflight_to: dict[int, int] = {}
        self._peer_conns: dict[tuple[int, int], _FrameSink] = {}
        self._servers: dict[int, asyncio.base_events.Server] = {}
        self.addresses: dict[int, tuple[str, int]] = {}
        self._started = False

    # -- boot / teardown ----------------------------------------------------

    @classmethod
    async def start(
        cls, config: RuntimeConfig, live: set[int] | None = None
    ) -> "LiveCluster":
        cluster = cls(config, live)
        for pid in sorted(cluster.word.live_pids()):
            await cluster._boot_node(pid)
        cluster._started = True
        return cluster

    async def _boot_node(self, pid: int) -> None:
        node = NodeServer(pid, self)
        self.nodes[pid] = node
        node.start()
        if self.config.tcp:
            server, address = await start_listener(node.attach)
            self._servers[pid] = server
            self.addresses[pid] = address

    async def shutdown(self) -> None:
        """Stop every node and close every connection and listener."""
        for sink in self._peer_conns.values():
            sink.close()
        self._peer_conns.clear()
        for server in self._servers.values():
            server.close()
            await server.wait_closed()
        self._servers.clear()
        for node in list(self.nodes.values()):
            await node.shutdown()
        self.nodes.clear()

    # -- connections --------------------------------------------------------

    async def open_connection(
        self, pid: int
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """A fresh stream to ``P(pid)`` (client side of the pair)."""
        node = self.nodes.get(pid)
        if node is None:
            raise PeerUnreachableError(f"P({pid}) is not serving")
        address = self.addresses.get(pid) if self.config.tcp else None
        return await dial_node(address, attach=node.attach)

    def wire_version_of(self, pid: int) -> int:
        """Codec ceiling of one endpoint (clients use the config's)."""
        if pid in self.config.v1_pids:
            return WIRE_VERSION
        return self.config.wire_version

    def wire_version_for(self, src: int, dst: int) -> int:
        """Negotiated codec for a ``src -> dst`` stream: the min of the
        two ceilings, so a v1 node never receives a binary frame."""
        sender = self.wire_version_of(src) if src >= 0 else self.config.wire_version
        return min(sender, self.wire_version_of(dst))

    async def send(self, src: int, msg: Message) -> None:
        """Deliver one frame from ``src`` (a PID or ``ADMIN``) to ``msg.dst``.

        Raises :class:`PeerUnreachableError` when the destination is
        not serving — the moment a sender discovers a §3 dead node.
        """
        dst = msg.dst
        node = self.nodes.get(dst)
        if node is None:
            raise PeerUnreachableError(f"P({dst}) is not serving")
        if dst == src:
            node.deliver_local(msg)
            return
        sink = self._peer_conns.get((src, dst))
        if sink is None:
            _reader, writer = await self.open_connection(dst)
            sink = _FrameSink(
                writer, self.config.coalesce_bytes, self.config.coalesce_delay,
                fixed=self.config.fixed_frames,
                tick=self.config.tick_coalesce,
            )
            self._peer_conns[(src, dst)] = sink
        version = self.wire_version_for(src, dst)
        self._inflight_to[dst] = self._inflight_to.get(dst, 0) + 1
        try:
            t0 = perf_counter()
            try:
                sink.add(msg, version)
            finally:
                self.stage_seconds["encode"] += perf_counter() - t0
            sink.poke()
            await sink.drain_if_needed()
        except WireError:
            self._inflight_to[dst] = max(0, self._inflight_to.get(dst, 0) - 1)
            raise
        except (ConnectionError, OSError):
            self._inflight_to[dst] = max(0, self._inflight_to.get(dst, 0) - 1)
            self._peer_conns.pop((src, dst), None)
            sink.close()
            raise PeerUnreachableError(f"connection to P({dst}) failed") from None

    def count_client_send(self, pid: int) -> None:
        """In-process clients account their sends so drain() sees them.

        A send addressed to a retired node is never enqueued, so
        counting it would leave ``_inflight_to`` stuck above zero and
        ``drain()`` blocked until its timeout — under mid-burst churn a
        client can race the retirement, so the count is gated on the
        node still serving.
        """
        if pid in self.nodes:
            self._inflight_to[pid] = self._inflight_to.get(pid, 0) + 1

    def msg_enqueued(self, pid: int, src: int = CLIENT) -> None:
        """A frame landed in ``P(pid)``'s inbox (accounting settles).

        ``src`` is the sender the frame named — unused here (one shared
        loop sees both ends), but the scale-out worker counts receipts
        per source so quiescence survives a sender that is ``kill -9``ed
        along with its send counters.
        """
        self._inflight_to[pid] = max(0, self._inflight_to.get(pid, 0) - 1)

    # -- quiescence ---------------------------------------------------------

    def _quiet(self) -> bool:
        if any(count > 0 for count in self._inflight_to.values()):
            return False
        return not any(node.active for node in self.nodes.values())

    async def drain(self) -> None:
        """Wait until no message is in flight, queued, or being handled.

        Sender-side accounting (``_inflight_to``) covers the window
        between a write and the receiver's enqueue; inbox depth and the
        per-node busy flag cover the rest.  Requires several
        consecutive quiet checks so a handler that is about to fan out
        cannot slip through.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        quiet = 0
        while quiet < 3:
            if loop.time() > deadline:
                raise TimeoutError(
                    f"cluster did not drain within {self.config.drain_timeout}s"
                )
            if self._quiet():
                quiet += 1
                await asyncio.sleep(0)
            else:
                quiet = 0
                await asyncio.sleep(0.001)

    async def quiesce(self) -> None:
        """Disable autonomous replication, then drain: a stable snapshot."""
        self.replication_enabled = False
        await self.drain()

    # -- small helpers ------------------------------------------------------

    def tree(self, r: int) -> LookupTree:
        tree = self._trees.get(r)
        if tree is None:
            tree = LookupTree(r, self.config.m)
            self._trees[r] = tree
        return tree

    def psi_of(self, name: str) -> int:
        """Memoized ψ(name): the hash is pure, so cache per file name."""
        r = self._psi_cache.get(name)
        if r is None:
            r = self.psi(name)
            self._psi_cache[name] = r
        return r

    def count(self, name: str) -> None:
        self.counters[name] = self.counters.get(name, 0) + 1

    def note_decode_error(self, pid: int) -> None:
        self.count("wire_decode_errors")

    def note_handler_error(self, pid: int) -> None:
        self.count("handler_errors")

    @property
    def n_live(self) -> int:
        return self.word.live_count()

    # -- oracle views (coordination plane; documented, like the DES's) ------

    def holders(self, name: str, include_pending: bool = False) -> set[int]:
        """Live PIDs holding a copy; optionally plus in-flight replicas.

        ``include_pending`` folds in replica pushes that have been
        decided but whose REPLICATE frame has not landed yet, so
        concurrent placement decisions see each other in decision
        order — the order the conformance replay uses.
        """
        held = {pid for pid, node in self.nodes.items() if name in node.store}
        if include_pending:
            # A pending replica target that died before its REPLICATE
            # frame landed is no holder: the copy will never exist, and
            # the oracle's kill record already popped its store.
            held |= {
                p for p in self._pending_holders.get(name, set())
                if p in self.nodes
            }
            held -= self._pending_removals.get(name, set())
        return held

    def note_pending_holder(self, name: str, pid: int) -> None:
        self._pending_holders.setdefault(name, set()).add(pid)

    def resolve_pending_holder(self, name: str, pid: int) -> None:
        pending = self._pending_holders.get(name)
        if pending is not None:
            pending.discard(pid)
            if not pending:
                del self._pending_holders[name]

    def record_removal(self, name: str, pid: int) -> None:
        """Log a counter-based removal decision, in decision order.

        Also marks the holder as pending-removed so placement decisions
        made before the REMOVE frame lands already exclude it — the
        order the conformance replay observes.
        """
        self.oplog.append(OpRecord(kind="remove", name=name, pid=pid))
        self._pending_removals.setdefault(name, set()).add(pid)

    def resolve_pending_removal(self, name: str, pid: int) -> None:
        pending = self._pending_removals.get(name)
        if pending is not None:
            pending.discard(pid)
            if not pending:
                del self._pending_removals[name]

    async def gc_after_removal(self, name: str) -> list[int]:
        """Single-file orphan GC after an idle-decay removal landed.

        Mirrors what ``LessLogSystem.remove_replica`` does after
        discarding the copy: any REPLICATED holder the top-down update
        broadcast can no longer reach is removed too, so the live
        placement tracks the oracle's.
        """
        if name in self.faults or name not in self.catalog:
            return []
        holders = self.holders(name)
        if not holders:
            return []
        reachable = self._reachable_holders(name)
        removed: list[int] = []
        for pid in sorted(holders - reachable):
            copy = self.nodes[pid].store.get(name, count_access=False)
            if copy.origin is FileOrigin.REPLICATED:
                try:
                    await self.send(
                        ADMIN,
                        Message(kind=MessageKind.REMOVE, src=ADMIN, dst=pid,
                                file=name),
                    )
                except PeerUnreachableError:  # pragma: no cover - racing death
                    continue
                removed.append(pid)
        return removed

    def placement(self) -> dict[str, dict[int, str]]:
        """Snapshot: file → {holder PID → origin} over live stores."""
        out: dict[str, dict[int, str]] = {}
        for name in self.catalog:
            out[name] = {
                pid: node.store.get(name, count_access=False).origin.value
                for pid, node in sorted(self.nodes.items())
                if name in node.store
            }
        return out

    def version_map(self) -> dict[str, int]:
        return {name: entry.version for name, entry in self.catalog.items()}

    def served_counts(self) -> dict[int, int]:
        return {pid: node.served_total for pid, node in sorted(self.nodes.items())}

    def replicas_created(self) -> int:
        return sum(
            1 for rec in self.oplog
            if rec.kind == "replicate" and rec.target is not None
        )

    # -- catalog (coordination plane) ---------------------------------------

    def catalog_available(self, name: str) -> bool:
        return name not in self.catalog

    def catalog_register(self, name: str, target: int, payload: Any) -> None:
        self.catalog[name] = _CatalogEntry(name=name, target=target, version=1)
        self.oplog.append(OpRecord(kind="insert", name=name, payload=payload))

    def catalog_bump(self, name: str, payload: Any) -> int | None:
        entry = self.catalog.get(name)
        if entry is None:
            return None
        entry.version += 1
        self.oplog.append(
            OpRecord(kind="update", name=name, payload=payload, version=entry.version)
        )
        return entry.version

    def record_replication(
        self,
        name: str,
        holder: int,
        seed: int,
        target: int | None,
        rates: dict[int, float] | None = None,
    ) -> None:
        self.oplog.append(
            OpRecord(
                kind="replicate", name=name, pid=holder, seed=seed,
                target=target, rates=rates,
            )
        )

    # -- async coordination interface (what a NodeServer talks to) ----------
    #
    # `NodeServer` reaches its coordination plane only through these
    # awaitables plus a handful of sync notifications, so the same node
    # code runs against this in-process cluster object *or* the
    # scale-out worker facade, where each call is an RPC to the
    # bootstrap process.  In-process they resolve without yielding —
    # behavior (and interleaving) is unchanged.

    async def catalog_check(self, name: str) -> bool:
        """Is ``name`` still available for insertion?  (Advisory: the
        authoritative answer is :meth:`catalog_claim`.)"""
        return self.catalog_available(name)

    async def catalog_claim(self, name: str, target: int, payload: Any) -> bool:
        """Atomically register ``name`` (the insert record lands here).

        ``False`` when another entry node won the race since the
        :meth:`catalog_check` — the caller answers "already inserted".
        """
        if not self.catalog_available(name):
            return False
        self.catalog_register(name, target, payload)
        return True

    async def catalog_advance(self, name: str, payload: Any) -> int | None:
        """Assign the next version for an UPDATE (None: not inserted)."""
        return self.catalog_bump(name, payload)

    def _auth_subtree_ctx(
        self, tree: LookupTree, sid: int
    ) -> tuple[SubtreeView, LookupTree, SvidLiveness]:
        """Memoized §4 identity reduction over the authoritative word.

        Placement decisions are coordination-plane reads (the
        documented oracle-view convention — :meth:`holders` already is
        one), and the conformance replay re-runs each replicate record
        against oracle membership at that oplog position.  Under
        mid-burst churn a node's own word can lag a death or an arrival
        by a frame; deciding against the authoritative word keeps the
        decision replayable.  Routing (§3/§4 forwarding) keeps using
        the node's own word — that *is* the data plane.
        """
        key = (tree.root, sid)
        ctx = self._auth_ctx.get(key)
        if ctx is None:
            view = SubtreeView(tree, self.config.b, sid)
            ctx = (view, identity_tree(view), SvidLiveness(view, self.word))
            self._auth_ctx[key] = ctx
        return ctx

    async def decide_replication(
        self, name: str, holder: int, seed: int, rates: dict[int, float]
    ) -> int | None:
        """One placement decision for an overloaded ``holder``.

        The same computation as ``LessLogSystem.replicate``: reduce to
        the holder's subtree, run the policy over the live view and the
        holder set (pending replicas included, so concurrent decisions
        see each other in decision order), and record the outcome —
        including a ``None`` outcome — with the rng seed and the
        holder's observed forwarder rates, so the conformance replay
        re-runs it through the synchronous oracle verbatim.
        """
        tree = self.tree(self.psi_of(name))
        sid = subtree_of_pid(tree, holder, self.config.b)
        view, itree, sliveness = self._auth_subtree_ctx(tree, sid)
        holders = self.holders(name, include_pending=True)
        holders_svid = {
            view.svid_of(pid) for pid in holders if view.contains(pid)
        }
        rates_svid = {
            (view.svid_of(src) if src >= 0 and view.contains(src) else -1): rate
            for src, rate in rates.items()
        }
        context = PlacementContext(
            rng=random.Random(seed), forwarder_rates=rates_svid
        )
        target_svid = self.policy.choose(
            itree, view.svid_of(holder), sliveness, holders_svid, context
        )
        target = None if target_svid is None else view.pid_of_svid(target_svid)
        self.record_replication(name, holder, seed, target, rates)
        if target is not None:
            self.note_pending_holder(name, target)
        return target

    async def trigger_overload(self, pid: int, name: str, seed: int) -> None:
        """Admin knob: tell a holder it is overloaded (conformance driver)."""
        await self.send(
            ADMIN,
            Message(
                kind=MessageKind.OVERLOAD, src=ADMIN, dst=pid, file=name,
                payload={"seed": seed},
            ),
        )

    # -- membership (§5) ----------------------------------------------------

    async def _broadcast_register(self, kind: MessageKind, pid: int) -> None:
        for other in sorted(self.nodes):
            if other == pid:
                continue
            await self.send(
                ADMIN,
                Message(kind=kind, src=ADMIN, dst=other, payload={"pid": pid}),
            )
        await self.drain()

    async def join(self, pid: int) -> list[str]:
        """§5.1: boot ``P(pid)``, register it, migrate its files to it."""
        check_id(pid, self.config.m)
        if self.word.is_live(pid):
            raise MembershipError(f"P({pid}) is already live")
        if pid in self._silent_deaths:
            # No resurrection before the coroner files: the pending
            # autopsy (announce, §5.3 recovery, the closing ``recover``
            # oplog record) must land first, or the rejoin would leave
            # the victim's lost files unrecovered and the oracle replay
            # would see a live node being recovered from.
            await self.announce_crash(pid)
        self.word.register_live(pid)
        # The arrival record lands with the membership flip, so
        # replication decisions taken while the migration plan is still
        # pending replay against a word that already knows the newcomer.
        self.oplog.append(OpRecord(kind="arrive", pid=pid))
        await self._boot_node(pid)
        await self._broadcast_register(MessageKind.REGISTER_LIVE, pid)
        migrated: list[str] = []
        was_replicating = self.replication_enabled
        self.replication_enabled = False
        try:
            for name, entry in self.catalog.items():
                if name in self.faults:
                    continue
                tree = self.tree(entry.target)
                sid = subtree_of_pid(tree, pid, self.config.b)
                view = SubtreeView(tree, self.config.b, sid)
                new_home = view.storage_node(self.word)
                if new_home != pid:
                    continue  # this file's placement was unaffected by the absence
                old_home = self._inserted_holder(view, name, exclude=pid)
                if old_home is not None:
                    copy = self.nodes[old_home].store.get(name, count_access=False)
                    await self._transfer(pid, name, copy.payload, copy.version)
                    # The previous home keeps serving as a plain replica.
                    await self.send(
                        ADMIN,
                        Message(kind=MessageKind.DEMOTE, src=ADMIN, dst=old_home,
                                file=name),
                    )
                    migrated.append(name)
                    continue
                donor = self._any_holder(name)
                if donor is None:
                    if name not in self.faults:
                        self.faults.append(name)
                    continue
                copy = self.nodes[donor].store.get(name, count_access=False)
                await self._transfer(pid, name, copy.payload, copy.version)
                migrated.append(name)
            await self.drain()
            await self._gc_orphans()
        finally:
            self.replication_enabled = was_replicating
        self.oplog.append(OpRecord(kind="settle", pid=pid))
        return migrated

    async def leave(self, pid: int) -> list[str]:
        """§5.2: ``P(pid)`` leaves; its inserted files are re-inserted."""
        if not self.word.is_live(pid) or pid not in self.nodes:
            raise MembershipError(f"P({pid}) is not live")
        node = self.nodes[pid]
        inserted = [
            (copy.name, copy.payload, copy.version)
            for copy in node.store.inserted_files()
        ]
        self.oplog.append(OpRecord(kind="depart", pid=pid))
        await self._retire_node(pid)
        await self._broadcast_register(MessageKind.REGISTER_DEAD, pid)
        moved: list[str] = []
        was_replicating = self.replication_enabled
        self.replication_enabled = False
        try:
            for name, payload, version in inserted:
                entry = self.catalog.get(name)
                if entry is None:  # pragma: no cover - defensive
                    continue
                tree = self.tree(entry.target)
                sid = subtree_of_pid(tree, pid, self.config.b)
                view = SubtreeView(tree, self.config.b, sid)
                try:
                    new_home = view.storage_node(self.word)
                except NoLiveNodeError:
                    if not self.holders(name):
                        self.faults.append(name)
                    continue
                await self._transfer(new_home, name, payload, version)
                moved.append(name)
            await self.drain()
            await self._gc_orphans()
        finally:
            self.replication_enabled = was_replicating
        self.oplog.append(OpRecord(kind="reinsert", pid=pid))
        return moved

    async def crash(self, pid: int, announce: bool = True) -> list[str]:
        """§5.3: ``P(pid)`` dies; storage lost; recover homes from donors.

        ``announce=False`` models an *undetected* failure: the node
        stops serving but no REGISTER_DEAD circulates and no recovery
        runs — peers discover the death through failed sends, the
        message-level ``FINDLIVENODE`` (used by the reroute tests).
        :meth:`announce_crash` runs the deferred detection + recovery
        later (the autopsy), which the churn harness calls post-burst
        so per-node words reconcile before a conformance diff.
        """
        if not self.word.is_live(pid) or pid not in self.nodes:
            raise MembershipError(f"P({pid}) is not live")
        # Capture what the victim was serving: §5.3 recovery hands each
        # file's observed rate to its heir so the overload plane reacts
        # to the inherited demand instead of rediscovering it a window
        # later.
        victim = self.nodes[pid]
        now = asyncio.get_running_loop().time()
        loads = {
            name: rate
            for name in victim.store.names()
            if (rate := victim.monitor.file_rate(name, now)) > 0.0
        }
        if loads:
            self._crash_loads[pid] = loads
        # The kill record lands with the retirement, so replication
        # decisions taken between death and detection replay against a
        # word that already lost the victim.
        self.oplog.append(OpRecord(kind="kill", pid=pid))
        await self._retire_node(pid)
        if not announce:
            self._silent_deaths.add(pid)
            return []
        return await self._announce_crash_effects(pid)

    async def announce_crash(self, pid: int) -> list[str]:
        """The autopsy: deferred §5.3 detection for a silent crash.

        Models the failure detector eventually catching up with a
        ``crash(announce=False)``: REGISTER_DEAD circulates, recovery
        re-homes the victim's files, and the ``recover`` record lands —
        after which every per-node word agrees with the authoritative
        one again and a conformance diff is meaningful.
        """
        if pid not in self._silent_deaths:
            raise MembershipError(f"P({pid}) has no unannounced crash")
        self._silent_deaths.discard(pid)
        return await self._announce_crash_effects(pid)

    async def _announce_crash_effects(self, pid: int) -> list[str]:
        """REGISTER_DEAD broadcast + §5.3 recovery for a retired node."""
        await self._broadcast_register(MessageKind.REGISTER_DEAD, pid)
        recovered: list[str] = []
        was_replicating = self.replication_enabled
        self.replication_enabled = False
        try:
            for name, entry in self.catalog.items():
                if name in self.faults:
                    continue
                tree = self.tree(entry.target)
                sid = subtree_of_pid(tree, pid, self.config.b)
                view = SubtreeView(tree, self.config.b, sid)
                try:
                    new_home = view.storage_node(self.word)
                except NoLiveNodeError:
                    if not self.holders(name):
                        self.faults.append(name)
                    continue
                if self._inserted_holder(view, name) is not None:
                    continue  # the crashed node was not this subtree's home
                donor = self._any_holder(name)
                if donor is None:
                    self.faults.append(name)
                    continue
                copy = self.nodes[donor].store.get(name, count_access=False)
                await self._transfer(new_home, name, copy.payload, copy.version)
                recovered.append(name)
            await self.drain()
            await self._gc_orphans()
        finally:
            self.replication_enabled = was_replicating
        self.oplog.append(OpRecord(kind="recover", pid=pid))
        self._attribute_inherited_load(pid)
        return recovered

    def _attribute_inherited_load(self, pid: int) -> None:
        """Hand the crashed node's observed per-file rates to the heirs.

        Runtime-only accounting (never oplogged): each file the victim
        was serving seeds its surviving holder's load monitor — the
        INSERTED holder when one exists, else the first replica — so
        the SLO-aware replication trigger sees the demand about to
        shift there.
        """
        loads = self._crash_loads.pop(pid, None)
        if not loads:
            return
        for name in sorted(loads):
            heir = self._any_holder(name)
            if heir is None:
                continue
            node = self.nodes.get(heir)
            if node is not None:
                node.inherit_load(name, loads[name])

    async def _retire_node(self, pid: int) -> None:
        """Take a node off the wire: no new frames can reach it."""
        node = self.nodes.pop(pid)
        self.word.register_dead(pid)
        self._inflight_to[pid] = 0
        server = self._servers.pop(pid, None)
        if server is not None:
            server.close()
            await server.wait_closed()
        for key in [k for k in self._peer_conns if pid in k]:
            sink = self._peer_conns.pop(key)
            src, dst = key
            if src == pid and dst != pid:
                # A crashing sender loses its socket buffer: frames
                # still coalescing in the sink were counted in-flight
                # at ``send()`` but will never reach ``dst`` — reverse
                # the accounting or ``drain()`` waits on them forever.
                lost = sink.encoder.pending
                if lost:
                    self._inflight_to[dst] = max(
                        0, self._inflight_to.get(dst, 0) - lost
                    )
            sink.close()
        # Bounce the GETs stranded in the victim's queues back to their
        # origin entries: each re-forwards, and the failed send to the
        # now-dead node is its FINDLIVENODE moment (§3) — the request
        # reroutes instead of stranding its client until timeout.
        for msg in node.drain_lost_gets():
            origin = msg.origin
            if origin != pid and origin in self.nodes:
                self.nodes[origin].deliver_local(msg)
        await node.shutdown()

    async def _transfer(self, dst: int, name: str, payload: Any, version: int) -> None:
        await self.send(
            ADMIN,
            Message(
                kind=MessageKind.TRANSFER, src=ADMIN, dst=dst, file=name,
                payload={"payload": payload}, version=version,
            ),
        )

    # -- orphan GC (mirrors repro.cluster.churn.gc_orphan_replicas) ---------

    def _reachable_holders(self, name: str) -> set[int]:
        """Holders the top-down update broadcast can reach right now."""
        entry = self.catalog.get(name)
        if entry is None:
            return set()
        tree = self.tree(entry.target)
        reached: set[int] = set()
        for sid in range(1 << self.config.b):
            view = SubtreeView(tree, self.config.b, sid)

            def visit(pid: int) -> None:
                if not self.word.is_live(pid):  # pragma: no cover - defensive
                    return
                node = self.nodes.get(pid)
                if node is None or name not in node.store:
                    return
                reached.add(pid)
                for child in subtree_children(view, pid, self.word):
                    visit(child)

            root = view.root_pid
            if self.word.is_live(root):
                visit(root)
            else:
                for child in subtree_children(view, root, self.word):
                    visit(child)
        return reached

    async def _gc_orphans(self) -> list[tuple[str, int]]:
        """Drop replicas the update broadcast can no longer reach."""
        removed: list[tuple[str, int]] = []
        for name in self.catalog:
            if name in self.faults:
                continue
            holders = self.holders(name)
            if not holders:
                continue
            reachable = self._reachable_holders(name)
            for pid in sorted(holders - reachable):
                copy = self.nodes[pid].store.get(name, count_access=False)
                if copy.origin is FileOrigin.REPLICATED:
                    await self.send(
                        ADMIN,
                        Message(kind=MessageKind.REMOVE, src=ADMIN, dst=pid,
                                file=name),
                    )
                    removed.append((name, pid))
        if removed:
            await self.drain()
        return removed

    # -- churn plan helpers (mirror repro.cluster.churn) --------------------

    def _inserted_holder(
        self, view: SubtreeView, name: str, exclude: int | None = None
    ) -> int | None:
        for member in view.members():
            if member == exclude or not self.word.is_live(member):
                continue
            node = self.nodes.get(member)
            if node is None or name not in node.store:
                continue
            if node.store.get(name, count_access=False).origin is FileOrigin.INSERTED:
                return member
        return None

    def _any_holder(self, name: str) -> int | None:
        best: int | None = None
        for pid in sorted(self.holders(name)):
            origin = self.nodes[pid].store.get(name, count_access=False).origin
            if origin is FileOrigin.INSERTED:
                return pid
            if best is None:
                best = pid
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "tcp" if self.config.tcp else "streams"
        return (
            f"LiveCluster(m={self.config.m}, b={self.config.b}, "
            f"live={self.n_live}, files={len(self.catalog)}, {mode})"
        )
