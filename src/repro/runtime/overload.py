"""Overload control plane: bounded inboxes, admission policies, SLO windows.

LessLog's only native answer to a hot node is replicating load away
(§4), but a flash crowd saturates a node faster than replication can
drain it.  This module gives the runtime the missing levers:

* :class:`OverloadPolicy` — one cell of the 2×2×3 control-strategy
  matrix (shed: conservative/aggressive × queue: fcfs/priority ×
  victim: lifo/fifo/random), after the vllm_simulation exemplar's
  preemption grid.
* :class:`AdmissionController` — a bounded admission gate consulted at
  inbox-enqueue time.  Only data ``GET`` requests are sheddable;
  control traffic (membership, replication, updates, replies) always
  passes, so oracle conformance is untouched by shedding.
* :class:`LatencyTracker` — windowed response-latency samples so the
  overload sweeper can replicate when the node's p99 drifts past the
  SLO budget instead of waiting for the raw hit counter.

Shedding never silently drops a request: every victim is owed an
``OVERLOAD`` wire reply (carrying the shedding node and a redirect
hint) so the client — or PR 3's ``RequestTracker`` — can reroute with
backoff instead of waiting out a timeout.

Policy semantics
----------------

*Shed* decides **how much** to evict once the bound trips:
``conservative`` sheds the minimum (one request, keeping depth at the
limit); ``aggressive`` clears backlog down to half the limit in one
stroke, trading served requests for queueing delay.

*Queue* decides **who is protected**: ``fcfs`` treats every queued
request equally; ``priority`` protects requests forwarded from peers
(they already consumed overlay hops) and sheds fresh client entries
first.

*Victim* decides **which** candidate inside the preferred class goes:
``lifo`` the newest arrival (classic reject-newcomer), ``fifo`` the
oldest (drop-head — the request most likely already past its
deadline), ``random`` a seeded uniform choice.
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any

from ..net.message import Message, MessageKind

__all__ = [
    "QUEUE_POLICIES",
    "SHED_POLICIES",
    "VICTIM_POLICIES",
    "AdmissionController",
    "LatencyTracker",
    "OverloadPolicy",
    "policy_grid",
]

SHED_POLICIES = ("conservative", "aggressive")
"""How much to evict when the bound trips: minimum vs clear-to-half."""

QUEUE_POLICIES = ("fcfs", "priority")
"""Whether forwarded (in-overlay) requests outrank fresh client entries."""

VICTIM_POLICIES = ("lifo", "fifo", "random")
"""Which candidate in the preferred class is evicted."""


@dataclass(frozen=True)
class OverloadPolicy:
    """One cell of the shed × queue × victim control-strategy matrix."""

    shed: str = "conservative"
    queue: str = "fcfs"
    victim: str = "lifo"

    def __post_init__(self) -> None:
        if self.shed not in SHED_POLICIES:
            raise ValueError(f"shed policy must be one of {SHED_POLICIES}, got {self.shed!r}")
        if self.queue not in QUEUE_POLICIES:
            raise ValueError(
                f"queue policy must be one of {QUEUE_POLICIES}, got {self.queue!r}"
            )
        if self.victim not in VICTIM_POLICIES:
            raise ValueError(
                f"victim policy must be one of {VICTIM_POLICIES}, got {self.victim!r}"
            )

    @property
    def cell(self) -> str:
        """Stable ``shed/queue/victim`` label used by the bench and tests."""
        return f"{self.shed}/{self.queue}/{self.victim}"


def policy_grid() -> tuple[OverloadPolicy, ...]:
    """All 12 cells, in deterministic (shed, queue, victim) order."""
    return tuple(
        OverloadPolicy(shed=s, queue=q, victim=v)
        for s in SHED_POLICIES
        for q in QUEUE_POLICIES
        for v in VICTIM_POLICIES
    )


class AdmissionController:
    """Bounded-inbox admission gate for one :class:`NodeServer`.

    The node consults :meth:`admit` for every wire arrival before it
    enqueues, :meth:`release` for every ``GET`` it dequeues, and
    :meth:`finish` when a dispatched ``GET`` reaches its terminal
    disposition at this node (served, faulted, or forwarded away).  The
    admitted-work window therefore spans the whole stay — inbox
    residency *plus* in-service time — so :attr:`depth` is the node's
    outstanding admitted load, not just its inbox occupancy.

    A victim that was already queued cannot be plucked out of the
    ``asyncio.Queue`` mid-stream, so it is *marked* instead: the OVERLOAD
    reply goes out at shed time and :meth:`release` tells the consumer to
    skip the husk when it eventually surfaces.  Victims are only ever
    chosen among *undispatched* requests — in-service work cannot be
    un-served, so an aggressive shed clears as much of the queue as the
    undispatched pool allows.
    """

    def __init__(self, policy: OverloadPolicy, limit: int, seed: int = 0) -> None:
        if limit <= 0:
            raise ValueError(f"admission limit must be positive, got {limit}")
        self.policy = policy
        self.limit = int(limit)
        self.rng = random.Random(seed)
        # request_id -> (message, conn); insertion order == arrival order.
        self._queued: OrderedDict[int, tuple[Message, Any]] = OrderedDict()
        self._shed_ids: set[int] = set()
        self._inflight_ids: set[int] = set()
        self.admitted = 0
        self.shed = 0

    @staticmethod
    def sheddable(msg: Message) -> bool:
        """Only data GETs may be shed; control traffic always passes."""
        return msg.kind is MessageKind.GET

    @property
    def depth(self) -> int:
        """Outstanding admitted GETs: queued (unshed) plus in service."""
        return len(self._queued) + len(self._inflight_ids)

    def admit(
        self, msg: Message, conn: Any = None
    ) -> tuple[bool, list[tuple[Message, Any]]]:
        """Decide admission for ``msg`` at enqueue time.

        Returns ``(accepted, victims)``: ``accepted`` says whether the
        arrival should be enqueued at all; ``victims`` lists *queued*
        ``(message, conn)`` pairs evicted to make room — each owed an
        OVERLOAD reply by the caller (the arrival too, when rejected).
        """
        if not self.sheddable(msg):
            return True, []
        if self.depth < self.limit:
            self._queued[msg.request_id] = (msg, conn)
            self.admitted += 1
            return True, []
        arrival = (msg, conn)
        pool = list(self._queued.values())
        pool.append(arrival)
        if self.policy.queue == "priority":
            # Forwarded requests (src >= 0: relayed by a peer) outrank
            # fresh client entries; shed the entry class first.
            classes = [
                [t for t in pool if t[0].src < 0],
                [t for t in pool if t[0].src >= 0],
            ]
        else:
            classes = [pool]
        keep = self.limit if self.policy.shed == "conservative" else max(1, self.limit // 2)
        need = len(pool) + len(self._inflight_ids) - keep
        chosen: list[tuple[Message, Any]] = []
        for cls in classes:
            if len(chosen) >= need:
                break
            take = min(need - len(chosen), len(cls))
            if take <= 0:
                continue
            if self.policy.victim == "fifo":
                chosen.extend(cls[:take])
            elif self.policy.victim == "lifo":
                chosen.extend(reversed(cls[-take:]))
            else:  # random
                chosen.extend(self.rng.sample(cls, take))
        accepted = True
        victims: list[tuple[Message, Any]] = []
        for victim in chosen:
            self.shed += 1
            if victim[0] is msg:
                accepted = False
                continue
            del self._queued[victim[0].request_id]
            self._shed_ids.add(victim[0].request_id)
            victims.append(victim)
        if accepted:
            self._queued[msg.request_id] = (msg, conn)
            self.admitted += 1
        return accepted, victims

    def release(self, msg: Message) -> bool:
        """Inbox-consumer hook for every dequeued GET.

        Returns ``True`` when ``msg`` was shed while queued — its
        OVERLOAD reply already went out, so the consumer must skip it.
        Otherwise the request moves from the queued window to the
        in-flight window; it stays admitted until :meth:`finish`.
        """
        if msg.kind is not MessageKind.GET:
            return False
        if msg.request_id in self._shed_ids:
            self._shed_ids.discard(msg.request_id)
            return True
        if self._queued.pop(msg.request_id, None) is not None:
            self._inflight_ids.add(msg.request_id)
        return False

    def finish(self, msg: Message) -> None:
        """A dispatched GET reached its terminal disposition here
        (served, faulted, or forwarded away): close its window."""
        self._inflight_ids.discard(msg.request_id)


class LatencyTracker:
    """Windowed response-latency samples with on-demand quantiles.

    Samples expire lazily against a sliding wall-clock window; the sort
    happens only when a quantile is asked for (the sweeper tick), never
    on the serve hot path.
    """

    __slots__ = ("window", "_samples")

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self._samples: deque[tuple[float, float]] = deque()

    def record(self, now: float, latency: float) -> None:
        self._samples.append((now, latency))

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def count(self, now: float) -> int:
        self._expire(now)
        return len(self._samples)

    def quantile(self, now: float, q: float) -> float:
        """The windowed ``q``-quantile (nearest-rank), 0.0 when empty."""
        self._expire(now)
        if not self._samples:
            return 0.0
        values = sorted(sample[1] for sample in self._samples)
        index = min(len(values) - 1, int(q * len(values)))
        return values[index]

    def p99(self, now: float) -> float:
        return self.quantile(now, 0.99)

    def reset(self) -> None:
        self._samples.clear()
