"""The live asyncio runtime: LessLog served over a real wire protocol.

Everything the synchronous model (:mod:`repro.cluster.system`) and the
DES driver state about the paper's algorithms, this package *runs*:
``2**m`` asyncio node servers exchange length-prefixed frames over
in-process streams (or real TCP on loopback), clients drive them with
seeded workloads, and an operation-log replay through the synchronous
oracle proves the live system lands in the identical final state.

Frames carry either the JSON-v1 body (the compat codec) or the compact
binary-v2 body (the fast path), negotiated per connection via the
version byte in the frame header; within v2 the header's flags byte
additionally selects struct-packed fixed layouts for GET/ACK traffic
(the zero-copy fast lane — see :mod:`repro.runtime.wire`).  Routing
decisions on the hot path are served from the LRU routing-table cache
keyed on status-word content.
"""

from .addressing import Address, dial_node, dial_peer, start_listener
from .client import (
    ClientError,
    LatencyHistogram,
    LoadGenerator,
    LoadReport,
    RequestOutcome,
    RuntimeClient,
    WorkloadShape,
    percentile,
)
from .churn import ChurnEvent, ChurnInjector
from .cluster import ADMIN, LiveCluster, OpRecord, PeerUnreachableError, RuntimeConfig
from .conformance import (
    ClusterStateSnapshot,
    ConformanceReport,
    Op,
    WorkloadSpec,
    apply_ops,
    diff_snapshot,
    diff_states,
    generate_ops,
    replay_oplog,
    run_conformance,
    snapshot_of,
    verify_snapshot,
)
from .node import CLIENT, NodeServer
from .overload import (
    QUEUE_POLICIES,
    SHED_POLICIES,
    VICTIM_POLICIES,
    AdmissionController,
    LatencyTracker,
    OverloadPolicy,
    policy_grid,
)
from .wire import (
    FRAME_ACK,
    FRAME_GENERIC,
    FRAME_GET,
    FRAME_GET_REPLY,
    FRAME_OVERLOAD,
    MAX_FRAME,
    MAX_WIRE_VERSION,
    WIRE_VERSION,
    WIRE_VERSION_BINARY,
    FrameEncoder,
    FrameError,
    FrameReader,
    WireDecodeError,
    WireError,
    decode_message,
    encode_message,
    message_from_dict,
    message_to_dict,
    read_frame,
    read_message,
    write_message,
)

__all__ = [
    "ADMIN",
    "Address",
    "CLIENT",
    "ClusterStateSnapshot",
    "FRAME_ACK",
    "FRAME_GENERIC",
    "FRAME_GET",
    "FRAME_GET_REPLY",
    "FRAME_OVERLOAD",
    "MAX_FRAME",
    "MAX_WIRE_VERSION",
    "QUEUE_POLICIES",
    "SHED_POLICIES",
    "VICTIM_POLICIES",
    "WIRE_VERSION",
    "WIRE_VERSION_BINARY",
    "AdmissionController",
    "ChurnEvent",
    "ChurnInjector",
    "ClientError",
    "ConformanceReport",
    "FrameEncoder",
    "FrameError",
    "FrameReader",
    "LatencyHistogram",
    "LatencyTracker",
    "LiveCluster",
    "LoadGenerator",
    "LoadReport",
    "NodeServer",
    "Op",
    "OpRecord",
    "OverloadPolicy",
    "PeerUnreachableError",
    "RequestOutcome",
    "RuntimeClient",
    "RuntimeConfig",
    "WireDecodeError",
    "WireError",
    "WorkloadShape",
    "WorkloadSpec",
    "apply_ops",
    "decode_message",
    "dial_node",
    "dial_peer",
    "diff_snapshot",
    "diff_states",
    "encode_message",
    "generate_ops",
    "message_from_dict",
    "message_to_dict",
    "percentile",
    "policy_grid",
    "read_frame",
    "read_message",
    "replay_oplog",
    "run_conformance",
    "snapshot_of",
    "start_listener",
    "verify_snapshot",
    "write_message",
]
