"""`NodeServer`: one live LessLog node as an asyncio service.

Each node is a single consumer task draining an inbox of decoded
frames, plus one housekeeping task (the load monitor / overload
sweeper) and one reader task per open connection.  The consumer never
blocks on a reply — multi-message flows (an INSERT fanning out to its
``2**b`` homes, a GET climbing the lookup tree) park their state in a
pending table keyed by ``request_id`` and resume when the matching
ACK / GET_REPLY frame arrives.  That keeps every node deadlock-free by
construction: a node can always make progress on its inbox.

The node serves the paper's four flows with the *existing core
algebra* — the same calls `LessLogSystem` makes, just spread across
messages:

* **GET** (§2.2/§3/§4) climbs ``first_alive_ancestor`` within the
  entry's subtree, migrating across the remaining ``2**b - 1``
  subtrees on a fault; the serving node replies toward the request's
  ``origin`` node, which relays to the client connection.
* **INSERT** (§3/§4) computes one storage node per subtree and fans
  out, acking the client once every home confirmed.
* **UPDATE** (§2.2) broadcasts top-down from each subtree root
  (bypassing a dead root to its children list); holders re-broadcast,
  non-holders discard.
* **REPLICATE** (§2.2/§3) runs the placement policy inside the
  overloaded node's subtree via the §4 identity reduction — the exact
  computation ``LessLogSystem.replicate`` performs — and pushes the
  copy to the chosen node.

Dead peers are discovered the §3 way: a failed send marks the peer
dead in this node's own status word and the routing step recomputes —
the message-level ``FINDLIVENODE``.

**Overload control plane.**  With ``RuntimeConfig(inbox_limit=N)`` the
node consults an :class:`~repro.runtime.overload.AdmissionController`
for every wire arrival: data GETs beyond the bound are shed per the
configured shed × queue × victim policy cell, and every victim is
answered with an OVERLOAD frame naming the shedding node and a
redirect hint — never silently dropped, so dropped-vs-rerouted-vs-
served accounting stays conserved.  Control traffic is never shed.
With a finite ``slo_budget`` the sweeper also watches a windowed
enqueue-to-serve latency p99 and replicates away load when it drifts
past budget, before the raw hit counter trips.

**Fast path.**  Routing decisions read the LRU-cached
:class:`~repro.core.routing.RoutingTable` instead of re-deriving the
bitwise walks per message: the node's status word fingerprints its own
content (``cache_token``), so next-hop, FINDLIVENODE, and children
lists are O(1) array/memo lookups, and any word mutation (a failed
send, a REGISTER frame) changes the token and transparently
invalidates the cache.  Subtree decisions reuse per-``(root, sid)``
identity reductions (:func:`identity_tree` + :class:`SvidLiveness`)
memoized on the node.  The inbox consumer drains a bounded *batch* of
messages per scheduling tick (``RuntimeConfig.batch_max``), and the
sweeper optionally runs counter-based idle decay: a REPLICATED copy
whose access counter has not moved for ``idle_timeout`` seconds is
REMOVEd via a frame to self and the decision is recorded in the oplog
for conformance replay.
"""

from __future__ import annotations

import asyncio
import random
from collections import deque
from dataclasses import dataclass, replace
from time import perf_counter
from typing import TYPE_CHECKING

from ..core.errors import NoLiveNodeError
from ..core.routing import routing_table
from ..core.subtree import (
    SubtreeView,
    SvidLiveness,
    identity_tree,
    subtree_of_pid,
)
from ..core.tree import LookupTree
from ..net.message import Message, MessageKind, fast_message
from ..node.loadmon import LoadMonitor
from ..node.storage import FileOrigin, FileStore
from .overload import AdmissionController, LatencyTracker
from .wire import WIRE_VERSION, FrameEncoder, FrameError, FrameReader

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import LiveCluster

__all__ = ["CLIENT", "NodeServer", "subtree_children"]

CLIENT = -1
"""``src`` of a request arriving straight from a client connection."""

_WRITE_HIGH_WATER = 1 << 16
"""Transport buffer level above which a writer awaits ``drain()``."""

_SLO_MIN_SAMPLES = 8
"""Windowed latency samples required before the p99 SLO trigger can
fire — a lone slow request must not cause a replication round."""


def subtree_children(view: SubtreeView, pid: int, word) -> list[int]:
    """Advanced children list of ``pid`` within its subtree.

    The same reduction ``LessLogSystem._subtree_children_list`` runs:
    identity-map the subtree to a standalone tree, take the §3 children
    list there, map back to PIDs.  Served from the LRU routing-table
    cache — the table memoizes children lists per PID, so repeated
    broadcast steps at the same liveness cost one dict lookup.
    """
    itree = identity_tree(view)
    sliveness = SvidLiveness(view, word)
    try:
        table = routing_table(itree, sliveness)
    except NoLiveNodeError:
        return []
    svid = view.tree.vid_of(pid) >> view.b
    return [
        view.pid_of_svid(s)
        for s in table.children_list(svid, itree, sliveness)
    ]


@dataclass(eq=False)
class _Connection:
    """One open stream (client or peer) attached to this node."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    encoder: FrameEncoder
    """Reusable reply-frame buffer: replies within one inbox batch
    accumulate here and leave in a single vectored ``writelines``."""
    flush_scheduled: bool = False
    """A tick-coalesced flush callback is pending for this connection."""
    closed: bool = False
    wire_version: int = WIRE_VERSION
    """Highest codec seen from the peer on this connection; replies
    never exceed it (per-connection negotiation)."""

    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@dataclass
class _PendingGet:
    """A client GET this node entered into the overlay, awaiting a reply."""

    conn: _Connection


@dataclass
class _PendingInsert:
    """A client INSERT awaiting ACKs from its remote homes."""

    conn: _Connection
    awaiting: int
    reply: Message


class NodeServer:
    """One live node: storage, membership view, and the four flows."""

    def __init__(self, pid: int, cluster: "LiveCluster") -> None:
        self.pid = pid
        self.cluster = cluster
        config = cluster.config
        self.m = config.m
        self.b = config.b
        self.word = cluster.word.copy()
        self.wire_version = cluster.wire_version_of(pid)
        self.store = FileStore()
        self.monitor = LoadMonitor(capacity=1.0, window=config.window)
        self.inbox: asyncio.Queue[tuple[Message, _Connection | None]] = asyncio.Queue()
        self.pending: dict[int, _PendingGet | _PendingInsert] = {}
        self.admission = (
            AdmissionController(
                config.overload_policy(), config.inbox_limit,
                seed=(config.seed * 69_069 + pid) & 0x7FFFFFFF,
            )
            if config.inbox_limit > 0
            else None
        )
        self.latency = LatencyTracker(window=config.window)
        self._track_latency = config.slo_budget != float("inf")
        self._arrivals: dict[int, float] = {}
        self.busy = False
        self.served_total = 0
        self.shed_total = 0
        self.decode_errors = 0
        self.last_replication = -float("inf")
        self._decision_count = 0
        self._sub_ctx: dict[
            tuple[int, int], tuple[SubtreeView, LookupTree, SvidLiveness]
        ] = {}
        # file → last observed alternative-holder set; the (lagging)
        # knowledge _redirect_hint falls back on when the fresh holder
        # view offers no alternative.
        self._hint_cache: dict[str, tuple[int, ...]] = {}
        self._access_marks: dict[str, tuple[int, float]] = {}
        self._batch_conns: set[_Connection] | None = None
        self._conns: set[_Connection] = set()
        self._tasks: list[asyncio.Task] = []
        self._serve_queue: deque[tuple[float, Message, float | None]] = deque()
        self._serve_waiter: asyncio.Future | None = None
        self._serving = False
        self._pipelined = config.batch_max > 1
        self._tick_coalesce = config.tick_coalesce
        self._running = True

    def start(self) -> None:
        """Spawn the consumer, sweeper, and serve-worker tasks."""
        loop = asyncio.get_running_loop()
        self._tasks.append(loop.create_task(self._consume(), name=f"node:{self.pid}"))
        self._tasks.append(loop.create_task(self._sweep(), name=f"sweep:{self.pid}"))
        if self._pipelined and self.cluster.config.service_time > 0:
            self._tasks.append(
                loop.create_task(self._serve_worker(), name=f"serve:{self.pid}")
            )

    # -- connection plumbing ------------------------------------------------

    def attach(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        """Adopt an accepted stream: spawn its frame-reader task."""
        conn = _Connection(
            reader, writer, FrameEncoder(fixed=self.cluster.config.fixed_frames)
        )
        self._conns.add(conn)
        task = asyncio.get_running_loop().create_task(
            self._read_loop(conn), name=f"read:{self.pid}"
        )
        self._tasks.append(task)

    async def _read_loop(self, conn: _Connection) -> None:
        """Batch-decode incoming frames off one connection.

        One ``FrameReader.read_batch`` await drains every complete
        frame the transport has buffered — a burst of pipelined
        requests costs one scheduling round trip, not one per frame.
        Well-framed bodies that fail to decode are counted and skipped
        (framing stays aligned); framing damage ends the connection.
        """
        frames = FrameReader(
            conn.reader, self.cluster.config.max_frame, self.wire_version
        )
        stage = self.cluster.stage_seconds
        inbox_put = self.inbox.put_nowait
        enqueued = self.cluster.msg_enqueued
        decoded = 0.0
        try:
            while self._running:
                msgs, errors = await frames.read_batch()
                if errors:
                    # Well-framed but malformed bodies: count them and
                    # keep the connection — framing is still aligned.
                    self.decode_errors += errors
                    for _ in range(errors):
                        self.cluster.note_decode_error(self.pid)
                admission = self.admission
                if admission is None and not self._track_latency:
                    for msg, version in msgs:
                        conn.wire_version = version
                        inbox_put((msg, conn))
                        enqueued(self.pid, msg.src)
                else:
                    now = asyncio.get_running_loop().time()
                    for msg, version in msgs:
                        conn.wire_version = version
                        if self._track_latency and msg.kind is MessageKind.GET:
                            self._arrivals[msg.request_id] = now
                        if admission is not None:
                            accepted, victims = admission.admit(msg, conn)
                            for victim_msg, victim_conn in victims:
                                await self._shed(victim_msg, victim_conn)
                            if not accepted:
                                await self._shed(msg, conn)
                                # The shed arrival never reaches the
                                # inbox, but the sender's in-flight
                                # accounting must still settle or
                                # drain() hangs on this frame forever.
                                enqueued(self.pid, msg.src)
                                continue
                        inbox_put((msg, conn))
                        enqueued(self.pid, msg.src)
                stage["decode"] += frames.decode_seconds - decoded
                decoded = frames.decode_seconds
        except (EOFError, FrameError, ConnectionError, OSError):
            pass
        finally:
            self._conns.discard(conn)
            await conn.close()

    def deliver_local(self, msg: Message) -> None:
        """Enqueue a message this node addressed to itself."""
        self.inbox.put_nowait((msg, None))

    async def _write_client(self, conn: _Connection, msg: Message) -> None:
        """Best-effort reply to a client connection, at its codec.

        The frame lands in the connection's reusable encoder buffer.
        Mid-batch (the inbox consumer holds ``_batch_conns``) the flush
        is deferred so every reply of the batch leaves in one vectored
        ``writelines``.  Outside a batch, tick coalescing schedules one
        ``call_soon`` flush per connection per event-loop iteration —
        replies from serve tasks whose timers expired in the same tick
        share a single syscall; with coalescing off the frame is
        flushed immediately.
        """
        if conn.closed:
            return
        try:
            t0 = perf_counter()
            conn.encoder.add(msg, conn.wire_version)
            self.cluster.stage_seconds["encode"] += perf_counter() - t0
            if self._batch_conns is not None:
                self._batch_conns.add(conn)
                return
            transport = conn.writer.transport
            backlogged = (
                transport is not None
                and transport.get_write_buffer_size() > _WRITE_HIGH_WATER
            )
            if self._tick_coalesce and not backlogged:
                if not conn.flush_scheduled and conn.encoder.pending:
                    conn.flush_scheduled = True
                    asyncio.get_running_loop().call_soon(
                        self._flush_conn_soon, conn
                    )
                return
            conn.encoder.flush_to(conn.writer)
            if backlogged:
                await conn.writer.drain()
        except (ConnectionError, OSError):
            await conn.close()

    def _flush_conn_soon(self, conn: _Connection) -> None:
        """Tick-coalesced flush: every reply buffered this iteration."""
        conn.flush_scheduled = False
        if conn.closed or not conn.encoder.pending:
            return
        try:
            conn.encoder.flush_to(conn.writer)
        except (ConnectionError, OSError):  # pragma: no cover - client died
            conn.encoder.reset()

    async def _flush_batch_conns(self, conns: set[_Connection]) -> None:
        """Flush every connection a consumer batch wrote replies to."""
        for conn in conns:
            if conn.closed or not conn.encoder.pending:
                continue
            try:
                conn.encoder.flush_to(conn.writer)
                transport = conn.writer.transport
                if (
                    transport is not None
                    and transport.get_write_buffer_size() > _WRITE_HIGH_WATER
                ):
                    await conn.writer.drain()
            except (ConnectionError, OSError):
                await conn.close()
        conns.clear()

    async def _send(self, msg: Message) -> bool:
        """Send toward a peer; a dead peer is marked in our own word.

        Returning ``False`` is the §3 fault-discovery moment: the
        caller recomputes its routing step against the updated word.
        """
        from .cluster import PeerUnreachableError

        try:
            await self.cluster.send(self.pid, msg)
            return True
        except PeerUnreachableError:
            if 0 <= msg.dst < (1 << self.m) and msg.dst != self.pid:
                self.word.register_dead(msg.dst)
            return False

    # -- main loop ----------------------------------------------------------

    async def _consume(self) -> None:
        """Drain the inbox in bounded batches per scheduling tick.

        After the first (awaited) message, up to ``batch_max - 1`` more
        already-queued messages are processed without yielding back to
        the event loop — amortising the task switch over the batch.
        The per-message accounting (``task_done``, error counters)
        is unchanged, so ``drain()`` semantics are preserved.

        Batch-aware encode: while the batch runs, reply frames written
        through :meth:`_write_client` accumulate in their connection's
        encoder buffer and are flushed once per batch as a single
        vectored write — one ``writelines`` per (connection, batch)
        instead of one write per reply.
        """
        inbox = self.inbox
        batch_max = self.cluster.config.batch_max
        batch_conns: set[_Connection] = set()
        while self._running:
            msg, conn = await inbox.get()
            self.busy = True
            drained = 1
            self._batch_conns = batch_conns
            try:
                while True:
                    try:
                        await self._dispatch(msg, conn)
                    except asyncio.CancelledError:  # pragma: no cover
                        raise
                    except Exception:  # pragma: no cover - defensive
                        self.cluster.note_handler_error(self.pid)
                    finally:
                        inbox.task_done()
                    if drained >= batch_max:
                        break
                    try:
                        msg, conn = inbox.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    drained += 1
            finally:
                self._batch_conns = None
                if batch_conns:
                    await self._flush_batch_conns(batch_conns)
                self.busy = False

    async def _dispatch(self, msg: Message, conn: _Connection | None) -> None:
        kind = msg.kind
        if kind is MessageKind.GET:
            await self._handle_get(msg, conn)
        elif kind in (MessageKind.GET_REPLY, MessageKind.GET_FAULT,
                      MessageKind.ERROR):
            await self._handle_reply(msg)
        elif kind is MessageKind.ACK:
            await self._handle_ack(msg)
        elif kind is MessageKind.INSERT:
            await self._handle_insert(msg, conn)
        elif kind is MessageKind.UPDATE:
            await self._handle_update(msg, conn)
        elif kind is MessageKind.REPLICATE:
            self._handle_replicate(msg)
        elif kind is MessageKind.OVERLOAD:
            payload = msg.payload if isinstance(msg.payload, dict) else {}
            if "shed_by" in payload:
                # A shed reply travelling back toward its entry node:
                # relay it to the waiting client like any terminal reply.
                await self._handle_reply(msg)
            else:
                # Admin trigger (src == ADMIN): treat this node as
                # overloaded and run one placement decision.
                await self._replicate_decision(msg.file, seed=payload.get("seed"))
        elif kind is MessageKind.TRANSFER:
            self._handle_transfer(msg)
        elif kind is MessageKind.DEMOTE:
            if msg.file in self.store:
                self.store.get(msg.file, count_access=False).origin = (
                    FileOrigin.REPLICATED
                )
        elif kind is MessageKind.REMOVE:
            self.store.discard(msg.file)
            payload = msg.payload if isinstance(msg.payload, dict) else {}
            if payload.get("decay"):
                # Idle-decay removal: mirror the oracle's post-remove
                # orphan GC so downstream-only holders don't linger.
                self.cluster.resolve_pending_removal(msg.file, self.pid)
                await self.cluster.gc_after_removal(msg.file)
        elif kind is MessageKind.REGISTER_LIVE:
            self.word.register_live(int(msg.payload["pid"]))
        elif kind is MessageKind.REGISTER_DEAD:
            self.word.register_dead(int(msg.payload["pid"]))

    # -- routing-table helpers ---------------------------------------------

    def _subtree_ctx(
        self, tree: LookupTree, sid: int
    ) -> tuple[SubtreeView, LookupTree, SvidLiveness]:
        """Memoized §4 identity reduction for one ``(root, sid)``.

        The view/tree pair is pure structure; the ``SvidLiveness``
        wraps this node's *mutable* word, so routing tables fetched
        through it invalidate on any word change via the cache token.
        """
        key = (tree.root, sid)
        ctx = self._sub_ctx.get(key)
        if ctx is None:
            view = SubtreeView(tree, self.b, sid)
            ctx = (view, identity_tree(view), SvidLiveness(view, self.word))
            self._sub_ctx[key] = ctx
        return ctx

    # -- GET ----------------------------------------------------------------

    async def _handle_get(self, msg: Message, conn: _Connection | None) -> None:
        admission = self.admission
        if admission is not None and admission.release(msg):
            return  # shed while queued; its OVERLOAD reply already left
        arrival = (
            self._arrivals.pop(msg.request_id, None)
            if self._track_latency else None
        )
        if msg.src == CLIENT:
            # Entry node: stamp the origin and remember the client.
            # (fast_message — this runs for every client GET and both
            # dataclasses.replace and the frozen __init__ cost more.)
            msg = fast_message(
                msg.kind, msg.src, msg.dst, msg.file, msg.payload,
                msg.version, msg.hops, self.pid, msg.request_id,
            )
            if conn is not None:
                self.pending[msg.request_id] = _PendingGet(conn)
        if msg.file in self.store:
            if self._pipelined and self.cluster.config.service_time > 0:
                # Fast path: overlap the (simulated) service latencies
                # instead of serializing them through the consumer.
                # Arrivals are FIFO and the service time is constant,
                # so due times are monotonic: one worker task with one
                # timer per wake replaces a task + sleep per request,
                # and requests due in the same wake share the tick.
                self._serve_queue.append(
                    (asyncio.get_running_loop().time()
                     + self.cluster.config.service_time, msg, arrival)
                )
                waiter = self._serve_waiter
                if waiter is not None:
                    self._serve_waiter = None
                    if not waiter.done():
                        waiter.set_result(None)
            else:
                await self._serve(msg, arrival=arrival)
            return
        if self.b == 0:
            await self._forward_whole_tree(msg)
        else:
            await self._forward_within_subtree(msg)
        if admission is not None:
            # Forwarded (or faulted) away: the GET's stay here is over.
            admission.finish(msg)

    async def _serve_worker(self) -> None:
        """Drain the due-time serve queue with one timer per wake."""
        loop = asyncio.get_running_loop()
        queue = self._serve_queue
        while self._running:
            if not queue:
                waiter = loop.create_future()
                self._serve_waiter = waiter
                await waiter
                continue
            delay = queue[0][0] - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
                continue
            self._serving = True
            try:
                while queue and queue[0][0] <= loop.time():
                    _, msg, arrival = queue.popleft()
                    try:
                        await self._serve(msg, slept=True, arrival=arrival)
                    except asyncio.CancelledError:  # pragma: no cover
                        raise
                    except Exception:  # pragma: no cover - defensive
                        self.cluster.note_handler_error(self.pid)
            finally:
                self._serving = False

    async def _serve(
        self, msg: Message, slept: bool = False, arrival: float | None = None
    ) -> None:
        service_time = self.cluster.config.service_time
        if service_time > 0 and not slept:
            await asyncio.sleep(service_time)
        t0 = perf_counter()
        copy = self.store.get(msg.file)
        now = asyncio.get_running_loop().time()
        self.monitor.record_served(msg.file, msg.src, now)
        if arrival is not None:
            # Enqueue-to-serve latency: the windowed p99 the SLO-aware
            # replication trigger watches.
            self.latency.record(now, now - arrival)
        if self.admission is not None:
            self.admission.finish(msg)
        self.served_total += 1
        reply = fast_message(
            MessageKind.GET_REPLY, msg.dst, msg.origin, msg.file,
            {"payload": copy.payload, "server": self.pid},
            copy.version, msg.hops, msg.origin, msg.request_id,
        )
        self.cluster.stage_seconds["serve"] += perf_counter() - t0
        await self._finish(msg, reply)

    async def _fault(self, msg: Message) -> None:
        self.cluster.count("get_faults")
        await self._finish(
            msg, replace(msg.reply(MessageKind.GET_FAULT), dst=msg.origin)
        )

    async def _shed(self, msg: Message, conn: _Connection | None) -> None:
        """Answer a shed GET with an OVERLOAD reply — never a silent drop.

        The reply names the shedding node and a redirect hint (another
        live holder of the file, when one exists) so the client — or
        the DES reliability layer's ``RequestTracker`` — reroutes with
        backoff instead of waiting out its timeout.  Shedding happens
        pre-dispatch, so a client-entry GET (``src == CLIENT``) was
        never stamped and is answered straight down its connection; a
        peer-forwarded GET is answered toward its origin node, which
        relays like any terminal reply.
        """
        self.shed_total += 1
        self.cluster.count("overload_shed")
        self._arrivals.pop(msg.request_id, None)
        payload = {"shed_by": self.pid, "redirect": self._redirect_hint(msg.file)}
        if msg.src == CLIENT:
            if conn is not None:
                await self._write_client(
                    conn,
                    fast_message(
                        MessageKind.OVERLOAD, self.pid, CLIENT, msg.file,
                        payload, msg.version, msg.hops, msg.origin,
                        msg.request_id,
                    ),
                )
            return
        await self._send(
            fast_message(
                MessageKind.OVERLOAD, self.pid, msg.origin, msg.file,
                payload, msg.version, msg.hops, msg.origin, msg.request_id,
            )
        )  # a dead origin drops the reply: the client times out

    def _redirect_hint(self, name: str) -> int:
        """A live alternative holder of ``name``, or ``-1`` when there is
        none — a coordination-plane read, like the placement policies'
        documented oracle view.

        When the fresh view offers no alternative the node falls back
        on the last holder set it observed — what a real peer, with no
        oracle, actually knows.  That cached knowledge lags churn, so
        the candidates are intersected with this node's *own* status
        word: a hint names the client's next attempt, and under churn
        this node can know a replica is dead (a failed send — the §3
        FINDLIVENODE discovery) before the coordination plane has
        processed the retirement.  Never hand out a hint the sender
        itself would refuse to route to.  A *silent* crash defeats even
        the word filter — nobody was told — which is why the client
        treats a dead hint as a reroute, not a verdict.
        """
        holders = self.cluster.holders(name)
        holders.discard(self.pid)
        if holders:
            self._hint_cache[name] = tuple(sorted(holders))
        else:
            holders = set(self._hint_cache.get(name, ()))
        choices = sorted(p for p in holders if self.word.is_live(p))
        if not choices:
            return -1
        if len(choices) == 1:
            return choices[0]
        rng = self.admission.rng if self.admission is not None else random
        return choices[rng.randrange(len(choices))]

    async def _finish(self, request: Message, reply: Message) -> None:
        """Route a terminal reply: direct to our client, or via origin."""
        if request.origin == self.pid:
            pend = self.pending.pop(request.request_id, None)
            if isinstance(pend, _PendingGet):
                await self._write_client(
                    pend.conn,
                    fast_message(
                        reply.kind, reply.src, CLIENT, reply.file,
                        reply.payload, reply.version, reply.hops,
                        reply.origin, reply.request_id,
                    ),
                )
            return
        await self._send(reply)  # a dead origin drops the reply: client times out

    async def _handle_reply(self, msg: Message) -> None:
        pend = self.pending.pop(msg.request_id, None)
        if isinstance(pend, (_PendingGet, _PendingInsert)):
            await self._write_client(
                pend.conn,
                fast_message(
                    msg.kind, msg.src, CLIENT, msg.file, msg.payload,
                    msg.version, msg.hops, msg.origin, msg.request_id,
                ),
            )

    async def _forward_whole_tree(self, msg: Message) -> None:
        """§3 routing on the full tree, rerouting around dead peers.

        One cached-table lookup per attempt: ``next_hop[pid]`` is the
        nearest live ancestor, falling back to the storage node at the
        top of the chain; ``next_hop[pid] == pid`` means this node *is*
        the storage node — a fault, since the file is not here.
        """
        cluster = self.cluster
        tree = cluster.tree(cluster.psi_of(msg.file))
        stage = cluster.stage_seconds
        while True:
            t0 = perf_counter()
            try:
                table = routing_table(tree, self.word)
                nxt = int(table.next_hop[self.pid])
            except NoLiveNodeError:  # pragma: no cover - we are live
                stage["route"] += perf_counter() - t0
                await self._fault(msg)
                return
            stage["route"] += perf_counter() - t0
            if nxt == self.pid:
                await self._fault(msg)
                return
            if await self._send(msg.forwarded(self.pid, nxt)):
                return

    async def _forward_within_subtree(self, msg: Message) -> None:
        """§4 routing: stay inside the subtree, migrate on a fault.

        The payload carries the subtree identifiers left to try
        (``None`` on first entry from a client), exactly like the DES
        driver.  Any failed send marks the peer dead and re-runs the
        whole decision against the updated word.  Decisions are cached
        table lookups over the per-``(root, sid)`` identity reduction.
        """
        cluster = self.cluster
        tree = cluster.tree(cluster.psi_of(msg.file))
        stage = cluster.stage_seconds
        count = 1 << self.b
        while True:
            # The route window covers the whole §4 decision — remaining-
            # list normalisation, the identity-reduction context, and
            # the cached next-hop lookup — not just the final table
            # read; sends happen outside it.
            t0 = perf_counter()
            remaining = msg.payload
            if remaining is None:
                own = subtree_of_pid(tree, self.pid, self.b)
                remaining = [(own + off) % count for off in range(count)]
            remaining = [int(s) for s in remaining]
            sid = remaining[0]
            view, itree, sliveness = self._subtree_ctx(tree, sid)
            if remaining != msg.payload:
                msg = fast_message(
                    msg.kind, msg.src, msg.dst, msg.file, remaining,
                    msg.version, msg.hops, msg.origin, msg.request_id,
                )
            if view.contains(self.pid):
                svid = tree.vid_of(self.pid) >> self.b
                try:
                    nxt = int(routing_table(itree, sliveness).next_hop[svid])
                except NoLiveNodeError:  # pragma: no cover - we are live
                    nxt = svid
                if nxt != svid:
                    target = view.pid_of_svid(nxt)
                    stage["route"] += perf_counter() - t0
                    if await self._send(msg.forwarded(self.pid, target)):
                        return
                    continue
                # next_hop maps the storage node to itself: the file is
                # absent at its home — fall through to migrate (§4).
            stage["route"] += perf_counter() - t0
            send_failed = False
            for offset, next_sid in enumerate(remaining[1:], start=1):
                nview, nitree, nsliveness = self._subtree_ctx(tree, next_sid)
                try:
                    target = nview.pid_of_svid(
                        routing_table(nitree, nsliveness).home
                    )
                except NoLiveNodeError:
                    continue
                cluster.count("migrations")
                hop = fast_message(
                    msg.kind, msg.src, msg.dst, msg.file, remaining[offset:],
                    msg.version, msg.hops, msg.origin, msg.request_id,
                )
                if await self._send(hop.forwarded(self.pid, target)):
                    return
                send_failed = True
                break
            if send_failed:
                continue
            await self._fault(msg)
            return

    # -- INSERT -------------------------------------------------------------

    async def _handle_insert(self, msg: Message, conn: _Connection | None) -> None:
        if msg.src != CLIENT:
            # A home receiving its copy: store and confirm to the origin.
            self.store.store(
                msg.file, msg.payload, msg.version, FileOrigin.INSERTED,
                now=asyncio.get_running_loop().time(),
            )
            await self._send(
                Message(
                    kind=MessageKind.ACK,
                    src=self.pid,
                    dst=msg.origin,
                    file=msg.file,
                    version=msg.version,
                    origin=msg.origin,
                    request_id=msg.request_id,
                )
            )
            return
        # Entry node: the client-facing ADVANCEDINSERTFILE (§3/§4).
        name = msg.file
        r = self.cluster.psi_of(name)
        tree = self.cluster.tree(r)
        if not await self.cluster.catalog_check(name):
            await self._client_error(msg, conn, f"file {name!r} already inserted")
            return
        homes: list[int] = []
        t0 = perf_counter()
        for sid in range(1 << self.b):
            view, itree, sliveness = self._subtree_ctx(tree, sid)
            try:
                homes.append(
                    view.pid_of_svid(routing_table(itree, sliveness).home)
                )
            except NoLiveNodeError:  # empty subtree: degree degrades (§4)
                continue
        self.cluster.stage_seconds["route"] += perf_counter() - t0
        if not homes:
            await self._client_error(msg, conn, f"no live storage node for {name!r}")
            return
        if not await self.cluster.catalog_claim(name, r, msg.payload):
            # Another entry node won the race between check and claim
            # (possible only when the catalog is a remote service).
            await self._client_error(msg, conn, f"file {name!r} already inserted")
            return
        reply = replace(
            msg.reply(
                MessageKind.ACK,
                payload={"homes": homes, "target": r},
            ),
            version=1,
            dst=CLIENT,
        )
        remote = [h for h in homes if h != self.pid]
        if self.pid in homes:
            self.store.store(
                name, msg.payload, 1, FileOrigin.INSERTED,
                now=asyncio.get_running_loop().time(),
            )
        stamped = replace(msg, origin=self.pid, version=1)
        for home in remote:
            await self._send(stamped.forwarded(self.pid, home))
        if not remote:
            if conn is not None:
                await self._write_client(conn, reply)
            return
        if conn is not None:
            self.pending[msg.request_id] = _PendingInsert(conn, len(remote), reply)

    async def _handle_ack(self, msg: Message) -> None:
        pend = self.pending.get(msg.request_id)
        if not isinstance(pend, _PendingInsert):
            return
        pend.awaiting -= 1
        if pend.awaiting <= 0:
            del self.pending[msg.request_id]
            await self._write_client(pend.conn, pend.reply)

    async def _client_error(
        self, msg: Message, conn: _Connection | None, reason: str
    ) -> None:
        self.cluster.count("client_errors")
        if conn is not None:
            await self._write_client(
                conn,
                replace(msg.reply(MessageKind.ERROR, payload={"reason": reason}),
                        dst=CLIENT),
            )

    # -- UPDATE -------------------------------------------------------------

    async def _handle_update(self, msg: Message, conn: _Connection | None) -> None:
        if msg.src != CLIENT:
            # §2.2 top-down broadcast step: refresh + re-broadcast, or discard.
            if msg.file not in self.store:
                self.cluster.count("update_discards")
                return
            self.store.update(msg.file, msg.payload, msg.version)
            tree = self.cluster.tree(self.cluster.psi_of(msg.file))
            sid = subtree_of_pid(tree, self.pid, self.b)
            view, _itree, _sliveness = self._subtree_ctx(tree, sid)
            for child in subtree_children(view, self.pid, self.word):
                await self._send(msg.forwarded(self.pid, child))
            return
        # Entry node: assign the next version, start at each subtree root.
        name = msg.file
        version = await self.cluster.catalog_advance(name, msg.payload)
        if version is None:
            await self._client_error(msg, conn, f"file {name!r} not inserted")
            return
        tree = self.cluster.tree(self.cluster.psi_of(name))
        stamped = replace(msg, origin=self.pid, version=version)
        for sid in range(1 << self.b):
            view, _itree, _sliveness = self._subtree_ctx(tree, sid)
            root = view.root_pid
            if self.word.is_live(root):
                targets = [root]
            else:
                # §3: bypass a dead root to its children list.
                targets = subtree_children(view, root, self.word)
            for target in targets:
                hop = stamped.forwarded(self.pid, target)
                if target == self.pid:
                    self.deliver_local(replace(hop, src=self.pid))
                else:
                    await self._send(hop)
        if conn is not None:
            await self._write_client(
                conn,
                replace(msg.reply(MessageKind.ACK, payload={}), version=version,
                        dst=CLIENT),
            )

    # -- REPLICATE ----------------------------------------------------------

    def _handle_replicate(self, msg: Message) -> None:
        payload = msg.payload if isinstance(msg.payload, dict) else {}
        self.store.store(
            msg.file, payload.get("payload"), msg.version,
            FileOrigin.REPLICATED, now=asyncio.get_running_loop().time(),
        )
        self.cluster.resolve_pending_holder(msg.file, self.pid)

    def _handle_transfer(self, msg: Message) -> None:
        """§5 churn migration: adopt an original copy as its new home."""
        payload = msg.payload if isinstance(msg.payload, dict) else {}
        self.store.store(
            msg.file, payload.get("payload"), msg.version,
            FileOrigin.INSERTED, now=asyncio.get_running_loop().time(),
        )

    async def _replicate_decision(self, name: str, seed: int | None = None) -> int | None:
        """One placement decision for this (overloaded) holder.

        The node contributes what only it knows — whether it still
        holds the copy, the derived rng seed, its monitor's observed
        forwarder rates — and the coordination plane runs the
        ``LessLogSystem.replicate`` computation and records the
        decision (:meth:`LiveCluster.decide_replication`).  When the
        plane is in-process the node then pushes the copy itself; the
        scale-out bootstrap pushes it atomically with the record.
        """
        if name not in self.store:
            return None
        if seed is None:
            seed = self._derived_seed()
        self._decision_count += 1
        cluster = self.cluster
        now = asyncio.get_running_loop().time()
        rates = dict(self.monitor.source_rates(name, now))
        target = await cluster.decide_replication(name, self.pid, seed, rates)
        if target is None:
            return None
        if cluster.pushes_replicas:
            # Scale-out: the coordination plane already pushed the
            # REPLICATE frame atomically with the oplog record.
            return target
        copy = self.store.get(name, count_access=False)
        sent = await self._send(
            Message(
                kind=MessageKind.REPLICATE,
                src=self.pid,
                dst=target,
                file=name,
                payload={"payload": copy.payload},
                version=copy.version,
            )
        )
        if not sent:  # pragma: no cover - target died this instant
            cluster.resolve_pending_holder(name, target)
        return target

    # -- overload sweeper ---------------------------------------------------

    def inherit_load(self, name: str, rate: float) -> None:
        """Attribute demand a crashed holder of ``name`` was carrying.

        Called by the cluster's §5.3 recovery when this node is the
        heir of a crashed holder's copy: the victim's last observed
        service rate is seeded into the load monitor (linearly decaying
        over one window) so the sweeper's rate trigger and hottest-file
        choice react to the inherited pressure *before* a full window
        of real samples accumulates here.
        """
        self.monitor.inherit(name, rate, asyncio.get_running_loop().time())

    async def _sweep(self) -> None:
        """The per-node load monitor: replicate away sustained pressure.

        Overload is either a saturated in-flight window (inbox depth at
        or beyond ``inflight_limit``) or a served rate above
        ``capacity`` — the paper's requests-per-second threshold.  The
        replica goes toward the max-traffic child subtree by the
        logless argument: the policy's children-list choice.

        With a finite ``idle_timeout`` the same tick also runs
        counter-based removal (§5-adjacent, the live dual of
        ``LessLogSystem.remove_replica``): a REPLICATED copy whose
        access counter has not advanced for ``idle_timeout`` seconds is
        removed via a REMOVE frame to self, recorded in the oplog.
        """
        config = self.cluster.config
        decay = config.idle_timeout != float("inf")
        while self._running:
            await asyncio.sleep(config.check_interval)
            if not self.cluster.replication_enabled:
                continue
            now = asyncio.get_running_loop().time()
            if decay:
                self._decay_idle(now)
            rate = self.monitor.total_rate(now)
            saturated = self.inbox.qsize() >= config.inflight_limit
            slo_breach = (
                self._track_latency
                and self.latency.count(now) >= _SLO_MIN_SAMPLES
                and self.latency.p99(now) > config.slo_budget
            )
            if not saturated and not slo_breach and rate <= config.capacity:
                continue
            if now - self.last_replication < config.cooldown:
                continue
            name = self.monitor.hottest_file(now)
            if name is None or name not in self.store:
                continue
            self.last_replication = now
            await self._replicate_decision(name)

    def _decay_idle(self, now: float) -> None:
        """Counter-based idle decay over this node's REPLICATED copies.

        Each tick compares every replica's access counter against the
        last observed mark; a counter that moved resets the clock, one
        that sat still past ``idle_timeout`` makes the copy cold.  The
        removal is recorded *before* the REMOVE frame is enqueued (the
        cluster also marks it pending, so concurrent placement
        decisions stop seeing this holder in decision order), and the
        frame's ``decay`` flag triggers the oracle-mirroring orphan GC
        when it lands.
        """
        config = self.cluster.config
        cold: list[str] = []
        for copy in self.store.replicated_files():
            count = copy.access_count
            mark = self._access_marks.get(copy.name)
            if mark is None or mark[0] != count:
                self._access_marks[copy.name] = (count, now)
                continue
            if now - mark[1] >= config.idle_timeout:
                cold.append(copy.name)
        for name in cold:
            self._access_marks.pop(name, None)
            self.cluster.record_removal(name, self.pid)
            self.deliver_local(
                Message(
                    kind=MessageKind.REMOVE, src=self.pid, dst=self.pid,
                    file=name, payload={"decay": True},
                )
            )

    def _derived_seed(self) -> int:
        """Deterministic per-decision rng seed (pid- and count-keyed)."""
        return (
            self.cluster.config.seed * 1_000_003
            + self.pid * 8_191
            + self._decision_count
        ) & 0x7FFFFFFF

    # -- lifecycle ----------------------------------------------------------

    @property
    def active(self) -> bool:
        """Is any work pending here?  (Used by the cluster's drain.)"""
        return bool(
            self.busy or self.inbox.qsize() or self._serve_queue or self._serving
        )

    def drain_lost_gets(self) -> list[Message]:
        """GETs queued here at crash time, for the cluster to bounce.

        A crashing node takes its inbox and serve queue down with it,
        but the client GETs inside are not its to lose: each has an
        origin entry still holding the client's connection, and had the
        death landed one frame earlier the entry's failed send
        (FINDLIVENODE, §3) would have rerouted around this node.  The
        cluster re-injects these at their origins — the moral
        equivalent of the entry's retransmit-on-connection-reset — so
        a mid-burst crash costs the request latency, not the client.
        """
        lost: list[Message] = []
        try:
            while True:
                msg, _conn = self.inbox.get_nowait()
                self.inbox.task_done()
                if msg.kind is MessageKind.GET and msg.src != CLIENT:
                    lost.append(msg)
        except asyncio.QueueEmpty:
            pass
        for _due, msg, _arrival in self._serve_queue:
            if msg.src != CLIENT:
                lost.append(msg)
        self._serve_queue.clear()
        return lost

    async def shutdown(self) -> None:
        """Stop serving: cancel tasks, close every connection."""
        self._running = False
        self._serve_queue.clear()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks.clear()
        for conn in list(self._conns):
            await conn.close()
        self._conns.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NodeServer(pid={self.pid}, files={len(self.store)}, "
            f"served={self.served_total})"
        )
