"""`NodeServer`: one live LessLog node as an asyncio service.

Each node is a single consumer task draining an inbox of decoded
frames, plus one housekeeping task (the load monitor / overload
sweeper) and one reader task per open connection.  The consumer never
blocks on a reply — multi-message flows (an INSERT fanning out to its
``2**b`` homes, a GET climbing the lookup tree) park their state in a
pending table keyed by ``request_id`` and resume when the matching
ACK / GET_REPLY frame arrives.  That keeps every node deadlock-free by
construction: a node can always make progress on its inbox.

The node serves the paper's four flows with the *existing core
algebra* — the same calls `LessLogSystem` makes, just spread across
messages:

* **GET** (§2.2/§3/§4) climbs ``first_alive_ancestor`` within the
  entry's subtree, migrating across the remaining ``2**b - 1``
  subtrees on a fault; the serving node replies toward the request's
  ``origin`` node, which relays to the client connection.
* **INSERT** (§3/§4) computes one storage node per subtree and fans
  out, acking the client once every home confirmed.
* **UPDATE** (§2.2) broadcasts top-down from each subtree root
  (bypassing a dead root to its children list); holders re-broadcast,
  non-holders discard.
* **REPLICATE** (§2.2/§3) runs the placement policy inside the
  overloaded node's subtree via the §4 identity reduction — the exact
  computation ``LessLogSystem.replicate`` performs — and pushes the
  copy to the chosen node.

Dead peers are discovered the §3 way: a failed send marks the peer
dead in this node's own status word and the routing step recomputes —
the message-level ``FINDLIVENODE``.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from ..baselines.base import PlacementContext
from ..core.errors import NoLiveNodeError
from ..core.routing import first_alive_ancestor, storage_node
from ..core.subtree import (
    SubtreeView,
    SvidLiveness,
    identity_tree,
    subtree_of_pid,
)
from ..net.message import Message, MessageKind
from ..node.loadmon import LoadMonitor
from ..node.storage import FileOrigin, FileStore
from .wire import FrameError, WireDecodeError, read_message, write_message

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import LiveCluster

__all__ = ["CLIENT", "NodeServer", "subtree_children"]

CLIENT = -1
"""``src`` of a request arriving straight from a client connection."""


def subtree_children(view: SubtreeView, pid: int, word) -> list[int]:
    """Advanced children list of ``pid`` within its subtree.

    The same reduction ``LessLogSystem._subtree_children_list`` runs:
    identity-map the subtree to a standalone tree, take the §3 children
    list there, map back to PIDs.
    """
    from ..core.children import advanced_children_list

    itree = identity_tree(view)
    sliveness = SvidLiveness(view, word)
    svid = view.tree.vid_of(pid) >> view.b
    return [
        view.pid_of_svid(s)
        for s in advanced_children_list(itree, svid, sliveness)
    ]


@dataclass(eq=False)
class _Connection:
    """One open stream (client or peer) attached to this node."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    closed: bool = False

    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@dataclass
class _PendingGet:
    """A client GET this node entered into the overlay, awaiting a reply."""

    conn: _Connection


@dataclass
class _PendingInsert:
    """A client INSERT awaiting ACKs from its remote homes."""

    conn: _Connection
    awaiting: int
    reply: Message


class NodeServer:
    """One live node: storage, membership view, and the four flows."""

    def __init__(self, pid: int, cluster: "LiveCluster") -> None:
        self.pid = pid
        self.cluster = cluster
        config = cluster.config
        self.m = config.m
        self.b = config.b
        self.word = cluster.word.copy()
        self.store = FileStore()
        self.monitor = LoadMonitor(capacity=1.0, window=config.window)
        self.inbox: asyncio.Queue[tuple[Message, _Connection | None]] = asyncio.Queue()
        self.pending: dict[int, _PendingGet | _PendingInsert] = {}
        self.busy = False
        self.served_total = 0
        self.decode_errors = 0
        self.last_replication = -float("inf")
        self._decision_count = 0
        self._conns: set[_Connection] = set()
        self._tasks: list[asyncio.Task] = []
        self._running = True

    def start(self) -> None:
        """Spawn the consumer and sweeper tasks."""
        loop = asyncio.get_running_loop()
        self._tasks.append(loop.create_task(self._consume(), name=f"node:{self.pid}"))
        self._tasks.append(loop.create_task(self._sweep(), name=f"sweep:{self.pid}"))

    # -- connection plumbing ------------------------------------------------

    def attach(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        """Adopt an accepted stream: spawn its frame-reader task."""
        conn = _Connection(reader, writer)
        self._conns.add(conn)
        task = asyncio.get_running_loop().create_task(
            self._read_loop(conn), name=f"read:{self.pid}"
        )
        self._tasks.append(task)

    async def _read_loop(self, conn: _Connection) -> None:
        try:
            while self._running:
                try:
                    msg = await read_message(conn.reader, self.cluster.config.max_frame)
                except WireDecodeError:
                    # A well-framed but malformed body: count it and
                    # keep the connection — framing is still aligned.
                    self.decode_errors += 1
                    self.cluster.note_decode_error(self.pid)
                    continue
                await self.inbox.put((msg, conn))
                self.cluster.msg_enqueued(self.pid)
        except (EOFError, FrameError, ConnectionError, OSError):
            pass
        finally:
            self._conns.discard(conn)
            await conn.close()

    def deliver_local(self, msg: Message) -> None:
        """Enqueue a message this node addressed to itself."""
        self.inbox.put_nowait((msg, None))

    async def _write_client(self, conn: _Connection, msg: Message) -> None:
        """Best-effort reply to a client connection."""
        if conn.closed:
            return
        try:
            await write_message(conn.writer, msg)
        except (ConnectionError, OSError):
            await conn.close()

    async def _send(self, msg: Message) -> bool:
        """Send toward a peer; a dead peer is marked in our own word.

        Returning ``False`` is the §3 fault-discovery moment: the
        caller recomputes its routing step against the updated word.
        """
        from .cluster import PeerUnreachableError

        try:
            await self.cluster.send(self.pid, msg)
            return True
        except PeerUnreachableError:
            if 0 <= msg.dst < (1 << self.m) and msg.dst != self.pid:
                self.word.register_dead(msg.dst)
            return False

    # -- main loop ----------------------------------------------------------

    async def _consume(self) -> None:
        while self._running:
            msg, conn = await self.inbox.get()
            self.busy = True
            try:
                await self._dispatch(msg, conn)
            except asyncio.CancelledError:  # pragma: no cover
                raise
            except Exception:  # pragma: no cover - defensive
                self.cluster.note_handler_error(self.pid)
            finally:
                self.busy = False
                self.inbox.task_done()

    async def _dispatch(self, msg: Message, conn: _Connection | None) -> None:
        kind = msg.kind
        if kind is MessageKind.GET:
            await self._handle_get(msg, conn)
        elif kind in (MessageKind.GET_REPLY, MessageKind.GET_FAULT,
                      MessageKind.ERROR):
            await self._handle_reply(msg)
        elif kind is MessageKind.ACK:
            await self._handle_ack(msg)
        elif kind is MessageKind.INSERT:
            await self._handle_insert(msg, conn)
        elif kind is MessageKind.UPDATE:
            await self._handle_update(msg, conn)
        elif kind is MessageKind.REPLICATE:
            self._handle_replicate(msg)
        elif kind is MessageKind.OVERLOAD:
            payload = msg.payload if isinstance(msg.payload, dict) else {}
            await self._replicate_decision(msg.file, seed=payload.get("seed"))
        elif kind is MessageKind.TRANSFER:
            self._handle_transfer(msg)
        elif kind is MessageKind.DEMOTE:
            if msg.file in self.store:
                self.store.get(msg.file, count_access=False).origin = (
                    FileOrigin.REPLICATED
                )
        elif kind is MessageKind.REMOVE:
            self.store.discard(msg.file)
        elif kind is MessageKind.REGISTER_LIVE:
            self.word.register_live(int(msg.payload["pid"]))
        elif kind is MessageKind.REGISTER_DEAD:
            self.word.register_dead(int(msg.payload["pid"]))

    # -- GET ----------------------------------------------------------------

    async def _handle_get(self, msg: Message, conn: _Connection | None) -> None:
        if msg.src == CLIENT:
            # Entry node: stamp the origin and remember the client.
            msg = replace(msg, origin=self.pid)
            if conn is not None:
                self.pending[msg.request_id] = _PendingGet(conn)
        if msg.file in self.store:
            await self._serve(msg)
            return
        if self.b == 0:
            await self._forward_whole_tree(msg)
        else:
            await self._forward_within_subtree(msg)

    async def _serve(self, msg: Message) -> None:
        service_time = self.cluster.config.service_time
        if service_time > 0:
            await asyncio.sleep(service_time)
        copy = self.store.get(msg.file)
        now = asyncio.get_running_loop().time()
        self.monitor.record_served(msg.file, msg.src, now)
        self.served_total += 1
        reply = replace(
            msg.reply(
                MessageKind.GET_REPLY,
                payload={"payload": copy.payload, "server": self.pid},
            ),
            version=copy.version,
            dst=msg.origin,
        )
        await self._finish(msg, reply)

    async def _fault(self, msg: Message) -> None:
        self.cluster.count("get_faults")
        await self._finish(
            msg, replace(msg.reply(MessageKind.GET_FAULT), dst=msg.origin)
        )

    async def _finish(self, request: Message, reply: Message) -> None:
        """Route a terminal reply: direct to our client, or via origin."""
        if request.origin == self.pid:
            pend = self.pending.pop(request.request_id, None)
            if isinstance(pend, _PendingGet):
                await self._write_client(pend.conn, replace(reply, dst=CLIENT))
            return
        await self._send(reply)  # a dead origin drops the reply: client times out

    async def _handle_reply(self, msg: Message) -> None:
        pend = self.pending.pop(msg.request_id, None)
        if isinstance(pend, _PendingGet):
            await self._write_client(pend.conn, replace(msg, dst=CLIENT))
        elif isinstance(pend, _PendingInsert):  # pragma: no cover - defensive
            await self._write_client(pend.conn, replace(msg, dst=CLIENT))

    async def _forward_whole_tree(self, msg: Message) -> None:
        """§3 routing on the full tree, rerouting around dead peers."""
        tree = self.cluster.tree(self.cluster.psi(msg.file))
        while True:
            nxt = first_alive_ancestor(tree, self.pid, self.word)
            if nxt is None:
                try:
                    home = storage_node(tree, self.word)
                except NoLiveNodeError:  # pragma: no cover - we are live
                    await self._fault(msg)
                    return
                if home == self.pid:
                    await self._fault(msg)
                    return
                if await self._send(msg.forwarded(self.pid, home)):
                    return
                continue
            if await self._send(msg.forwarded(self.pid, nxt)):
                return

    async def _forward_within_subtree(self, msg: Message) -> None:
        """§4 routing: stay inside the subtree, migrate on a fault.

        The payload carries the subtree identifiers left to try
        (``None`` on first entry from a client), exactly like the DES
        driver.  Any failed send marks the peer dead and re-runs the
        whole decision against the updated word.
        """
        tree = self.cluster.tree(self.cluster.psi(msg.file))
        count = 1 << self.b
        while True:
            remaining = msg.payload
            if remaining is None:
                own = subtree_of_pid(tree, self.pid, self.b)
                remaining = [(own + off) % count for off in range(count)]
            remaining = [int(s) for s in remaining]
            sid = remaining[0]
            view = SubtreeView(tree, self.b, sid)
            msg = replace(msg, payload=remaining)
            if view.contains(self.pid):
                nxt = view.first_alive_ancestor(self.pid, self.word)
                if nxt is not None:
                    if await self._send(msg.forwarded(self.pid, nxt)):
                        return
                    continue
                try:
                    home = view.storage_node(self.word)
                except NoLiveNodeError:
                    home = self.pid  # empty subtree: fall through to migrate
                if home != self.pid:
                    if await self._send(msg.forwarded(self.pid, home)):
                        return
                    continue
            # Fault here: migrate by changing the identifier (§4).
            send_failed = False
            for offset, next_sid in enumerate(remaining[1:], start=1):
                next_view = SubtreeView(tree, self.b, next_sid)
                try:
                    target = next_view.storage_node(self.word)
                except NoLiveNodeError:
                    continue
                self.cluster.count("migrations")
                hop = replace(msg, payload=remaining[offset:])
                if await self._send(hop.forwarded(self.pid, target)):
                    return
                send_failed = True
                break
            if send_failed:
                continue
            await self._fault(msg)
            return

    # -- INSERT -------------------------------------------------------------

    async def _handle_insert(self, msg: Message, conn: _Connection | None) -> None:
        if msg.src != CLIENT:
            # A home receiving its copy: store and confirm to the origin.
            self.store.store(
                msg.file, msg.payload, msg.version, FileOrigin.INSERTED,
                now=asyncio.get_running_loop().time(),
            )
            await self._send(
                Message(
                    kind=MessageKind.ACK,
                    src=self.pid,
                    dst=msg.origin,
                    file=msg.file,
                    version=msg.version,
                    origin=msg.origin,
                    request_id=msg.request_id,
                )
            )
            return
        # Entry node: the client-facing ADVANCEDINSERTFILE (§3/§4).
        name = msg.file
        r = self.cluster.psi(name)
        tree = self.cluster.tree(r)
        if not self.cluster.catalog_available(name):
            await self._client_error(msg, conn, f"file {name!r} already inserted")
            return
        homes: list[int] = []
        for sid in range(1 << self.b):
            view = SubtreeView(tree, self.b, sid)
            try:
                homes.append(view.storage_node(self.word))
            except NoLiveNodeError:  # empty subtree: degree degrades (§4)
                continue
        if not homes:
            await self._client_error(msg, conn, f"no live storage node for {name!r}")
            return
        self.cluster.catalog_register(name, r, msg.payload)
        reply = replace(
            msg.reply(
                MessageKind.ACK,
                payload={"homes": homes, "target": r},
            ),
            version=1,
            dst=CLIENT,
        )
        remote = [h for h in homes if h != self.pid]
        if self.pid in homes:
            self.store.store(
                name, msg.payload, 1, FileOrigin.INSERTED,
                now=asyncio.get_running_loop().time(),
            )
        stamped = replace(msg, origin=self.pid, version=1)
        for home in remote:
            await self._send(stamped.forwarded(self.pid, home))
        if not remote:
            if conn is not None:
                await self._write_client(conn, reply)
            return
        if conn is not None:
            self.pending[msg.request_id] = _PendingInsert(conn, len(remote), reply)

    async def _handle_ack(self, msg: Message) -> None:
        pend = self.pending.get(msg.request_id)
        if not isinstance(pend, _PendingInsert):
            return
        pend.awaiting -= 1
        if pend.awaiting <= 0:
            del self.pending[msg.request_id]
            await self._write_client(pend.conn, pend.reply)

    async def _client_error(
        self, msg: Message, conn: _Connection | None, reason: str
    ) -> None:
        self.cluster.count("client_errors")
        if conn is not None:
            await self._write_client(
                conn,
                replace(msg.reply(MessageKind.ERROR, payload={"reason": reason}),
                        dst=CLIENT),
            )

    # -- UPDATE -------------------------------------------------------------

    async def _handle_update(self, msg: Message, conn: _Connection | None) -> None:
        if msg.src != CLIENT:
            # §2.2 top-down broadcast step: refresh + re-broadcast, or discard.
            if msg.file not in self.store:
                self.cluster.count("update_discards")
                return
            self.store.update(msg.file, msg.payload, msg.version)
            tree = self.cluster.tree(self.cluster.psi(msg.file))
            sid = subtree_of_pid(tree, self.pid, self.b)
            view = SubtreeView(tree, self.b, sid)
            for child in subtree_children(view, self.pid, self.word):
                await self._send(msg.forwarded(self.pid, child))
            return
        # Entry node: assign the next version, start at each subtree root.
        name = msg.file
        version = self.cluster.catalog_bump(name, msg.payload)
        if version is None:
            await self._client_error(msg, conn, f"file {name!r} not inserted")
            return
        tree = self.cluster.tree(self.cluster.psi(name))
        stamped = replace(msg, origin=self.pid, version=version)
        for sid in range(1 << self.b):
            view = SubtreeView(tree, self.b, sid)
            root = view.root_pid
            if self.word.is_live(root):
                targets = [root]
            else:
                # §3: bypass a dead root to its children list.
                targets = subtree_children(view, root, self.word)
            for target in targets:
                hop = stamped.forwarded(self.pid, target)
                if target == self.pid:
                    self.deliver_local(replace(hop, src=self.pid))
                else:
                    await self._send(hop)
        if conn is not None:
            await self._write_client(
                conn,
                replace(msg.reply(MessageKind.ACK, payload={}), version=version,
                        dst=CLIENT),
            )

    # -- REPLICATE ----------------------------------------------------------

    def _handle_replicate(self, msg: Message) -> None:
        payload = msg.payload if isinstance(msg.payload, dict) else {}
        self.store.store(
            msg.file, payload.get("payload"), msg.version,
            FileOrigin.REPLICATED, now=asyncio.get_running_loop().time(),
        )
        self.cluster.resolve_pending_holder(msg.file, self.pid)

    def _handle_transfer(self, msg: Message) -> None:
        """§5 churn migration: adopt an original copy as its new home."""
        payload = msg.payload if isinstance(msg.payload, dict) else {}
        self.store.store(
            msg.file, payload.get("payload"), msg.version,
            FileOrigin.INSERTED, now=asyncio.get_running_loop().time(),
        )

    async def _replicate_decision(self, name: str, seed: int | None = None) -> int | None:
        """One placement decision for this (overloaded) holder.

        The same computation as ``LessLogSystem.replicate``: reduce to
        the holder's subtree, run the policy over the live view and the
        holder set, push the copy to the chosen node.  The decision —
        including a ``None`` outcome — is recorded in the cluster's
        operation log with the rng seed used, so the conformance replay
        can re-run it through the synchronous oracle.
        """
        if name not in self.store:
            return None
        if seed is None:
            seed = self._derived_seed()
        self._decision_count += 1
        cluster = self.cluster
        tree = cluster.tree(cluster.psi(name))
        sid = subtree_of_pid(tree, self.pid, self.b)
        view = SubtreeView(tree, self.b, sid)
        itree = identity_tree(view)
        sliveness = SvidLiveness(view, self.word)
        holders = cluster.holders(name, include_pending=True)
        holders_svid = {
            view.svid_of(pid) for pid in holders if view.contains(pid)
        }
        now = asyncio.get_running_loop().time()
        rates = dict(self.monitor.source_rates(name, now))
        rates_svid = {
            (view.svid_of(src) if src >= 0 and view.contains(src) else -1): rate
            for src, rate in rates.items()
        }
        context = PlacementContext(
            rng=random.Random(seed), forwarder_rates=rates_svid
        )
        target_svid = cluster.policy.choose(
            itree, view.svid_of(self.pid), sliveness, holders_svid, context
        )
        target = None if target_svid is None else view.pid_of_svid(target_svid)
        cluster.record_replication(name, self.pid, seed, target, rates)
        if target is None:
            return None
        copy = self.store.get(name, count_access=False)
        cluster.note_pending_holder(name, target)
        sent = await self._send(
            Message(
                kind=MessageKind.REPLICATE,
                src=self.pid,
                dst=target,
                file=name,
                payload={"payload": copy.payload},
                version=copy.version,
            )
        )
        if not sent:  # pragma: no cover - target died this instant
            cluster.resolve_pending_holder(name, target)
        return target

    # -- overload sweeper ---------------------------------------------------

    async def _sweep(self) -> None:
        """The per-node load monitor: replicate away sustained pressure.

        Overload is either a saturated in-flight window (inbox depth at
        or beyond ``inflight_limit``) or a served rate above
        ``capacity`` — the paper's requests-per-second threshold.  The
        replica goes toward the max-traffic child subtree by the
        logless argument: the policy's children-list choice.
        """
        config = self.cluster.config
        while self._running:
            await asyncio.sleep(config.check_interval)
            if not self.cluster.replication_enabled:
                continue
            now = asyncio.get_running_loop().time()
            rate = self.monitor.total_rate(now)
            saturated = self.inbox.qsize() >= config.inflight_limit
            if not saturated and rate <= config.capacity:
                continue
            if now - self.last_replication < config.cooldown:
                continue
            name = self.monitor.hottest_file(now)
            if name is None or name not in self.store:
                continue
            self.last_replication = now
            await self._replicate_decision(name)

    def _derived_seed(self) -> int:
        """Deterministic per-decision rng seed (pid- and count-keyed)."""
        return (
            self.cluster.config.seed * 1_000_003
            + self.pid * 8_191
            + self._decision_count
        ) & 0x7FFFFFFF

    # -- lifecycle ----------------------------------------------------------

    async def shutdown(self) -> None:
        """Stop serving: cancel tasks, close every connection."""
        self._running = False
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks.clear()
        for conn in list(self._conns):
            await conn.close()
        self._conns.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NodeServer(pid={self.pid}, files={len(self.store)}, "
            f"served={self.served_total})"
        )
