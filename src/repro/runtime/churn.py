"""Mid-burst fault injection: seeded churn against a live cluster.

The overload plane of :mod:`repro.runtime.overload` was proven under
flash-crowd load on a *stable* membership.  Real deployments are not so
polite: nodes crash in the middle of the burst, newcomers join while
the sweeper is mid-decision, and the most dangerous failure mode is the
silent one — a node that dies without announcing (``kill``), leaving
every peer's status word stale until the coordination plane catches up.

:class:`ChurnInjector` drives :meth:`LiveCluster.crash` /
:meth:`~LiveCluster.join` / :meth:`~LiveCluster.leave` on a seeded
schedule placed *inside* the burst window:

* ``kill`` events are silent crashes (``crash(pid, announce=False)``):
  the victim retires instantly, no REGISTER_DEAD broadcast goes out,
  and the cluster keeps serving against stale words — exactly the
  regime the stale-redirect machinery must survive.  The announce half
  (recovery, oplog ``recover`` record, inherited-load attribution) runs
  as an *autopsy* in :meth:`finalize`, after the burst.
* ``crash`` / ``join`` / ``leave`` events are announced self-organizing
  ops (§5).  They drain the cluster internally, so they are serialized
  through a single background worker — membership flips land mid-burst,
  while the recovery/migration tail completes when the wire quiets.

Victims are picked at *fire time* from the then-live membership with a
seeded RNG, so schedules compose deterministically with the workload
seed while never naming an already-dead node.  ``min_live`` bounds the
carnage; events that would breach it are skipped and reported.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass

from ..core.errors import ConfigurationError
from .cluster import LiveCluster

__all__ = ["ChurnEvent", "ChurnInjector"]


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled fault, ``at`` seconds after :meth:`ChurnInjector.start`.

    ``pid`` may pin the victim; ``None`` (the default) defers the pick
    to fire time, where the injector draws from the live set (dead set
    for ``join``) with its seeded RNG.
    """

    at: float
    action: str  # kill | crash | join | leave
    pid: int | None = None

    def __post_init__(self) -> None:
        if self.action not in ("kill", "crash", "join", "leave"):
            raise ConfigurationError(f"unknown churn action {self.action!r}")
        if self.at < 0:
            raise ConfigurationError(f"event time must be >= 0, got {self.at}")


class ChurnInjector:
    """Applies a :class:`ChurnEvent` schedule to a running cluster.

    Usage::

        injector = ChurnInjector.scheduled(cluster, duration=2.0,
                                           kills=1, crashes=1, seed=7)
        injector.start()
        report = await gen.run_open_loop(rate, 2.0)   # churn fires mid-burst
        applied = await injector.finalize()           # autopsies + worker tail

    ``applied`` is one dict per scheduled event: the planned time and
    action, the PID it resolved to (or ``None`` when skipped), and for
    kills whether the autopsy announce ran.
    """

    def __init__(
        self,
        cluster: LiveCluster,
        events: list[ChurnEvent],
        seed: int = 0,
        min_live: int = 3,
    ) -> None:
        if min_live < 1:
            raise ConfigurationError(f"min_live must be >= 1, got {min_live}")
        self.cluster = cluster
        self.events = sorted(events, key=lambda e: (e.at, e.action))
        self.min_live = min_live
        self._rng = random.Random(seed ^ 0xC0FFEE)
        self.applied: list[dict[str, object]] = []
        self._autopsies: list[int] = []
        self._runner: asyncio.Task[None] | None = None
        self._worker: asyncio.Task[None] | None = None
        self._queue: asyncio.Queue[tuple[str, int] | None] = asyncio.Queue()

    @classmethod
    def scheduled(
        cls,
        cluster: LiveCluster,
        duration: float,
        *,
        kills: int = 1,
        crashes: int = 0,
        joins: int = 0,
        leaves: int = 0,
        start_frac: float = 0.25,
        end_frac: float = 0.75,
        seed: int = 0,
        min_live: int = 3,
    ) -> "ChurnInjector":
        """A seeded schedule inside ``[start_frac, end_frac] * duration``.

        The window defaults to the middle half of the burst so every
        event lands while load is flowing — neither warm-up nor
        cool-down, the regime the churned overload gates care about.
        """
        if not 0.0 <= start_frac <= end_frac <= 1.0:
            raise ConfigurationError(
                f"need 0 <= start_frac <= end_frac <= 1, "
                f"got {start_frac}/{end_frac}"
            )
        rng = random.Random(seed ^ 0x5C4ED)
        lo, hi = start_frac * duration, end_frac * duration
        events = [
            ChurnEvent(at=lo + (hi - lo) * rng.random(), action=action)
            for action, count in (
                ("kill", kills), ("crash", crashes),
                ("join", joins), ("leave", leaves),
            )
            for _ in range(count)
        ]
        return cls(cluster, events, seed=seed, min_live=min_live)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Arm the schedule on the running loop (idempotent-unsafe: once)."""
        if self._runner is not None:
            raise ConfigurationError("injector already started")
        self._runner = asyncio.create_task(self._run(), name="churn-injector")
        self._worker = asyncio.create_task(self._work(), name="churn-worker")

    async def finalize(self) -> list[dict[str, object]]:
        """Wait out the schedule, drain the worker, announce autopsies.

        Call after the burst completes and before any quiesce /
        conformance diff: the autopsy announces reconcile every live
        node's status word with the silent deaths, close the
        ``kill``/``recover`` oplog pairs, and attribute inherited load,
        so the oracle replay sees a fully self-organized membership.
        """
        if self._runner is None:
            raise ConfigurationError("injector was never started")
        await self._runner
        await self._queue.put(None)
        assert self._worker is not None
        await self._worker
        for pid in self._autopsies:
            # A mid-burst rejoin of the victim already ran its autopsy
            # (join refuses to resurrect an unannounced corpse).
            if pid in self.cluster._silent_deaths:
                await self.cluster.announce_crash(pid)
                self.applied.append({"at": None, "action": "autopsy", "pid": pid})
        self._autopsies.clear()
        return self.applied

    # -- internals ----------------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        for event in self.events:
            delay = t0 + event.at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            pid = self._pick(event)
            if pid is None:
                self.applied.append(
                    {"at": event.at, "action": event.action, "pid": None}
                )
                continue
            if event.action == "kill":
                # Silent: fast synchronous retire, no broadcast, no
                # recovery.  The announce half runs in finalize().
                await self.cluster.crash(pid, announce=False)
                self._autopsies.append(pid)
                self.applied.append({"at": event.at, "action": "kill", "pid": pid})
            else:
                # Announced §5 ops drain internally — serialize them on
                # the worker so two recoveries never interleave.
                await self._queue.put((event.action, pid))

    async def _work(self) -> None:
        while True:
            item = await self._queue.get()
            if item is None:
                return
            action, pid = item
            if action == "crash":
                await self.cluster.crash(pid)
            elif action == "join":
                await self.cluster.join(pid)
            else:
                await self.cluster.leave(pid)
            self.applied.append({"at": None, "action": action, "pid": pid})

    def _pick(self, event: ChurnEvent) -> int | None:
        """Resolve the event's victim against the *current* membership."""
        live = sorted(self.cluster.nodes)
        if event.action == "join":
            total = 1 << self.cluster.config.m
            dead = sorted(set(range(total)) - set(live))
            if event.pid is not None:
                return event.pid if event.pid in dead else None
            return self._rng.choice(dead) if dead else None
        if len(live) <= self.min_live:
            return None
        if event.pid is not None:
            return event.pid if event.pid in live else None
        return self._rng.choice(live)
