"""Wire protocol: length-prefixed frames carrying ``Message``.

Every byte that crosses a connection in the live runtime — in-process
socketpair streams and real TCP alike — is one *frame*:

    +--------+---------+----------+------------------+
    | magic  | version | reserved | body length (u32)|   8-byte header
    | 2 B    | 1 B     | 1 B      | big-endian       |
    +--------+---------+----------+------------------+
    | body: one Message, encoded per the version byte|
    +------------------------------------------------+

Two codecs share the framing, selected by the header's version byte:

* **v1 (JSON)** — the body is the UTF-8 JSON encoding of
  :class:`repro.net.message.Message`.  Payloads must be JSON values;
  ``bytes`` are carried via a tagged ``{"__b64__": ...}`` wrapper and
  tuples become lists (the only lossy conversion — documented, and
  irrelevant to the runtime, which uses dict payloads).
* **v2 (binary)** — a hand-rolled struct layout: one byte of message
  kind, six signed 64-bit integer fields (``src dst version hops
  origin request_id``), a u16-length-prefixed UTF-8 file name, then
  the payload as a tagged tree (see ``_enc_value``).  The encodable
  value set is identical to v1's (JSON scalars + bytes, string dict
  keys, finite floats), so the two codecs round-trip the same
  messages — property-tested in ``tests/test_runtime.py``.

Negotiation is per connection: each side learns the peer's codec from
the version byte of the frames it receives (:func:`read_frame`) and a
sender never exceeds the receiver's advertised maximum — the cluster
computes ``min(sender, receiver)`` per link, so a v1 node in a v2
cluster keeps working and never sees a v2 frame.

Decoding is hardened: bad magic, unknown wire version, oversized or
truncated frames, malformed bodies, unknown message kinds or payload
tags, and wrongly-typed fields each raise a precise error rather than
crashing a server task.  :class:`FrameError` covers the framing layer
(the connection is unusable afterwards — resynchronisation is not
attempted); :class:`WireDecodeError` covers a syntactically valid
frame with a bad body (the connection may continue).
"""

from __future__ import annotations

import base64
import binascii
import json
import math
import struct
from asyncio import IncompleteReadError, StreamReader, StreamWriter
from typing import Any

from ..net.message import Message, MessageKind

__all__ = [
    "WIRE_VERSION",
    "WIRE_VERSION_BINARY",
    "MAX_WIRE_VERSION",
    "MAX_FRAME",
    "WireError",
    "FrameError",
    "WireDecodeError",
    "message_to_dict",
    "message_from_dict",
    "encode_message",
    "decode_message",
    "read_frame",
    "read_message",
    "write_message",
]

MAGIC = b"LL"
WIRE_VERSION = 1
"""The JSON codec — the compatibility fallback every node understands."""
WIRE_VERSION_BINARY = 2
"""The struct-packed binary codec — the fast path."""
MAX_WIRE_VERSION = WIRE_VERSION_BINARY
HEADER = struct.Struct(">2sBBI")
MAX_FRAME = 1 << 20
"""Default ceiling on body size (1 MiB): a decode-bomb guard."""


class WireError(Exception):
    """Base class for everything the wire layer can reject."""


class FrameError(WireError):
    """Framing-level violation: the byte stream itself is broken."""


class WireDecodeError(WireError):
    """A well-framed body that does not decode to a valid Message."""


# -- v1 payload codec (JSON) ---------------------------------------------

def _encode_payload(value: Any) -> Any:
    """JSON-safe transform: bytes → tagged base64, tuples → lists."""
    if isinstance(value, bytes):
        return {"__b64__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, (list, tuple)):
        return [_encode_payload(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for key, val in value.items():
            if not isinstance(key, str):
                raise WireDecodeError(
                    f"payload object keys must be strings, got {key!r}"
                )
            out[key] = _encode_payload(val)
        return out
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise WireDecodeError(f"payload of type {type(value).__name__} is not wire-safe")


def _decode_payload(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__b64__"}:
            tag = value["__b64__"]
            if not isinstance(tag, str):
                raise WireDecodeError("__b64__ tag must be a string")
            try:
                return base64.b64decode(tag.encode("ascii"), validate=True)
            except (binascii.Error, ValueError) as exc:
                raise WireDecodeError(f"bad base64 payload: {exc}") from None
        return {k: _decode_payload(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_payload(v) for v in value]
    return value


# -- message <-> dict ----------------------------------------------------

_INT_FIELDS = ("src", "dst", "version", "hops", "origin", "request_id")


def message_to_dict(msg: Message) -> dict[str, Any]:
    """The JSON-object form of one message."""
    return {
        "kind": msg.kind.value,
        "src": msg.src,
        "dst": msg.dst,
        "file": msg.file,
        "payload": _encode_payload(msg.payload),
        "version": msg.version,
        "hops": msg.hops,
        "origin": msg.origin,
        "request_id": msg.request_id,
    }


def message_from_dict(data: Any) -> Message:
    """Validate and rebuild a message from its JSON-object form."""
    if not isinstance(data, dict):
        raise WireDecodeError(
            f"frame body must be a JSON object, got {type(data).__name__}"
        )
    try:
        kind = MessageKind(data["kind"])
    except KeyError:
        raise WireDecodeError("frame body missing 'kind'") from None
    except ValueError:
        raise WireDecodeError(f"unknown message kind {data['kind']!r}") from None
    fields: dict[str, Any] = {"kind": kind}
    for name in _INT_FIELDS:
        value = data.get(name, 0 if name not in ("origin",) else -1)
        if isinstance(value, bool) or not isinstance(value, int):
            raise WireDecodeError(f"field {name!r} must be an integer, got {value!r}")
        fields[name] = value
    file = data.get("file", "")
    if not isinstance(file, str):
        raise WireDecodeError(f"field 'file' must be a string, got {file!r}")
    fields["file"] = file
    fields["payload"] = _decode_payload(data.get("payload"))
    if "src" not in data or "dst" not in data:
        raise WireDecodeError("frame body missing 'src'/'dst'")
    return Message(**fields)


# -- v2 body codec (binary) ----------------------------------------------
#
# Fixed part: kind code (u8), the six int fields as signed 64-bit, and
# the file-name length (u16), followed by the UTF-8 name bytes and the
# tagged payload tree.  Kind codes are the append-only definition order
# of MessageKind — new kinds must be appended to the enum, never
# reordered, or old binaries would misread each other's frames.

_KIND_BY_CODE: tuple[MessageKind, ...] = tuple(MessageKind)
_CODE_BY_KIND: dict[MessageKind, int] = {k: i for i, k in enumerate(_KIND_BY_CODE)}

_S_FIXED = struct.Struct(">B6qH")
_S_Q = struct.Struct(">q")
_S_D = struct.Struct(">d")
_S_U32 = struct.Struct(">I")

_T_NONE, _T_TRUE, _T_FALSE, _T_INT, _T_FLOAT = 0, 1, 2, 3, 4
_T_STR, _T_BYTES, _T_LIST, _T_DICT, _T_BIGINT = 5, 6, 7, 8, 9

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


def _enc_value(buf: bytearray, value: Any) -> None:
    """Append one tagged payload value to ``buf``.

    Accepts exactly the v1-encodable set so the codecs stay equivalent:
    None/bool/int/finite float/str/bytes, lists (tuples become lists),
    and dicts with string keys.
    """
    if value is None:
        buf.append(_T_NONE)
    elif value is True:
        buf.append(_T_TRUE)
    elif value is False:
        buf.append(_T_FALSE)
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            buf.append(_T_INT)
            buf += _S_Q.pack(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            buf.append(_T_BIGINT)
            buf += _S_U32.pack(len(raw))
            buf += raw
    elif isinstance(value, float):
        if not math.isfinite(value):
            # json.dumps(allow_nan=False) rejects these too: keep the
            # encodable sets identical across codecs.
            raise WireDecodeError("non-finite float is not wire-safe")
        buf.append(_T_FLOAT)
        buf += _S_D.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        buf.append(_T_STR)
        buf += _S_U32.pack(len(raw))
        buf += raw
    elif isinstance(value, bytes):
        buf.append(_T_BYTES)
        buf += _S_U32.pack(len(value))
        buf += value
    elif isinstance(value, (list, tuple)):
        buf.append(_T_LIST)
        buf += _S_U32.pack(len(value))
        for item in value:
            _enc_value(buf, item)
    elif isinstance(value, dict):
        buf.append(_T_DICT)
        buf += _S_U32.pack(len(value))
        for key, val in value.items():
            if not isinstance(key, str):
                raise WireDecodeError(
                    f"payload object keys must be strings, got {key!r}"
                )
            raw = key.encode("utf-8")
            buf += _S_U32.pack(len(raw))
            buf += raw
            _enc_value(buf, val)
    else:
        raise WireDecodeError(
            f"payload of type {type(value).__name__} is not wire-safe"
        )


def _need(body: bytes, pos: int, count: int) -> None:
    if pos + count > len(body):
        raise WireDecodeError(
            f"truncated binary payload: need {count} bytes at offset {pos}, "
            f"have {len(body) - pos}"
        )


def _dec_str(body: bytes, pos: int) -> tuple[str, int]:
    _need(body, pos, 4)
    (length,) = _S_U32.unpack_from(body, pos)
    pos += 4
    _need(body, pos, length)
    try:
        text = body[pos:pos + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireDecodeError(f"bad UTF-8 in binary payload: {exc}") from None
    return text, pos + length


def _dec_value(body: bytes, pos: int) -> tuple[Any, int]:
    _need(body, pos, 1)
    tag = body[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        _need(body, pos, 8)
        return _S_Q.unpack_from(body, pos)[0], pos + 8
    if tag == _T_FLOAT:
        _need(body, pos, 8)
        return _S_D.unpack_from(body, pos)[0], pos + 8
    if tag == _T_STR:
        return _dec_str(body, pos)
    if tag == _T_BYTES:
        _need(body, pos, 4)
        (length,) = _S_U32.unpack_from(body, pos)
        pos += 4
        _need(body, pos, length)
        return body[pos:pos + length], pos + length
    if tag == _T_LIST:
        _need(body, pos, 4)
        (count,) = _S_U32.unpack_from(body, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _dec_value(body, pos)
            items.append(item)
        return items, pos
    if tag == _T_DICT:
        _need(body, pos, 4)
        (count,) = _S_U32.unpack_from(body, pos)
        pos += 4
        out: dict[str, Any] = {}
        for _ in range(count):
            key, pos = _dec_str(body, pos)
            out[key], pos = _dec_value(body, pos)
        return out, pos
    if tag == _T_BIGINT:
        _need(body, pos, 4)
        (length,) = _S_U32.unpack_from(body, pos)
        pos += 4
        _need(body, pos, length)
        return int.from_bytes(body[pos:pos + length], "big", signed=True), pos + length
    raise WireDecodeError(f"unknown binary payload tag {tag}")


def _encode_body_v2(msg: Message) -> bytes:
    buf = bytearray()
    code = _CODE_BY_KIND[msg.kind]
    try:
        name = msg.file.encode("utf-8")
    except UnicodeEncodeError as exc:
        raise WireDecodeError(f"message is not wire-encodable: {exc}") from None
    if len(name) > 0xFFFF:
        raise WireDecodeError(f"file name of {len(name)} bytes exceeds 65535")
    try:
        buf += _S_FIXED.pack(
            code, msg.src, msg.dst, msg.version, msg.hops, msg.origin,
            msg.request_id, len(name),
        )
    except struct.error as exc:
        raise WireDecodeError(f"message is not wire-encodable: {exc}") from None
    buf += name
    try:
        _enc_value(buf, msg.payload)
    except UnicodeEncodeError as exc:
        raise WireDecodeError(f"message is not wire-encodable: {exc}") from None
    return bytes(buf)


def _decode_body_v2(body: bytes) -> Message:
    if len(body) < _S_FIXED.size:
        raise WireDecodeError(
            f"binary body of {len(body)} bytes is shorter than the fixed part"
        )
    code, src, dst, version, hops, origin, request_id, name_len = (
        _S_FIXED.unpack_from(body, 0)
    )
    if code >= len(_KIND_BY_CODE):
        raise WireDecodeError(f"unknown message kind code {code}")
    pos = _S_FIXED.size
    _need(body, pos, name_len)
    try:
        file = body[pos:pos + name_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireDecodeError(f"bad UTF-8 file name: {exc}") from None
    pos += name_len
    payload, pos = _dec_value(body, pos)
    if pos != len(body):
        raise WireDecodeError(
            f"{len(body) - pos} trailing bytes after binary payload"
        )
    return Message(
        kind=_KIND_BY_CODE[code], src=src, dst=dst, file=file, payload=payload,
        version=version, hops=hops, origin=origin, request_id=request_id,
    )


# -- frame codec ---------------------------------------------------------

def encode_message(msg: Message, version: int = WIRE_VERSION) -> bytes:
    """One complete frame (header + body) for ``msg`` at ``version``."""
    if version == WIRE_VERSION:
        try:
            body = json.dumps(
                message_to_dict(msg), separators=(",", ":"), allow_nan=False
            ).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise WireDecodeError(f"message is not wire-encodable: {exc}") from None
    elif version == WIRE_VERSION_BINARY:
        body = _encode_body_v2(msg)
    else:
        raise FrameError(f"unsupported wire version {version}")
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME}")
    return HEADER.pack(MAGIC, version, 0, len(body)) + body


def _check_header(
    header: bytes, max_frame: int, max_version: int = MAX_WIRE_VERSION
) -> tuple[int, int]:
    """Validate an 8-byte header; return ``(version, body length)``."""
    magic, version, _reserved, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if not WIRE_VERSION <= version <= max_version:
        raise FrameError(f"unsupported wire version {version}")
    if length > max_frame:
        raise FrameError(f"frame body of {length} bytes exceeds {max_frame}")
    return version, length


def _decode_body(version: int, body: bytes) -> Message:
    if version == WIRE_VERSION_BINARY:
        return _decode_body_v2(body)
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireDecodeError(f"malformed frame body: {exc}") from None
    return message_from_dict(data)


def decode_message(
    frame: bytes,
    max_frame: int = MAX_FRAME,
    max_version: int = MAX_WIRE_VERSION,
) -> Message:
    """Decode one complete frame from a byte string."""
    if len(frame) < HEADER.size:
        raise FrameError(f"truncated header: {len(frame)} bytes")
    version, length = _check_header(frame[: HEADER.size], max_frame, max_version)
    body = frame[HEADER.size:]
    if len(body) != length:
        raise FrameError(f"body length {len(body)} does not match header {length}")
    return _decode_body(version, body)


# -- stream I/O ----------------------------------------------------------

async def read_frame(
    reader: StreamReader,
    max_frame: int = MAX_FRAME,
    max_version: int = MAX_WIRE_VERSION,
) -> tuple[Message, int]:
    """Read one message off a stream; return it with its wire version.

    The version is how receivers learn a peer's codec: replies on the
    same connection should not exceed it.  ``max_version`` is this
    side's own ceiling — a v1-only node rejects v2 frames at the
    framing layer.

    Raises :class:`EOFError` on a clean end-of-stream at a frame
    boundary, :class:`FrameError` on mid-frame truncation or a broken
    header, :class:`WireDecodeError` on a bad body.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed") from None
        raise FrameError(
            f"connection closed mid-header ({len(exc.partial)} bytes)"
        ) from None
    version, length = _check_header(header, max_frame, max_version)
    try:
        body = await reader.readexactly(length)
    except IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-body ({len(exc.partial)}/{length} bytes)"
        ) from None
    return _decode_body(version, body), version


async def read_message(
    reader: StreamReader,
    max_frame: int = MAX_FRAME,
    max_version: int = MAX_WIRE_VERSION,
) -> Message:
    """Read exactly one message off a stream (see :func:`read_frame`)."""
    msg, _version = await read_frame(reader, max_frame, max_version)
    return msg


async def write_message(
    writer: StreamWriter, msg: Message, version: int = WIRE_VERSION
) -> None:
    """Write one message and flush it through the transport."""
    writer.write(encode_message(msg, version))
    await writer.drain()
