"""Wire protocol: length-prefixed JSON frames carrying ``Message``.

Every byte that crosses a connection in the live runtime — in-process
socketpair streams and real TCP alike — is one *frame*:

    +--------+---------+----------+------------------+
    | magic  | version | reserved | body length (u32)|   8-byte header
    | 2 B    | 1 B     | 1 B      | big-endian       |
    +--------+---------+----------+------------------+
    | body: UTF-8 JSON object (one Message)          |
    +------------------------------------------------+

The body is the JSON encoding of :class:`repro.net.message.Message`.
Payloads must be JSON values; ``bytes`` are carried via a tagged
``{"__b64__": ...}`` wrapper and tuples become lists (the only lossy
conversion — documented, and irrelevant to the runtime, which uses
dict payloads).

Decoding is hardened: bad magic, unknown wire version, oversized or
truncated frames, malformed JSON, non-object bodies, unknown message
kinds, and wrongly-typed fields each raise a precise error rather than
crashing a server task.  :class:`FrameError` covers the framing layer
(the connection is unusable afterwards — resynchronisation is not
attempted); :class:`WireDecodeError` covers a syntactically valid
frame with a bad body (the connection may continue).
"""

from __future__ import annotations

import base64
import binascii
import json
import struct
from asyncio import IncompleteReadError, StreamReader, StreamWriter
from typing import Any

from ..net.message import Message, MessageKind

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME",
    "WireError",
    "FrameError",
    "WireDecodeError",
    "message_to_dict",
    "message_from_dict",
    "encode_message",
    "decode_message",
    "read_message",
    "write_message",
]

MAGIC = b"LL"
WIRE_VERSION = 1
HEADER = struct.Struct(">2sBBI")
MAX_FRAME = 1 << 20
"""Default ceiling on body size (1 MiB): a decode-bomb guard."""


class WireError(Exception):
    """Base class for everything the wire layer can reject."""


class FrameError(WireError):
    """Framing-level violation: the byte stream itself is broken."""


class WireDecodeError(WireError):
    """A well-framed body that does not decode to a valid Message."""


# -- payload codec -------------------------------------------------------

def _encode_payload(value: Any) -> Any:
    """JSON-safe transform: bytes → tagged base64, tuples → lists."""
    if isinstance(value, bytes):
        return {"__b64__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, (list, tuple)):
        return [_encode_payload(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for key, val in value.items():
            if not isinstance(key, str):
                raise WireDecodeError(
                    f"payload object keys must be strings, got {key!r}"
                )
            out[key] = _encode_payload(val)
        return out
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise WireDecodeError(f"payload of type {type(value).__name__} is not wire-safe")


def _decode_payload(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__b64__"}:
            tag = value["__b64__"]
            if not isinstance(tag, str):
                raise WireDecodeError("__b64__ tag must be a string")
            try:
                return base64.b64decode(tag.encode("ascii"), validate=True)
            except (binascii.Error, ValueError) as exc:
                raise WireDecodeError(f"bad base64 payload: {exc}") from None
        return {k: _decode_payload(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_payload(v) for v in value]
    return value


# -- message <-> dict ----------------------------------------------------

_INT_FIELDS = ("src", "dst", "version", "hops", "origin", "request_id")


def message_to_dict(msg: Message) -> dict[str, Any]:
    """The JSON-object form of one message."""
    return {
        "kind": msg.kind.value,
        "src": msg.src,
        "dst": msg.dst,
        "file": msg.file,
        "payload": _encode_payload(msg.payload),
        "version": msg.version,
        "hops": msg.hops,
        "origin": msg.origin,
        "request_id": msg.request_id,
    }


def message_from_dict(data: Any) -> Message:
    """Validate and rebuild a message from its JSON-object form."""
    if not isinstance(data, dict):
        raise WireDecodeError(
            f"frame body must be a JSON object, got {type(data).__name__}"
        )
    try:
        kind = MessageKind(data["kind"])
    except KeyError:
        raise WireDecodeError("frame body missing 'kind'") from None
    except ValueError:
        raise WireDecodeError(f"unknown message kind {data['kind']!r}") from None
    fields: dict[str, Any] = {"kind": kind}
    for name in _INT_FIELDS:
        value = data.get(name, 0 if name not in ("origin",) else -1)
        if isinstance(value, bool) or not isinstance(value, int):
            raise WireDecodeError(f"field {name!r} must be an integer, got {value!r}")
        fields[name] = value
    file = data.get("file", "")
    if not isinstance(file, str):
        raise WireDecodeError(f"field 'file' must be a string, got {file!r}")
    fields["file"] = file
    fields["payload"] = _decode_payload(data.get("payload"))
    if "src" not in data or "dst" not in data:
        raise WireDecodeError("frame body missing 'src'/'dst'")
    return Message(**fields)


# -- frame codec ---------------------------------------------------------

def encode_message(msg: Message) -> bytes:
    """One complete frame (header + body) for ``msg``."""
    try:
        body = json.dumps(
            message_to_dict(msg), separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireDecodeError(f"message is not wire-encodable: {exc}") from None
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME}")
    return HEADER.pack(MAGIC, WIRE_VERSION, 0, len(body)) + body


def _check_header(header: bytes, max_frame: int) -> int:
    """Validate an 8-byte header; return the body length."""
    magic, version, _reserved, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != WIRE_VERSION:
        raise FrameError(f"unsupported wire version {version}")
    if length > max_frame:
        raise FrameError(f"frame body of {length} bytes exceeds {max_frame}")
    return length


def decode_message(frame: bytes, max_frame: int = MAX_FRAME) -> Message:
    """Decode one complete frame from a byte string."""
    if len(frame) < HEADER.size:
        raise FrameError(f"truncated header: {len(frame)} bytes")
    length = _check_header(frame[: HEADER.size], max_frame)
    body = frame[HEADER.size:]
    if len(body) != length:
        raise FrameError(f"body length {len(body)} does not match header {length}")
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireDecodeError(f"malformed frame body: {exc}") from None
    return message_from_dict(data)


# -- stream I/O ----------------------------------------------------------

async def read_message(reader: StreamReader, max_frame: int = MAX_FRAME) -> Message:
    """Read exactly one message off a stream.

    Raises :class:`EOFError` on a clean end-of-stream at a frame
    boundary, :class:`FrameError` on mid-frame truncation or a broken
    header, :class:`WireDecodeError` on a bad body.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed") from None
        raise FrameError(
            f"connection closed mid-header ({len(exc.partial)} bytes)"
        ) from None
    length = _check_header(header, max_frame)
    try:
        body = await reader.readexactly(length)
    except IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-body ({len(exc.partial)}/{length} bytes)"
        ) from None
    return decode_message(header + body, max_frame)


async def write_message(writer: StreamWriter, msg: Message) -> None:
    """Write one message and flush it through the transport."""
    writer.write(encode_message(msg))
    await writer.drain()
