"""Wire protocol: length-prefixed frames carrying ``Message``.

Every byte that crosses a connection in the live runtime — in-process
socketpair streams and real TCP alike — is one *frame*:

    +--------+---------+----------+------------------+
    | magic  | version | flags    | body length (u32)|   8-byte header
    | 2 B    | 1 B     | 1 B      | big-endian       |
    +--------+---------+----------+------------------+
    | body: one Message, encoded per version + flags |
    +------------------------------------------------+

Two codecs share the framing, selected by the header's version byte:

* **v1 (JSON)** — the body is the UTF-8 JSON encoding of
  :class:`repro.net.message.Message`.  Payloads must be JSON values;
  ``bytes`` are carried via a tagged ``{"__b64__": ...}`` wrapper and
  tuples become lists (the only lossy conversion — documented, and
  irrelevant to the runtime, which uses dict payloads).  v1 frames
  always carry ``flags == 0``.
* **v2 (binary)** — a hand-rolled struct layout.  The *generic* body
  (``flags == 0``) is one byte of message kind, six signed 64-bit
  integer fields (``src dst version hops origin request_id``), a
  u16-length-prefixed UTF-8 file name, then the payload as a tagged
  tree (see ``_enc_value``).  The encodable value set is identical to
  v1's (JSON scalars + bytes, string dict keys, finite floats), so the
  two codecs round-trip the same messages — property-tested in
  ``tests/test_runtime.py``.

**Fixed-layout fast lane (within v2).**  The ~90% message kinds on the
runtime's hot path — GET requests, ACK confirmations, and GET_REPLY
responses — have rigid payload shapes, so v2 senders may emit them as
struct-packed fixed layouts that bypass the tagged-value encoder
entirely.  The header's flags byte names the layout:

    ========  =================  =====================================
    flags     layout             applies when
    ========  =================  =====================================
    0         generic            any message (the only v1 value)
    1         FIXED_GET          kind GET, payload is None or a short
                                 list of small ints (the §4 remaining-
                                 subtree ids; ≤255 entries, each 0–255)
    2         FIXED_ACK          kind ACK, payload is None
    3         FIXED_GET_REPLY    kind GET_REPLY, payload is exactly
                                 {"payload": None|str|bytes,
                                  "server": int64}
    4         FIXED_OVERLOAD     kind OVERLOAD, payload is exactly
                                 {"shed_by": int64, "redirect": int64}
    ========  =================  =====================================

    A FIXED_GET body is the common struct + file name, optionally
    followed by a one-byte count and that many u8 subtree ids; no
    trailer decodes as ``payload=None``.  Forwarded GETs carry the
    remaining-subtree list in their payload, so without the trailer
    every forwarded hop would fall back to the tagged-value encoder —
    the trailer keeps the entire §4 routing path on the fixed lane.

A fixed-layout frame decodes to the *exact same* ``Message`` the
generic v2 body would produce (property-tested).  Negotiation matrix:
a sender uses a fixed layout only inside an already-negotiated v2
connection, so JSON-v1 peers never see one (they never see any v2
frame); a v2 receiver always understands all five flag values, so
v2-generic and v2-fixed endpoints interoperate frame by frame —
ineligible messages simply fall back to ``flags == 0`` on the same
connection.

**Zero-copy fast lane.**  :class:`FrameEncoder` owns a reusable
``bytearray``: frames are appended in place (header packed via
``pack_into`` after the body lands, no per-frame ``bytes``
concatenation) and handed to the transport as ``memoryview`` slices
through ``writer.writelines`` — one vectored call per flush, one copy
total (the transport's own join).  The buffer is recycled only after
the flush materialises the views, so no frame ever aliases a later
frame's bytes.  :class:`FrameReader` is the decode dual: one
``read()`` syscall fills a buffer that is sliced into as many complete
frames as it holds, decoded straight off a ``memoryview`` (leaf
strings/bytes are copied out, so decoded messages never alias the
buffer).

Negotiation is per connection: each side learns the peer's codec from
the version byte of the frames it receives (:func:`read_frame` /
:class:`FrameReader`) and a sender never exceeds the receiver's
advertised maximum — the cluster computes ``min(sender, receiver)``
per link, so a v1 node in a v2 cluster keeps working and never sees a
v2 frame.

Decoding is hardened: bad magic, unknown wire version, unknown flags,
oversized or truncated frames, malformed bodies, unknown message kinds
or payload tags, and wrongly-typed fields each raise a precise error
rather than crashing a server task.  :class:`FrameError` covers the
framing layer (the connection is unusable afterwards —
resynchronisation is not attempted); :class:`WireDecodeError` covers a
syntactically valid frame with a bad body (the connection may
continue).
"""

from __future__ import annotations

import base64
import binascii
import json
import math
import struct
from asyncio import IncompleteReadError, StreamReader, StreamWriter
from time import perf_counter
from typing import Any

from ..net.message import Message, MessageKind, fast_message

__all__ = [
    "WIRE_VERSION",
    "WIRE_VERSION_BINARY",
    "MAX_WIRE_VERSION",
    "MAX_FRAME",
    "FRAME_GENERIC",
    "FRAME_GET",
    "FRAME_ACK",
    "FRAME_GET_REPLY",
    "FRAME_OVERLOAD",
    "WireError",
    "FrameError",
    "WireDecodeError",
    "FrameEncoder",
    "FrameReader",
    "message_to_dict",
    "message_from_dict",
    "encode_message",
    "decode_message",
    "read_frame",
    "read_message",
    "write_message",
]

MAGIC = b"LL"
WIRE_VERSION = 1
"""The JSON codec — the compatibility fallback every node understands."""
WIRE_VERSION_BINARY = 2
"""The struct-packed binary codec — the fast path."""
MAX_WIRE_VERSION = WIRE_VERSION_BINARY
HEADER = struct.Struct(">2sBBI")
MAX_FRAME = 1 << 20
"""Default ceiling on body size (1 MiB): a decode-bomb guard."""

FRAME_GENERIC = 0
"""Flags value: the generic body for the frame's wire version."""
FRAME_GET = 1
"""Flags value: fixed-layout GET (payload None), v2 only."""
FRAME_ACK = 2
"""Flags value: fixed-layout ACK (payload None), v2 only."""
FRAME_GET_REPLY = 3
"""Flags value: fixed-layout GET_REPLY, v2 only."""
FRAME_OVERLOAD = 4
"""Flags value: fixed-layout OVERLOAD shed reply, v2 only."""

_HEADER_PAD = bytes(HEADER.size)
_READ_CHUNK = 1 << 16


class WireError(Exception):
    """Base class for everything the wire layer can reject."""


class FrameError(WireError):
    """Framing-level violation: the byte stream itself is broken."""


class WireDecodeError(WireError):
    """A well-framed body that does not decode to a valid Message."""


# -- v1 payload codec (JSON) ---------------------------------------------

def _encode_payload(value: Any) -> Any:
    """JSON-safe transform: bytes → tagged base64, tuples → lists."""
    if isinstance(value, bytes):
        return {"__b64__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, (list, tuple)):
        return [_encode_payload(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for key, val in value.items():
            if not isinstance(key, str):
                raise WireDecodeError(
                    f"payload object keys must be strings, got {key!r}"
                )
            out[key] = _encode_payload(val)
        return out
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise WireDecodeError(f"payload of type {type(value).__name__} is not wire-safe")


def _decode_payload(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__b64__"}:
            tag = value["__b64__"]
            if not isinstance(tag, str):
                raise WireDecodeError("__b64__ tag must be a string")
            try:
                return base64.b64decode(tag.encode("ascii"), validate=True)
            except (binascii.Error, ValueError) as exc:
                raise WireDecodeError(f"bad base64 payload: {exc}") from None
        return {k: _decode_payload(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_payload(v) for v in value]
    return value


# -- message <-> dict ----------------------------------------------------

_INT_FIELDS = ("src", "dst", "version", "hops", "origin", "request_id")


def message_to_dict(msg: Message) -> dict[str, Any]:
    """The JSON-object form of one message."""
    return {
        "kind": msg.kind.value,
        "src": msg.src,
        "dst": msg.dst,
        "file": msg.file,
        "payload": _encode_payload(msg.payload),
        "version": msg.version,
        "hops": msg.hops,
        "origin": msg.origin,
        "request_id": msg.request_id,
    }


def message_from_dict(data: Any) -> Message:
    """Validate and rebuild a message from its JSON-object form."""
    if not isinstance(data, dict):
        raise WireDecodeError(
            f"frame body must be a JSON object, got {type(data).__name__}"
        )
    try:
        kind = MessageKind(data["kind"])
    except KeyError:
        raise WireDecodeError("frame body missing 'kind'") from None
    except ValueError:
        raise WireDecodeError(f"unknown message kind {data['kind']!r}") from None
    fields: dict[str, Any] = {"kind": kind}
    for name in _INT_FIELDS:
        value = data.get(name, 0 if name not in ("origin",) else -1)
        if isinstance(value, bool) or not isinstance(value, int):
            raise WireDecodeError(f"field {name!r} must be an integer, got {value!r}")
        fields[name] = value
    file = data.get("file", "")
    if not isinstance(file, str):
        raise WireDecodeError(f"field 'file' must be a string, got {file!r}")
    fields["file"] = file
    fields["payload"] = _decode_payload(data.get("payload"))
    if "src" not in data or "dst" not in data:
        raise WireDecodeError("frame body missing 'src'/'dst'")
    return Message(**fields)


# -- v2 body codec (binary) ----------------------------------------------
#
# Generic body: kind code (u8), the six int fields as signed 64-bit, and
# the file-name length (u16), followed by the UTF-8 name bytes and the
# tagged payload tree.  Kind codes are the append-only definition order
# of MessageKind — new kinds must be appended to the enum, never
# reordered, or old binaries would misread each other's frames.

_KIND_BY_CODE: tuple[MessageKind, ...] = tuple(MessageKind)
_CODE_BY_KIND: dict[MessageKind, int] = {k: i for i, k in enumerate(_KIND_BY_CODE)}

_S_FIXED = struct.Struct(">B6qH")
_S_Q = struct.Struct(">q")
_S_D = struct.Struct(">d")
_S_U32 = struct.Struct(">I")

#: Fixed layouts: the six int fields + name length (GET/ACK), plus one
#: extra i64 (the serving node) for GET_REPLY, and two extra i64s
#: (shedding node + redirect hint) for OVERLOAD.
_S_FL_COMMON = struct.Struct(">6qH")
_S_FL_REPLY = struct.Struct(">7qH")
_S_FL_OVERLOAD = struct.Struct(">8qH")

_T_NONE, _T_TRUE, _T_FALSE, _T_INT, _T_FLOAT = 0, 1, 2, 3, 4
_T_STR, _T_BYTES, _T_LIST, _T_DICT, _T_BIGINT = 5, 6, 7, 8, 9

#: GET_REPLY fixed-layout payload-value kinds.
_FLP_NONE, _FLP_STR, _FLP_BYTES = 0, 1, 2

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


def _enc_value(buf: bytearray, value: Any) -> None:
    """Append one tagged payload value to ``buf``.

    Accepts exactly the v1-encodable set so the codecs stay equivalent:
    None/bool/int/finite float/str/bytes, lists (tuples become lists),
    and dicts with string keys.
    """
    if value is None:
        buf.append(_T_NONE)
    elif value is True:
        buf.append(_T_TRUE)
    elif value is False:
        buf.append(_T_FALSE)
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            buf.append(_T_INT)
            buf += _S_Q.pack(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            buf.append(_T_BIGINT)
            buf += _S_U32.pack(len(raw))
            buf += raw
    elif isinstance(value, float):
        if not math.isfinite(value):
            # json.dumps(allow_nan=False) rejects these too: keep the
            # encodable sets identical across codecs.
            raise WireDecodeError("non-finite float is not wire-safe")
        buf.append(_T_FLOAT)
        buf += _S_D.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        buf.append(_T_STR)
        buf += _S_U32.pack(len(raw))
        buf += raw
    elif isinstance(value, bytes):
        buf.append(_T_BYTES)
        buf += _S_U32.pack(len(value))
        buf += value
    elif isinstance(value, (list, tuple)):
        buf.append(_T_LIST)
        buf += _S_U32.pack(len(value))
        for item in value:
            _enc_value(buf, item)
    elif isinstance(value, dict):
        buf.append(_T_DICT)
        buf += _S_U32.pack(len(value))
        for key, val in value.items():
            if not isinstance(key, str):
                raise WireDecodeError(
                    f"payload object keys must be strings, got {key!r}"
                )
            raw = key.encode("utf-8")
            buf += _S_U32.pack(len(raw))
            buf += raw
            _enc_value(buf, val)
    else:
        raise WireDecodeError(
            f"payload of type {type(value).__name__} is not wire-safe"
        )


def _need(body, pos: int, count: int) -> None:
    if pos + count > len(body):
        raise WireDecodeError(
            f"truncated binary payload: need {count} bytes at offset {pos}, "
            f"have {len(body) - pos}"
        )


def _dec_str(body, pos: int) -> tuple[str, int]:
    _need(body, pos, 4)
    (length,) = _S_U32.unpack_from(body, pos)
    pos += 4
    _need(body, pos, length)
    try:
        # bytes() copies the slice out of the (possibly reused) buffer,
        # so decoded strings never alias it.
        text = bytes(body[pos:pos + length]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireDecodeError(f"bad UTF-8 in binary payload: {exc}") from None
    return text, pos + length


def _dec_value(body, pos: int) -> tuple[Any, int]:
    _need(body, pos, 1)
    tag = body[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        _need(body, pos, 8)
        return _S_Q.unpack_from(body, pos)[0], pos + 8
    if tag == _T_FLOAT:
        _need(body, pos, 8)
        return _S_D.unpack_from(body, pos)[0], pos + 8
    if tag == _T_STR:
        return _dec_str(body, pos)
    if tag == _T_BYTES:
        _need(body, pos, 4)
        (length,) = _S_U32.unpack_from(body, pos)
        pos += 4
        _need(body, pos, length)
        return bytes(body[pos:pos + length]), pos + length
    if tag == _T_LIST:
        _need(body, pos, 4)
        (count,) = _S_U32.unpack_from(body, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _dec_value(body, pos)
            items.append(item)
        return items, pos
    if tag == _T_DICT:
        _need(body, pos, 4)
        (count,) = _S_U32.unpack_from(body, pos)
        pos += 4
        out: dict[str, Any] = {}
        for _ in range(count):
            key, pos = _dec_str(body, pos)
            out[key], pos = _dec_value(body, pos)
        return out, pos
    if tag == _T_BIGINT:
        _need(body, pos, 4)
        (length,) = _S_U32.unpack_from(body, pos)
        pos += 4
        _need(body, pos, length)
        return (
            int.from_bytes(bytes(body[pos:pos + length]), "big", signed=True),
            pos + length,
        )
    raise WireDecodeError(f"unknown binary payload tag {tag}")


def _encode_body_v2(buf: bytearray, msg: Message) -> None:
    """Append the generic v2 body of ``msg`` to ``buf``."""
    code = _CODE_BY_KIND[msg.kind]
    try:
        name = msg.file.encode("utf-8")
    except UnicodeEncodeError as exc:
        raise WireDecodeError(f"message is not wire-encodable: {exc}") from None
    if len(name) > 0xFFFF:
        raise WireDecodeError(f"file name of {len(name)} bytes exceeds 65535")
    try:
        buf += _S_FIXED.pack(
            code, msg.src, msg.dst, msg.version, msg.hops, msg.origin,
            msg.request_id, len(name),
        )
    except struct.error as exc:
        raise WireDecodeError(f"message is not wire-encodable: {exc}") from None
    buf += name
    try:
        _enc_value(buf, msg.payload)
    except UnicodeEncodeError as exc:
        raise WireDecodeError(f"message is not wire-encodable: {exc}") from None


def _try_encode_fixed(buf: bytearray, msg: Message) -> int:
    """Append a fixed-layout body when ``msg`` qualifies.

    Returns the flags value used, or ``FRAME_GENERIC`` (nothing
    appended) when the message does not fit any fixed layout — the
    caller falls back to the generic body on the same connection.
    """
    kind = msg.kind
    if kind is MessageKind.GET:
        sids = msg.payload
        trailer = None
        if sids is not None:
            if type(sids) is not list or not 0 < len(sids) <= 255:
                return FRAME_GENERIC
            try:
                # bytes() validates every element at C speed (bools
                # coerce to their int value, which compares equal).
                trailer = bytes(sids)
            except (TypeError, ValueError):
                return FRAME_GENERIC
        flags = FRAME_GET
    elif kind is MessageKind.ACK:
        if msg.payload is not None:
            return FRAME_GENERIC
        flags = FRAME_ACK
    elif kind is MessageKind.GET_REPLY:
        payload = msg.payload
        if type(payload) is not dict or len(payload) != 2:
            return FRAME_GENERIC
        try:
            server = payload["server"]
            data = payload["payload"]
        except KeyError:
            return FRAME_GENERIC
        # type-is checks: exact int excludes bool, and an int subclass
        # falling back to the generic codec is always still correct.
        if type(server) is not int or not _I64_MIN <= server <= _I64_MAX:
            return FRAME_GENERIC
        if data is None:
            value_kind, raw = _FLP_NONE, b""
        elif type(data) is str:
            try:
                value_kind, raw = _FLP_STR, data.encode("utf-8")
            except UnicodeEncodeError:
                return FRAME_GENERIC
        elif type(data) is bytes:
            value_kind, raw = _FLP_BYTES, data
        else:
            return FRAME_GENERIC
        try:
            name = msg.file.encode("utf-8")
        except UnicodeEncodeError:
            return FRAME_GENERIC
        if len(name) > 0xFFFF:
            return FRAME_GENERIC
        try:
            buf += _S_FL_REPLY.pack(
                msg.src, msg.dst, msg.version, msg.hops, msg.origin,
                msg.request_id, server, len(name),
            )
        except struct.error:
            return FRAME_GENERIC
        buf += name
        buf.append(value_kind)
        buf += _S_U32.pack(len(raw))
        buf += raw
        return FRAME_GET_REPLY
    elif kind is MessageKind.OVERLOAD:
        payload = msg.payload
        if type(payload) is not dict or len(payload) != 2:
            return FRAME_GENERIC
        try:
            shed_by = payload["shed_by"]
            redirect = payload["redirect"]
        except KeyError:
            return FRAME_GENERIC
        if type(shed_by) is not int or not _I64_MIN <= shed_by <= _I64_MAX:
            return FRAME_GENERIC
        if type(redirect) is not int or not _I64_MIN <= redirect <= _I64_MAX:
            return FRAME_GENERIC
        try:
            name = msg.file.encode("utf-8")
        except UnicodeEncodeError:
            return FRAME_GENERIC
        if len(name) > 0xFFFF:
            return FRAME_GENERIC
        try:
            buf += _S_FL_OVERLOAD.pack(
                msg.src, msg.dst, msg.version, msg.hops, msg.origin,
                msg.request_id, shed_by, redirect, len(name),
            )
        except struct.error:
            return FRAME_GENERIC
        buf += name
        return FRAME_OVERLOAD
    else:
        return FRAME_GENERIC
    # GET / ACK: the six int fields plus the file name, nothing else —
    # except a GET's optional u8 remaining-subtree trailer.
    try:
        name = msg.file.encode("utf-8")
    except UnicodeEncodeError:
        return FRAME_GENERIC
    if len(name) > 0xFFFF:
        return FRAME_GENERIC
    try:
        buf += _S_FL_COMMON.pack(
            msg.src, msg.dst, msg.version, msg.hops, msg.origin,
            msg.request_id, len(name),
        )
    except struct.error:
        return FRAME_GENERIC
    buf += name
    if flags == FRAME_GET and trailer is not None:
        buf.append(len(trailer))
        buf += trailer
    return flags


def _dec_file_name(body, pos: int, name_len: int) -> tuple[str, int]:
    _need(body, pos, name_len)
    try:
        file = bytes(body[pos:pos + name_len]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireDecodeError(f"bad UTF-8 file name: {exc}") from None
    return file, pos + name_len


def _decode_body_v2(body) -> Message:
    if len(body) < _S_FIXED.size:
        raise WireDecodeError(
            f"binary body of {len(body)} bytes is shorter than the fixed part"
        )
    code, src, dst, version, hops, origin, request_id, name_len = (
        _S_FIXED.unpack_from(body, 0)
    )
    if code >= len(_KIND_BY_CODE):
        raise WireDecodeError(f"unknown message kind code {code}")
    file, pos = _dec_file_name(body, _S_FIXED.size, name_len)
    payload, pos = _dec_value(body, pos)
    if pos != len(body):
        raise WireDecodeError(
            f"{len(body) - pos} trailing bytes after binary payload"
        )
    return fast_message(
        _KIND_BY_CODE[code], src, dst, file, payload,
        version, hops, origin, request_id,
    )


def _decode_body_fixed(flags: int, body) -> Message:
    """Decode one fixed-layout v2 body (flags 1..4)."""
    if flags == FRAME_OVERLOAD:
        if len(body) < _S_FL_OVERLOAD.size:
            raise WireDecodeError(
                f"fixed OVERLOAD body of {len(body)} bytes is too short"
            )
        src, dst, version, hops, origin, request_id, shed_by, redirect, name_len = (
            _S_FL_OVERLOAD.unpack_from(body, 0)
        )
        file, pos = _dec_file_name(body, _S_FL_OVERLOAD.size, name_len)
        if pos != len(body):
            raise WireDecodeError(
                f"{len(body) - pos} trailing bytes after fixed OVERLOAD body"
            )
        return fast_message(
            MessageKind.OVERLOAD, src, dst, file,
            {"shed_by": shed_by, "redirect": redirect}, version,
            hops, origin, request_id,
        )
    if flags == FRAME_GET_REPLY:
        if len(body) < _S_FL_REPLY.size:
            raise WireDecodeError(
                f"fixed GET_REPLY body of {len(body)} bytes is too short"
            )
        src, dst, version, hops, origin, request_id, server, name_len = (
            _S_FL_REPLY.unpack_from(body, 0)
        )
        file, pos = _dec_file_name(body, _S_FL_REPLY.size, name_len)
        _need(body, pos, 5)
        value_kind = body[pos]
        (length,) = _S_U32.unpack_from(body, pos + 1)
        pos += 5
        _need(body, pos, length)
        if value_kind == _FLP_NONE:
            if length:
                raise WireDecodeError("fixed GET_REPLY None payload carries bytes")
            data: Any = None
        elif value_kind == _FLP_STR:
            try:
                data = bytes(body[pos:pos + length]).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise WireDecodeError(
                    f"bad UTF-8 in fixed GET_REPLY payload: {exc}"
                ) from None
        elif value_kind == _FLP_BYTES:
            data = bytes(body[pos:pos + length])
        else:
            raise WireDecodeError(
                f"unknown fixed GET_REPLY payload kind {value_kind}"
            )
        pos += length
        if pos != len(body):
            raise WireDecodeError(
                f"{len(body) - pos} trailing bytes after fixed GET_REPLY body"
            )
        return fast_message(
            MessageKind.GET_REPLY, src, dst, file,
            {"payload": data, "server": server}, version,
            hops, origin, request_id,
        )
    kind = MessageKind.GET if flags == FRAME_GET else MessageKind.ACK
    if len(body) < _S_FL_COMMON.size:
        raise WireDecodeError(
            f"fixed {kind.value} body of {len(body)} bytes is too short"
        )
    src, dst, version, hops, origin, request_id, name_len = (
        _S_FL_COMMON.unpack_from(body, 0)
    )
    file, pos = _dec_file_name(body, _S_FL_COMMON.size, name_len)
    payload = None
    if pos != len(body):
        if flags != FRAME_GET:
            raise WireDecodeError(
                f"{len(body) - pos} trailing bytes after fixed {kind.value} body"
            )
        count = body[pos]
        pos += 1
        if count == 0 or pos + count != len(body):
            raise WireDecodeError(
                f"bad fixed GET subtree trailer ({count} ids, "
                f"{len(body) - pos} bytes)"
            )
        payload = list(body[pos:pos + count])
    return fast_message(
        kind, src, dst, file, payload, version, hops, origin, request_id,
    )


# -- frame encoder (zero-copy fast lane, write side) ---------------------

class FrameEncoder:
    """Reusable frame builder: append frames, flush them vectored.

    One encoder owns one ``bytearray`` scratch buffer.  :meth:`add`
    appends a complete frame in place — eight placeholder bytes, the
    body, then the header packed *into* the reserved slot — so building
    a frame performs no ``bytes`` materialisation at all.  :meth:`views`
    exposes the pending frames as ``memoryview`` slices for
    ``writer.writelines`` (which joins them immediately, taking the one
    unavoidable copy), and :meth:`flush_to` does exactly that before
    recycling the buffer.

    Buffer-ownership rule: views returned by :meth:`views` are valid
    until the next :meth:`reset` / :meth:`flush_to` / :meth:`add` —
    consumers must materialise (join/write) before the encoder is
    reused.  ``flush_to`` upholds the rule by construction; anything
    else must copy.

    ``fixed=False`` pins the encoder to generic bodies (the v2-generic
    interop profile / the pre-fast-lane wire format).
    """

    __slots__ = ("fixed", "_buf", "_bounds")

    def __init__(self, fixed: bool = True) -> None:
        self.fixed = fixed
        self._buf = bytearray()
        self._bounds: list[int] = [0]

    def add(self, msg: Message, version: int = WIRE_VERSION) -> int:
        """Append one frame; returns its size in bytes.

        On a rejected message the buffer is rolled back to the previous
        frame boundary, so a shared encoder survives encode errors.
        """
        buf = self._buf
        start = len(buf)
        buf += _HEADER_PAD
        flags = FRAME_GENERIC
        try:
            if version == WIRE_VERSION_BINARY:
                if self.fixed:
                    flags = _try_encode_fixed(buf, msg)
                if flags == FRAME_GENERIC:
                    _encode_body_v2(buf, msg)
            elif version == WIRE_VERSION:
                try:
                    buf += json.dumps(
                        message_to_dict(msg), separators=(",", ":"),
                        allow_nan=False,
                    ).encode("utf-8")
                except (TypeError, ValueError) as exc:
                    raise WireDecodeError(
                        f"message is not wire-encodable: {exc}"
                    ) from None
            else:
                raise FrameError(f"unsupported wire version {version}")
            length = len(buf) - start - HEADER.size
            if length > MAX_FRAME:
                raise FrameError(
                    f"frame body of {length} bytes exceeds {MAX_FRAME}"
                )
        except WireError:
            del buf[start:]
            raise
        HEADER.pack_into(buf, start, MAGIC, version, flags, length)
        self._bounds.append(len(buf))
        return len(buf) - start

    @property
    def pending(self) -> int:
        """Frames added since the last reset/flush."""
        return len(self._bounds) - 1

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered since the last reset/flush."""
        return len(self._buf)

    def views(self) -> list[memoryview]:
        """One ``memoryview`` per pending frame (see buffer rule above)."""
        mv = memoryview(self._buf)
        bounds = self._bounds
        return [mv[bounds[i]:bounds[i + 1]] for i in range(len(bounds) - 1)]

    def take_bytes(self) -> bytes:
        """Materialise all pending frames as one ``bytes`` and reset."""
        out = bytes(self._buf)
        self.reset()
        return out

    def reset(self) -> None:
        buf = self._buf
        if len(buf) > (1 << 18):
            # A jumbo frame passed through: drop the oversized scratch
            # buffer instead of pinning its high-water mark forever.
            self._buf = bytearray()
        else:
            del buf[:]
        self._bounds = [0]

    def flush_to(self, writer: StreamWriter) -> int:
        """Vectored write of all pending frames; returns bytes written.

        ``writelines`` joins the views into the transport's buffer
        before returning, so recycling the scratch buffer afterwards is
        safe — no transport ever holds a view into it.
        """
        if len(self._bounds) == 1:
            return 0
        views = self.views()
        try:
            writer.writelines(views)
        finally:
            for view in views:
                view.release()
        written = len(self._buf)
        self.reset()
        return written


# -- frame decoder helpers -----------------------------------------------

def _check_header(
    header, offset: int, max_frame: int, max_version: int = MAX_WIRE_VERSION
) -> tuple[int, int, int]:
    """Validate an 8-byte header; return ``(version, flags, length)``."""
    magic, version, flags, length = HEADER.unpack_from(header, offset)
    if magic != MAGIC:
        raise FrameError(f"bad magic {bytes(magic)!r} (expected {MAGIC!r})")
    if not WIRE_VERSION <= version <= max_version:
        raise FrameError(f"unsupported wire version {version}")
    if not FRAME_GENERIC <= flags <= FRAME_OVERLOAD:
        raise FrameError(f"unknown frame flags {flags}")
    if length > max_frame:
        raise FrameError(f"frame body of {length} bytes exceeds {max_frame}")
    return version, flags, length


def _decode_body(version: int, flags: int, body) -> Message:
    if version == WIRE_VERSION_BINARY:
        if flags != FRAME_GENERIC:
            return _decode_body_fixed(flags, body)
        return _decode_body_v2(body)
    if flags != FRAME_GENERIC:
        raise WireDecodeError(
            f"v1 frames carry no fixed layouts (flags {flags})"
        )
    try:
        data = json.loads(bytes(body).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireDecodeError(f"malformed frame body: {exc}") from None
    return message_from_dict(data)


def encode_message(msg: Message, version: int = WIRE_VERSION,
                   fixed: bool = True) -> bytes:
    """One complete frame (header + body) for ``msg`` at ``version``.

    The convenience byte-string form of :class:`FrameEncoder` — tests
    and one-shot callers; hot paths hold an encoder and flush vectored.
    """
    encoder = FrameEncoder(fixed=fixed)
    encoder.add(msg, version)
    return encoder.take_bytes()


def decode_message(
    frame: bytes,
    max_frame: int = MAX_FRAME,
    max_version: int = MAX_WIRE_VERSION,
) -> Message:
    """Decode one complete frame from a byte string."""
    if len(frame) < HEADER.size:
        raise FrameError(f"truncated header: {len(frame)} bytes")
    version, flags, length = _check_header(frame, 0, max_frame, max_version)
    body = memoryview(frame)[HEADER.size:]
    if len(body) != length:
        raise FrameError(f"body length {len(body)} does not match header {length}")
    return _decode_body(version, flags, body)


# -- stream I/O ----------------------------------------------------------

class FrameReader:
    """Buffered batch decoder: one ``read()``, as many frames as it holds.

    The await-per-frame cost of :func:`read_frame` (two ``readexactly``
    round trips through the stream machinery) dominated the decode path
    under load.  A ``FrameReader`` instead pulls whatever the transport
    has ready into its own buffer and slices out every complete frame
    via ``memoryview`` — zero awaits for all but the first frame of a
    burst.  Decoded messages never alias the buffer (leaf values are
    copied out), so recycling it between batches is safe.

    :meth:`read_batch` returns ``(messages, decode_errors)`` where each
    message pairs with its frame's wire version and ``decode_errors``
    counts well-framed bodies that failed to decode (framing stays
    aligned, the connection continues — same policy as
    :func:`read_frame`).  Raises :class:`EOFError` on a clean
    end-of-stream at a frame boundary and :class:`FrameError` on broken
    framing, after which the reader is unusable.
    """

    __slots__ = ("reader", "max_frame", "max_version", "decode_seconds", "_buf")

    def __init__(
        self,
        reader: StreamReader,
        max_frame: int = MAX_FRAME,
        max_version: int = MAX_WIRE_VERSION,
    ) -> None:
        self.reader = reader
        self.max_frame = max_frame
        self.max_version = max_version
        self.decode_seconds = 0.0
        """Cumulative wall time spent slicing + decoding frames (the
        bench's ``decode`` stage; read the delta between batches)."""
        self._buf = bytearray()

    def _drain_buffer(self) -> tuple[list[tuple[Message, int]], int]:
        """Slice every complete frame out of the buffer and decode it."""
        buf = self._buf
        header_size = HEADER.size
        if len(buf) < header_size:
            return [], 0
        t0 = perf_counter()
        out: list[tuple[Message, int]] = []
        errors = 0
        pos = 0
        mv = memoryview(buf)
        try:
            while len(buf) - pos >= header_size:
                version, flags, length = _check_header(
                    mv, pos, self.max_frame, self.max_version
                )
                end = pos + header_size + length
                if end > len(buf):
                    break
                try:
                    out.append(
                        (_decode_body(version, flags, mv[pos + header_size:end]),
                         version)
                    )
                except WireDecodeError:
                    errors += 1
                pos = end
        finally:
            mv.release()
        if pos:
            del buf[:pos]
        self.decode_seconds += perf_counter() - t0
        return out, errors

    async def read_batch(self) -> tuple[list[tuple[Message, int]], int]:
        """Block until at least one frame resolves; drain all available."""
        while True:
            msgs, errors = self._drain_buffer()
            if msgs or errors:
                return msgs, errors
            chunk = await self.reader.read(_READ_CHUNK)
            if not chunk:
                if self._buf:
                    raise FrameError(
                        f"connection closed mid-frame ({len(self._buf)} bytes)"
                    )
                raise EOFError("connection closed")
            self._buf += chunk


async def read_frame(
    reader: StreamReader,
    max_frame: int = MAX_FRAME,
    max_version: int = MAX_WIRE_VERSION,
) -> tuple[Message, int]:
    """Read one message off a stream; return it with its wire version.

    The version is how receivers learn a peer's codec: replies on the
    same connection should not exceed it.  ``max_version`` is this
    side's own ceiling — a v1-only node rejects v2 frames at the
    framing layer.

    Raises :class:`EOFError` on a clean end-of-stream at a frame
    boundary, :class:`FrameError` on mid-frame truncation or a broken
    header, :class:`WireDecodeError` on a bad body.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed") from None
        raise FrameError(
            f"connection closed mid-header ({len(exc.partial)} bytes)"
        ) from None
    version, flags, length = _check_header(header, 0, max_frame, max_version)
    try:
        body = await reader.readexactly(length)
    except IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-body ({len(exc.partial)}/{length} bytes)"
        ) from None
    return _decode_body(version, flags, body), version


async def read_message(
    reader: StreamReader,
    max_frame: int = MAX_FRAME,
    max_version: int = MAX_WIRE_VERSION,
) -> Message:
    """Read exactly one message off a stream (see :func:`read_frame`)."""
    msg, _version = await read_frame(reader, max_frame, max_version)
    return msg


async def write_message(
    writer: StreamWriter, msg: Message, version: int = WIRE_VERSION,
    fixed: bool = True,
) -> None:
    """Write one message vectored and flush it through the transport."""
    encoder = FrameEncoder(fixed=fixed)
    encoder.add(msg, version)
    encoder.flush_to(writer)
    await writer.drain()
