"""Oracle conformance: the live runtime must equal the synchronous model.

The live cluster records every placement-mutating decision in its
operation log (:class:`repro.runtime.cluster.OpRecord`): inserts,
updates (with the assigned version), replicate decisions (with the
deciding holder, its observed forwarder rates, and the rng seed the
policy drew from), and churn.  :func:`replay_oplog` feeds that log, in
decision order, through the synchronous :class:`LessLogSystem` — the
oracle — and :func:`diff_states` compares final state field by field:

* **replica placement** — file → {holder PID → inserted/replicated},
* **version map** — file → catalog version,
* **membership** — the authoritative §5 status word, and every live
  node's own word (broadcasts must have converged),
* **faults** — files lost to churn.

A clean diff means the asyncio service — frames, per-node tasks,
reroutes and all — implements exactly the paper's algorithms as the
synchronous model states them.

Determinism caveat: replication decisions taken *concurrently* with an
in-flight update can copy the pre-update version, which the sequential
oracle cannot express.  :func:`apply_ops` therefore drains the cluster
between operations; load *bursts* (many concurrent GETs) are fine —
GETs do not mutate placement, and recorded rates/seeds make the
sweeper's autonomous decisions replayable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..cluster.churn import (
    arrive_node,
    depart_node,
    kill_node,
    recover_node,
    reinsert_node,
    settle_node,
)
from ..cluster.system import LessLogSystem
from ..core.errors import ConfigurationError
from .client import RuntimeClient
from .cluster import LiveCluster, OpRecord, RuntimeConfig

__all__ = [
    "Op",
    "WorkloadSpec",
    "generate_ops",
    "apply_ops",
    "replay_oplog",
    "ClusterStateSnapshot",
    "snapshot_of",
    "diff_snapshot",
    "diff_states",
    "verify_snapshot",
    "ConformanceReport",
    "run_conformance",
]


@dataclass(frozen=True)
class Op:
    """One scripted operation against the live cluster."""

    kind: str  # insert | get | update | overload | join | leave | crash
    name: str = ""
    payload: Any = None
    pid: int = -1
    seed: int = 0


@dataclass(frozen=True)
class WorkloadSpec:
    """A seeded conformance scenario."""

    m: int
    b: int = 0
    seed: int = 0
    files: int = 6
    ops: int = 40
    churn: bool = True
    min_live: int = 3

    def __post_init__(self) -> None:
        if self.files < 1 or self.ops < 0:
            raise ConfigurationError("files must be >= 1 and ops >= 0")
        if self.min_live < 1:
            raise ConfigurationError("min_live must be >= 1")


def generate_ops(spec: WorkloadSpec) -> list[Op]:
    """A seeded op sequence: inserts first, then a mixed tail.

    Tracks the live set so churn ops stay legal (join a dead PID,
    leave/crash a live one, never below ``min_live``) and entry nodes
    are live at issue time.
    """
    rng = random.Random(spec.seed)
    total = 1 << spec.m
    live = set(range(total))
    names = [f"file-{spec.seed}-{i}" for i in range(spec.files)]
    ops = [Op(kind="insert", name=name, payload=f"v1:{name}") for name in names]
    kinds = ["get", "get", "get", "update", "overload"]
    if spec.churn:
        kinds += ["join", "leave", "crash"]
    for step in range(spec.ops):
        kind = rng.choice(kinds)
        if kind in ("leave", "crash") and len(live) <= spec.min_live:
            kind = "get"
        if kind == "join" and len(live) == total:
            kind = "get"
        name = rng.choice(names)
        if kind == "get":
            ops.append(Op(kind="get", name=name))
        elif kind == "update":
            ops.append(Op(kind="update", name=name, payload=f"v@{step}:{name}"))
        elif kind == "overload":
            ops.append(Op(kind="overload", name=name, seed=rng.randrange(1 << 30)))
        elif kind == "join":
            pid = rng.choice(sorted(set(range(total)) - live))
            live.add(pid)
            ops.append(Op(kind="join", pid=pid))
        else:  # leave | crash
            pid = rng.choice(sorted(live))
            live.discard(pid)
            ops.append(Op(kind=kind, pid=pid))
    return ops


async def apply_ops(cluster: LiveCluster, ops: list[Op], seed: int = 0) -> None:
    """Drive a live cluster through ``ops``, draining between each.

    Client operations enter at a seeded live node over a real client
    connection; OVERLOAD ops resolve their holder deterministically
    (sorted holders, indexed by the op seed) and fire the admin knob.
    """
    rng = random.Random(seed ^ 0x5EED)
    for op in ops:
        if op.kind in ("insert", "get", "update"):
            entry = rng.choice(sorted(cluster.nodes))
            client = await RuntimeClient(cluster, entry).connect()
            try:
                if op.kind == "insert":
                    await client.insert(op.name, op.payload)
                elif op.kind == "get":
                    await client.get(op.name)
                else:
                    await client.update(op.name, op.payload)
            finally:
                await client.close()
            await cluster.drain()
        elif op.kind == "overload":
            holders = sorted(cluster.holders(op.name))
            if not holders:
                continue
            holder = holders[op.seed % len(holders)]
            await cluster.trigger_overload(holder, op.name, op.seed)
            await cluster.drain()
        elif op.kind == "join":
            await cluster.join(op.pid)
        elif op.kind == "leave":
            await cluster.leave(op.pid)
        elif op.kind == "crash":
            await cluster.crash(op.pid)
        else:  # pragma: no cover - generator never emits others
            raise ConfigurationError(f"unknown op kind {op.kind!r}")
    await cluster.quiesce()


def replay_oplog(
    oplog: list[OpRecord], config: RuntimeConfig, initial_live: tuple[int, ...]
) -> LessLogSystem:
    """Replay a live cluster's operation log through the oracle.

    Besides the one-shot churn kinds (``join``/``leave``/``crash``,
    kept for older logs), the log can carry *split* churn halves —
    ``kill``/``recover``, ``arrive``/``settle``, ``depart``/``reinsert``
    — appended when their effects landed, so replication decisions
    recorded between the halves replay against the membership they
    actually saw.
    """
    system = LessLogSystem(
        m=config.m, b=config.b, live=set(initial_live), seed=config.seed
    )
    # pid → the inserted copies a "depart" popped, awaiting "reinsert".
    departed: dict[int, list[tuple[str, Any, int]]] = {}
    for rec in oplog:
        if rec.kind == "insert":
            system.insert(rec.name, rec.payload)
        elif rec.kind == "update":
            result = system.update(rec.name, rec.payload)
            if result.version != rec.version:
                raise ConfigurationError(
                    f"replay version skew on {rec.name!r}: live assigned "
                    f"v{rec.version}, oracle v{result.version}"
                )
        elif rec.kind == "replicate":
            system.replicate(
                rec.name,
                rec.pid,
                forwarder_rates=rec.rates,
                rng=random.Random(rec.seed),
            )
        elif rec.kind == "remove":
            # Counter-based idle decay in the live runtime; the oracle
            # runs the same removal (plus its orphan GC).
            system.remove_replica(rec.name, rec.pid)
        elif rec.kind == "join":
            system.join(rec.pid)
        elif rec.kind == "leave":
            system.leave(rec.pid)
        elif rec.kind == "crash":
            system.fail(rec.pid)
        elif rec.kind == "kill":
            kill_node(system, rec.pid)
        elif rec.kind == "recover":
            recover_node(system, rec.pid)
        elif rec.kind == "arrive":
            arrive_node(system, rec.pid)
        elif rec.kind == "settle":
            settle_node(system, rec.pid)
        elif rec.kind == "depart":
            departed[rec.pid] = depart_node(system, rec.pid)
        elif rec.kind == "reinsert":
            reinsert_node(system, rec.pid, departed.pop(rec.pid, []))
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unknown oplog record {rec.kind!r}")
    return system


@dataclass
class ConformanceReport:
    """Field-by-field comparison of live cluster vs oracle."""

    mismatches: list[str] = field(default_factory=list)
    ops_replayed: int = 0
    files: int = 0
    replicas: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        head = (
            f"conformance: {self.ops_replayed} ops replayed, "
            f"{self.files} files, {self.replicas} replicas created"
        )
        if self.ok:
            return f"{head} -- OK"
        lines = [f"{head} -- {len(self.mismatches)} MISMATCH(ES)"]
        lines += [f"  - {m}" for m in self.mismatches]
        return "\n".join(lines)


@dataclass
class ClusterStateSnapshot:
    """Everything the conformance diff reads, detached from live objects.

    A single-process run takes it straight off the `LiveCluster`
    (:func:`snapshot_of`); a scale-out run assembles the same shape
    from per-worker store reports plus the bootstrap's catalog and
    oplog, then both flow through :func:`diff_snapshot`.  The snapshot
    also carries the oplog and replay inputs so :func:`verify_snapshot`
    is self-contained.
    """

    config: RuntimeConfig
    initial_live: tuple[int, ...]
    oplog: list[OpRecord]
    live_pids: set[int]
    node_words: dict[int, set[int]]
    """PID → that node's *own* word's live set (broadcast convergence)."""
    catalog: set[str]
    versions: dict[str, int]
    placement: dict[str, dict[int, str]]
    faults: list[str]
    replicas_created: int = 0


def snapshot_of(cluster: LiveCluster) -> ClusterStateSnapshot:
    """Freeze a quiesced in-process cluster for the conformance diff."""
    return ClusterStateSnapshot(
        config=cluster.config,
        initial_live=cluster.initial_live,
        oplog=list(cluster.oplog),
        live_pids=set(cluster.word.live_pids()),
        node_words={
            pid: set(node.word.live_pids())
            for pid, node in sorted(cluster.nodes.items())
        },
        catalog=set(cluster.catalog),
        versions=cluster.version_map(),
        placement=cluster.placement(),
        faults=list(cluster.faults),
        replicas_created=cluster.replicas_created(),
    )


def diff_snapshot(
    snap: ClusterStateSnapshot, system: LessLogSystem
) -> ConformanceReport:
    """Compare a cluster-state snapshot against a replayed oracle."""
    report = ConformanceReport(
        ops_replayed=len(snap.oplog),
        files=len(snap.catalog),
        replicas=snap.replicas_created,
    )
    bad = report.mismatches

    live_pids = snap.live_pids
    oracle_pids = set(system.membership.live_pids())
    if live_pids != oracle_pids:
        bad.append(
            f"membership: live word {sorted(live_pids)} != "
            f"oracle {sorted(oracle_pids)}"
        )
    for pid in sorted(snap.node_words):
        node_view = snap.node_words[pid]
        if node_view != live_pids:
            bad.append(
                f"membership: P({pid})'s word {sorted(node_view)} diverges "
                f"from authoritative {sorted(live_pids)}"
            )

    live_files = snap.catalog
    oracle_files = set(system.catalog)
    if live_files != oracle_files:
        bad.append(
            f"catalog: live {sorted(live_files)} != oracle {sorted(oracle_files)}"
        )

    oracle_versions = {n: e.version for n, e in system.catalog.items()}
    for name in sorted(live_files & oracle_files):
        if snap.versions[name] != oracle_versions[name]:
            bad.append(
                f"version: {name!r} live v{snap.versions[name]} != "
                f"oracle v{oracle_versions[name]}"
            )

    for name in sorted(live_files & oracle_files):
        oracle_holders = {
            pid: system.stores[pid].get(name, count_access=False).origin.value
            for pid in system.holders_of(name)
        }
        if snap.placement.get(name, {}) != oracle_holders:
            bad.append(
                f"placement: {name!r} live {snap.placement.get(name, {})} != "
                f"oracle {oracle_holders}"
            )

    if sorted(snap.faults) != sorted(system.faults):
        bad.append(
            f"faults: live {sorted(snap.faults)} != oracle {sorted(system.faults)}"
        )
    return report


def verify_snapshot(snap: ClusterStateSnapshot) -> ConformanceReport:
    """Replay a snapshot's own oplog through a fresh oracle and diff it.

    The one call the scale-out bench and supervisor need: the snapshot
    carries config, initial membership, and the decision-ordered oplog,
    so central replay needs nothing else from the (now dead) processes.
    """
    system = replay_oplog(snap.oplog, snap.config, snap.initial_live)
    system.check_invariants()
    return diff_snapshot(snap, system)


def diff_states(cluster: LiveCluster, system: LessLogSystem) -> ConformanceReport:
    """Compare a quiesced live cluster against a replayed oracle."""
    return diff_snapshot(snapshot_of(cluster), system)


async def run_conformance(
    spec: WorkloadSpec, config: RuntimeConfig | None = None
) -> ConformanceReport:
    """End to end: generate, run live, replay through the oracle, diff.

    ``config`` overrides the cluster's runtime knobs (codec pinning,
    batching, coalescing, ...); its ``m``/``b``/``seed`` must match the
    spec's so the generated workload stays legal.
    """
    if config is None:
        config = RuntimeConfig(m=spec.m, b=spec.b, seed=spec.seed)
    elif (config.m, config.b, config.seed) != (spec.m, spec.b, spec.seed):
        raise ConfigurationError(
            "run_conformance: config m/b/seed must match the workload spec"
        )
    cluster = await LiveCluster.start(config)
    try:
        await apply_ops(cluster, generate_ops(spec), seed=spec.seed)
        system = replay_oplog(cluster.oplog, config, cluster.initial_live)
        system.check_invariants()
        return diff_states(cluster, system)
    finally:
        await cluster.shutdown()
