"""Multi-file fluid evaluation with shared node capacity.

The paper's §6 experiment places a single popular file; a real
deployment hosts many, and the overload criterion is the node's *total*
service rate across files.  This engine extends the fluid model to a
catalog: each file has its own lookup tree and holder set, flows are
computed per file, loads are summed per node, and an overloaded node
sheds its locally hottest file via the placement policy — exactly what
a LessLog node would do with its aggregate request counter.

This is an extension study (the paper's future-work direction of
"a large-scaled P2P system"), not a reproduction target.
"""

from __future__ import annotations

import random
from bisect import insort
from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import PlacementContext, ReplicationPolicy
from ..core.errors import ConfigurationError
from ..core.liveness import LivenessView
from ..core.tree import LookupTree
from .fluid import FluidSimulation

__all__ = ["FileSpec", "MultiFileBalanceResult", "MultiFileFluid"]


@dataclass
class FileSpec:
    """One catalogued file: its target and its demand vector."""

    name: str
    target: int
    entry_rates: np.ndarray


@dataclass
class MultiFileBalanceResult:
    """Outcome of a multi-file balance run."""

    replicas_created: int
    placements: list[tuple[str, int, int]] = field(default_factory=list)
    """(file, source, target) per placement, in order."""

    node_loads: dict[int, float] = field(default_factory=dict)
    unresolved: list[int] = field(default_factory=list)

    @property
    def balanced(self) -> bool:
        return not self.unresolved

    def replicas_of(self, name: str) -> int:
        return sum(1 for f, _, _ in self.placements if f == name)


class MultiFileFluid:
    """Fluid model over a catalog of files with shared node capacity."""

    def __init__(
        self,
        m: int,
        liveness: LivenessView,
        files: list[FileSpec],
        capacity: float,
        rng: random.Random | None = None,
        reference: bool = False,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if not files:
            raise ConfigurationError("at least one file is required")
        names = [f.name for f in files]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate file names in catalog")
        self.m = m
        self.liveness = liveness
        self.capacity = capacity
        self.rng = rng if rng is not None else random.Random(0)
        self.reference = reference
        """Use the per-round full dict flow passes (equivalence oracle)."""
        self.sims: dict[str, FluidSimulation] = {}
        for spec in files:
            tree = LookupTree(spec.target, m)
            self.sims[spec.name] = FluidSimulation(
                tree,
                liveness,
                spec.entry_rates,
                capacity=capacity,  # per-file cap unused; we gate on totals
                rng=self.rng,
                reference=reference,
            )

    def _per_file_flows(self) -> dict[str, object]:
        """One flow pass per file (the per-round measurement)."""
        return {name: sim.compute_flows() for name, sim in self.sims.items()}

    def node_loads(self) -> dict[int, float]:
        """Total served rate per node, summed across files."""
        loads: dict[int, float] = {}
        for flows in self._per_file_flows().values():
            for pid, served in flows.served.items():
                loads[pid] = loads.get(pid, 0.0) + served
        return loads

    @staticmethod
    def _hottest_file_at(pid: int, served_by_file: dict[str, dict[int, float]]) -> str | None:
        """The file ``pid`` serves the most traffic for (among holds)."""
        best, best_rate = None, 0.0
        for name in sorted(served_by_file):
            rate = served_by_file[name].get(pid, 0.0)
            if rate > best_rate:
                best, best_rate = name, rate
        return best

    @staticmethod
    def _sum_loads(served_by_file: dict[str, dict[int, float]]) -> dict[int, float]:
        """Per-node totals; file-order accumulation fixes float order."""
        loads: dict[int, float] = {}
        for served in served_by_file.values():
            for pid, rate in served.items():
                loads[pid] = loads.get(pid, 0.0) + rate
        return loads

    def balance(
        self,
        policy: ReplicationPolicy,
        max_rounds: int = 10_000,
    ) -> MultiFileBalanceResult:
        """Round-based balancing on *total* node load.

        Each round, every overloaded node replicates its locally
        hottest held file via ``policy``; flows are re-measured between
        rounds.  A node with no move left is saturated permanently.

        The default path keeps one running inflow array per file and,
        after a placement, re-flows only the placed file's forwarding
        path; ``reference=True`` recomputes every file's dict flow pass
        each round.  Both produce byte-identical placements and loads.
        """
        placements: list[tuple[str, int, int]] = []
        saturated: set[int] = set()
        fast = not self.reference
        accs: dict[str, object] = {}
        orders: dict[str, list[int]] = {}
        hmasks: dict[str, object] = {}
        fwd_cache: dict[str, dict] = {}
        if fast:
            for name, sim in self.sims.items():
                hmasks[name] = sim._holder_mask()
                accs[name] = sim._cascade(hmasks[name])
                vids, live = sim.table.vids, sim.table.live
                orders[name] = sorted(
                    (p for p in sim.holders if live[p]),
                    key=lambda p: vids[p],
                )
        for _ in range(max_rounds):
            if fast:
                served_by_file = {
                    name: sim._served_of(accs[name], orders[name])
                    for name, sim in self.sims.items()
                }
            else:
                fwd_cache = self._per_file_flows()
                served_by_file = {
                    name: flows.served for name, flows in fwd_cache.items()
                }
            loads = self._sum_loads(served_by_file)
            over = sorted(
                (pid for pid, load in loads.items()
                 if load > self.capacity and pid not in saturated),
                key=lambda p: (-loads[p], p),
            )
            if not over:
                break
            progress = False
            for pid in over:
                name = self._hottest_file_at(pid, served_by_file)
                if name is None:
                    saturated.add(pid)
                    continue
                sim = self.sims[name]
                context = PlacementContext(
                    rng=self.rng,
                    forwarder_rates=(
                        sim._forwarders_of(accs[name], pid) if fast
                        else fwd_cache[name].forwarders.get(pid, {})
                    ),
                    table=sim.table if fast else None,
                    holder_mask=hmasks[name] if fast else None,
                )
                target = policy.choose(
                    sim.tree, pid, self.liveness, sim.holders, context
                )
                if target is None or target in sim.holders:
                    saturated.add(pid)
                    continue
                sim.holders.add(target)
                if fast:
                    hmasks[name][target] = True
                    sim._reflow_path(accs[name], target)
                    vids = sim.table.vids
                    insort(orders[name], target, key=lambda p: vids[p])
                placements.append((name, pid, target))
                progress = True
            if not progress:
                break
        else:
            raise ConfigurationError(
                f"multi-file balance did not converge within {max_rounds} rounds"
            )
        if fast:
            final = self._sum_loads({
                name: sim._served_of(accs[name], orders[name])
                for name, sim in self.sims.items()
            })
        else:
            final = self.node_loads()
        unresolved = sorted(
            pid for pid, load in final.items() if load > self.capacity
        )
        return MultiFileBalanceResult(
            replicas_created=len(placements),
            placements=placements,
            node_loads=final,
            unresolved=unresolved,
        )

    def total_replicas(self) -> int:
        return sum(sim.replica_count() for sim in self.sims.values())
