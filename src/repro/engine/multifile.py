"""Multi-file fluid evaluation with shared node capacity.

The paper's §6 experiment places a single popular file; a real
deployment hosts many, and the overload criterion is the node's *total*
service rate across files.  This engine extends the fluid model to a
catalog: each file has its own lookup tree and holder set, flows are
computed per file, loads are summed per node, and an overloaded node
sheds its locally hottest file via the placement policy — exactly what
a LessLog node would do with its aggregate request counter.

This is an extension study (the paper's future-work direction of
"a large-scaled P2P system"), not a reproduction target.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import PlacementContext, ReplicationPolicy
from ..core.errors import ConfigurationError
from ..core.liveness import LivenessView
from ..core.tree import LookupTree
from .fluid import FluidSimulation

__all__ = ["FileSpec", "MultiFileBalanceResult", "MultiFileFluid"]


@dataclass
class FileSpec:
    """One catalogued file: its target and its demand vector."""

    name: str
    target: int
    entry_rates: np.ndarray


@dataclass
class MultiFileBalanceResult:
    """Outcome of a multi-file balance run."""

    replicas_created: int
    placements: list[tuple[str, int, int]] = field(default_factory=list)
    """(file, source, target) per placement, in order."""

    node_loads: dict[int, float] = field(default_factory=dict)
    unresolved: list[int] = field(default_factory=list)

    @property
    def balanced(self) -> bool:
        return not self.unresolved

    def replicas_of(self, name: str) -> int:
        return sum(1 for f, _, _ in self.placements if f == name)


class MultiFileFluid:
    """Fluid model over a catalog of files with shared node capacity."""

    def __init__(
        self,
        m: int,
        liveness: LivenessView,
        files: list[FileSpec],
        capacity: float,
        rng: random.Random | None = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if not files:
            raise ConfigurationError("at least one file is required")
        names = [f.name for f in files]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate file names in catalog")
        self.m = m
        self.liveness = liveness
        self.capacity = capacity
        self.rng = rng if rng is not None else random.Random(0)
        self.sims: dict[str, FluidSimulation] = {}
        for spec in files:
            tree = LookupTree(spec.target, m)
            self.sims[spec.name] = FluidSimulation(
                tree,
                liveness,
                spec.entry_rates,
                capacity=capacity,  # per-file cap unused; we gate on totals
                rng=self.rng,
            )

    def _per_file_flows(self) -> dict[str, object]:
        """One flow pass per file (the per-round measurement)."""
        return {name: sim.compute_flows() for name, sim in self.sims.items()}

    def node_loads(self) -> dict[int, float]:
        """Total served rate per node, summed across files."""
        loads: dict[int, float] = {}
        for flows in self._per_file_flows().values():
            for pid, served in flows.served.items():
                loads[pid] = loads.get(pid, 0.0) + served
        return loads

    @staticmethod
    def _hottest_file_at(pid: int, per_file_flows: dict) -> str | None:
        """The file ``pid`` serves the most traffic for (among holds)."""
        best, best_rate = None, 0.0
        for name in sorted(per_file_flows):
            rate = per_file_flows[name].served.get(pid, 0.0)
            if rate > best_rate:
                best, best_rate = name, rate
        return best

    def balance(
        self,
        policy: ReplicationPolicy,
        max_rounds: int = 10_000,
    ) -> MultiFileBalanceResult:
        """Round-based balancing on *total* node load.

        Each round, every overloaded node replicates its locally
        hottest held file via ``policy``; flows are recomputed between
        rounds.  A node with no move left is saturated permanently.
        """
        placements: list[tuple[str, int, int]] = []
        saturated: set[int] = set()
        for _ in range(max_rounds):
            per_file = self._per_file_flows()
            loads: dict[int, float] = {}
            for flows in per_file.values():
                for pid, served in flows.served.items():
                    loads[pid] = loads.get(pid, 0.0) + served
            over = sorted(
                (pid for pid, load in loads.items()
                 if load > self.capacity and pid not in saturated),
                key=lambda p: (-loads[p], p),
            )
            if not over:
                break
            progress = False
            for pid in over:
                name = self._hottest_file_at(pid, per_file)
                if name is None:
                    saturated.add(pid)
                    continue
                sim = self.sims[name]
                context = PlacementContext(
                    rng=self.rng,
                    forwarder_rates=per_file[name].forwarders.get(pid, {}),
                )
                target = policy.choose(
                    sim.tree, pid, self.liveness, sim.holders, context
                )
                if target is None or target in sim.holders:
                    saturated.add(pid)
                    continue
                sim.holders.add(target)
                placements.append((name, pid, target))
                progress = True
            if not progress:
                break
        else:
            raise ConfigurationError(
                f"multi-file balance did not converge within {max_rounds} rounds"
            )
        final = self.node_loads()
        unresolved = sorted(
            pid for pid, load in final.items() if load > self.capacity
        )
        return MultiFileBalanceResult(
            replicas_created=len(placements),
            placements=placements,
            node_loads=final,
            unresolved=unresolved,
        )

    def total_replicas(self) -> int:
        return sum(sim.replica_count() for sim in self.sims.values())
