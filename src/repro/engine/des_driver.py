"""Request-level discrete-event simulation of the §6 experiments.

Where the fluid engine computes steady-state flows, this driver plays
the same experiment as actual traffic: Poisson client requests enter at
nodes, GET messages climb the lookup tree over a latency-delayed
transport, nodes measure their own service rate over a sliding window,
and an overloaded holder autonomously fires one replication (through
the same policy objects) with a cooldown while the measurement settles.

It exists to validate the fluid engine's shapes dynamically — the two
engines agree on orderings and approximate replica counts — and to
exercise the transport / load-monitor / membership substrates end to
end, including node failure mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..baselines.base import PlacementContext, ReplicationPolicy
from ..core.errors import ConfigurationError, NoLiveNodeError
from ..core.routing import first_alive_ancestor, storage_node
from ..core.subtree import SubtreeView, check_b, insert_targets, subtree_of_pid
from ..core.tree import LookupTree
from ..net.message import Message, MessageKind
from ..net.reliability import RequestTracker, RetryPolicy
from ..net.topology import ConstantLatency, LatencyModel
from ..node.loadmon import LoadMonitor
from ..node.membership import StatusWord
from ..node.storage import FileOrigin, FileStore
from ..sim.engine import Engine
from ..sim.metrics import MetricsRegistry
from ..sim.rng import RngHub

__all__ = ["DesResult", "DesExperiment"]

CLIENT = -1
"""Transport address representing the client edge."""


@dataclass
class DesResult:
    """Outcome of one DES run."""

    replicas_created: int
    requests_sent: int
    requests_served: int
    faults: int
    max_observed_rate: float
    """Peak windowed service rate any node saw during the run."""

    final_max_rate: float = 0.0
    """Highest per-node service rate at the end of the workload."""

    replica_events: list[tuple[float, int, int]] = field(default_factory=list)
    """(time, source, target) for every replication."""

    hop_mean: float = 0.0
    hop_max: float = 0.0
    latency_mean: float = 0.0
    """Mean client-observed response time (request sent → reply)."""
    latency_p95: float = 0.0

    requests_completed: int = 0
    """Requests the reliability layer saw through to a reply (0 when
    the layer is off — fire-and-forget runs don't track completion)."""
    requests_retried: int = 0
    dead_letters: int = 0
    """Requests that exhausted their retry budget."""


class _DesNode:
    """One message-driven node of the experiment."""

    def __init__(self, pid: int, exp: "DesExperiment") -> None:
        self.pid = pid
        self.exp = exp
        self.store = FileStore()
        self.monitor = LoadMonitor(capacity=exp.capacity, window=exp.window)
        self.last_replication = -float("inf")
        self.overload_streak = 0
        # In oracle mode every node shares the ground-truth status
        # word; in gossip mode each node routes on its own copy, kept
        # fresh only by REGISTER_* broadcasts (§5.1).
        if exp.gossip:
            from ..node.gossip import MembershipAgent

            self.agent = MembershipAgent(
                pid, exp.membership.copy(), exp.transport
            )
            self.membership = self.agent.word
        else:
            self.agent = None
            self.membership = exp.membership
        exp.transport.register(pid, self.on_message)

    # -- message handling -------------------------------------------------

    def on_message(self, msg: Message) -> None:
        if self.agent is not None and self.agent.handle(msg):
            return
        if msg.kind is MessageKind.GET:
            self._handle_get(msg)
        elif msg.kind is MessageKind.REPLICATE:
            payload, version = msg.payload
            self.store.store(
                msg.file, payload, version, FileOrigin.REPLICATED,
                now=self.exp.engine.now,
            )
        elif msg.kind is MessageKind.INSERT:
            payload, version = msg.payload
            self.store.store(
                msg.file, payload, version, FileOrigin.INSERTED,
                now=self.exp.engine.now,
            )
        elif msg.kind is MessageKind.UPDATE:
            self._handle_update(msg)
        # Replies to clients are terminal; nothing else reaches nodes here.

    def _handle_update(self, msg: Message) -> None:
        """§2.2 top-down update: refresh and re-broadcast, or discard."""
        exp = self.exp
        if msg.file not in self.store:
            exp.metrics.counter("des.update_discards").inc()
            return
        self.store.update(msg.file, msg.payload, msg.version)
        exp.metrics.counter("des.update_applied").inc()
        for child in self._broadcast_children():
            exp.transport.send(msg.forwarded(self.pid, child))

    def _broadcast_children(self) -> list[int]:
        """This node's advanced children list (within its subtree)."""
        exp = self.exp
        from ..core.children import advanced_children_list

        if exp.b == 0:
            return advanced_children_list(exp.tree, self.pid, self.membership)
        from ..core.subtree import SvidLiveness, identity_tree

        sid = subtree_of_pid(exp.tree, self.pid, exp.b)
        view = SubtreeView(exp.tree, exp.b, sid)
        itree = identity_tree(view)
        sliveness = SvidLiveness(view, self.membership)
        return [
            view.pid_of_svid(s)
            for s in advanced_children_list(
                itree, view.svid_of(self.pid), sliveness
            )
        ]

    def _handle_get(self, msg: Message) -> None:
        exp = self.exp
        now = exp.engine.now
        if msg.file in self.store:
            self.store.get(msg.file)
            self.monitor.record_served(msg.file, msg.src, now)
            exp.metrics.counter("des.served").inc()
            exp.metrics.histogram("des.hops").observe(float(msg.hops))
            # §2.2: the file is returned *directly to the client*, not
            # back down the forwarding chain.
            exp.transport.send(
                replace(msg.reply(MessageKind.GET_REPLY), dst=CLIENT)
            )
            return
        if exp.b == 0:
            self._forward_whole_tree(msg)
        else:
            self._forward_within_subtree(msg)

    def _forward_whole_tree(self, msg: Message) -> None:
        exp = self.exp
        nxt = first_alive_ancestor(exp.tree, self.pid, self.membership)
        if nxt is None:
            home = storage_node(exp.tree, self.membership)
            if home != self.pid:
                exp.transport.send(msg.forwarded(self.pid, home))
                return
            # We are the storage node and have no copy: a fault (§3).
            self._fault(msg)
            return
        exp.transport.send(msg.forwarded(self.pid, nxt))

    def _forward_within_subtree(self, msg: Message) -> None:
        """§4 routing: stay inside the current subtree, migrate on fault.

        The message payload carries the subtree identifiers left to try
        (``None`` on first entry from a client).
        """
        exp = self.exp
        remaining = msg.payload
        if remaining is None:
            own = subtree_of_pid(exp.tree, self.pid, exp.b)
            count = 1 << exp.b
            remaining = [(own + off) % count for off in range(count)]
        sid = remaining[0]
        view = SubtreeView(exp.tree, exp.b, sid)
        if view.contains(self.pid):
            nxt = view.first_alive_ancestor(self.pid, self.membership)
            if nxt is not None:
                exp.transport.send(
                    replace(msg, payload=remaining).forwarded(self.pid, nxt)
                )
                return
            try:
                home = view.storage_node(self.membership)
            except NoLiveNodeError:
                home = self.pid  # empty subtree: fall through to migrate
            if home != self.pid:
                exp.transport.send(
                    replace(msg, payload=remaining).forwarded(self.pid, home)
                )
                return
        # Fault in this subtree: migrate by changing the identifier (§4).
        for next_sid in remaining[1:]:
            next_view = SubtreeView(exp.tree, exp.b, next_sid)
            try:
                target = next_view.storage_node(self.membership)
            except NoLiveNodeError:
                continue
            exp.metrics.counter("des.migrations").inc()
            exp.transport.send(
                replace(msg, payload=remaining[remaining.index(next_sid):])
                .forwarded(self.pid, target)
            )
            return
        self._fault(msg)

    def _fault(self, msg: Message) -> None:
        self.exp.metrics.counter("des.faults").inc()
        self.exp.transport.send(
            replace(msg.reply(MessageKind.GET_FAULT), dst=CLIENT)
        )

    # -- autonomous overload control ---------------------------------------

    def _maybe_drop_cold_replicas(self, now: float) -> None:
        """§2.2's counter-based removal, run locally by each node.

        A *replicated* copy whose served rate stayed below the removal
        threshold (and that has been held for at least one measurement
        window) is dropped; inserted copies are never touched.
        """
        exp = self.exp
        if exp.removal_threshold <= 0:
            return
        for copy in list(self.store.replicated_files()):
            if now - copy.stored_at < exp.window:
                continue  # too young to judge
            if self.monitor.file_rate(copy.name, now) < exp.removal_threshold:
                self.store.discard(copy.name)
                exp.metrics.counter("des.replicas_removed").inc()
                exp.removal_events.append((now, self.pid, copy.name))

    def overload_check(self):
        """Generator process: periodically shed load when overloaded."""
        exp = self.exp
        while True:
            yield exp.check_interval
            now = exp.engine.now
            self._maybe_drop_cold_replicas(now)
            rate = self.monitor.total_rate(now)
            if rate > exp.max_rate_seen:
                exp.max_rate_seen = rate
            if now - self.last_replication < exp.cooldown:
                continue
            if self.monitor.total_rate(now) <= exp.detection_threshold:
                self.overload_streak = 0
                continue
            # Require sustained overload before replicating: a Poisson
            # stream at exactly the capacity crosses the threshold in
            # many windows by chance alone.
            self.overload_streak += 1
            if self.overload_streak < exp.streak_required:
                continue
            self.overload_streak = 0
            file = self.monitor.hottest_file(now)
            if file is None or file not in self.store:
                continue
            target = exp.choose_target(
                self.pid, file, self.monitor.source_rates(file, now)
            )
            if target is None:
                continue
            copy = self.store.get(file, count_access=False)
            exp.transport.send(
                Message(
                    kind=MessageKind.REPLICATE,
                    src=self.pid,
                    dst=target,
                    file=file,
                    payload=(copy.payload, copy.version),
                )
            )
            self.last_replication = now
            exp.replica_events.append((now, self.pid, target))


class DesExperiment:
    """One single-popular-file experiment over the DES substrate."""

    def __init__(
        self,
        m: int,
        target: int,
        entry_rates: np.ndarray,
        capacity: float = 100.0,
        policy: ReplicationPolicy | None = None,
        dead: set[int] | None = None,
        b: int = 0,
        latency: LatencyModel | None = None,
        window: float = 1.0,
        check_interval: float = 0.25,
        cooldown: float = 1.0,
        streak_required: int = 3,
        detection_margin: float = 2.0,
        gossip: bool = False,
        detection_delay: float = 0.5,
        removal_threshold: float = 0.0,
        seed: int = 0,
        file: str = "popular-file",
        loss_rate: float = 0.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        from ..baselines.lesslog_policy import LessLogPolicy
        from ..net.transport import Transport

        dead = dead or set()
        check_b(b, m)
        self.m = m
        self.b = b
        self.gossip = gossip
        self.detection_delay = detection_delay
        if removal_threshold < 0:
            raise ConfigurationError("removal_threshold must be non-negative")
        self.removal_threshold = removal_threshold
        self.removal_events: list[tuple[float, int, str]] = []
        self.tree = LookupTree(target, m)
        self.membership = StatusWord(
            m, (p for p in range(1 << m) if p not in dead)
        )
        if self.membership.live_count() == 0:
            raise ConfigurationError("no live nodes")
        self.capacity = capacity
        self.window = window
        self.check_interval = check_interval
        self.cooldown = cooldown
        if streak_required < 1:
            raise ConfigurationError("streak_required must be at least 1")
        self.streak_required = streak_required
        # A window at true rate = capacity counts Poisson(capacity *
        # window) events; declare overload only beyond a detection
        # margin of sampling standard deviations above capacity so
        # at-capacity holders do not keep splitting on noise.
        self.detection_margin = detection_margin
        self.detection_threshold = capacity + detection_margin * (
            (capacity * window) ** 0.5 / window
        )
        self.policy = policy if policy is not None else LessLogPolicy()
        self.file = file
        self.rng_hub = RngHub(seed)
        self.metrics = MetricsRegistry()
        self.engine = Engine()
        self.transport = Transport(
            self.engine,
            latency=latency if latency is not None else ConstantLatency(0.001),
            loss_rate=loss_rate,
            rng=self.rng_hub.stream("transport-loss"),
            metrics=self.metrics,
        )
        # Request-reliability layer (net.reliability): without it, a
        # lost GET or reply simply never completes; with it, every
        # client request retries with backoff and a re-resolved entry,
        # or lands in the dead-letter record.
        self.reliability = (
            None
            if retry is None
            else RequestTracker(
                self.engine,
                retry,
                metrics=self.metrics,
                seed=self.rng_hub.stream("retry-jitter").randrange(1 << 62),
            )
        )
        self.replica_events: list[tuple[float, int, int]] = []
        self.requests_sent = 0
        self.max_rate_seen = 0.0

        entry_rates = np.asarray(entry_rates, dtype=float)
        if entry_rates.shape != (1 << m,):
            raise ConfigurationError(
                f"entry rates must have shape ({1 << m},), got {entry_rates.shape}"
            )
        self._entry_rates = entry_rates

        self.nodes: dict[int, _DesNode] = {
            pid: _DesNode(pid, self) for pid in self.membership.live_pids()
        }
        # The client edge measures response times: request_id → send
        # time, resolved when the reply or fault lands.
        self._inflight: dict[int, float] = {}

        def client_edge(msg: Message) -> None:
            sent_at = self._inflight.pop(msg.request_id, None)
            if sent_at is not None:
                self.metrics.histogram("des.latency").observe(
                    self.engine.now - sent_at
                )
            if self.reliability is not None:
                # A fault reply is still a defined outcome: the request
                # terminated, it just found no copy.
                self.reliability.complete(msg.request_id)

        self.transport.register(CLIENT, client_edge)

        # Seed the file at its 2**b storage nodes and start checkers.
        for home in insert_targets(self.tree, self.b, self.membership):
            self.nodes[home].store.store(file, b"payload", 1, FileOrigin.INSERTED)
        for node in self.nodes.values():
            self.engine.spawn(node.overload_check(), label=f"check:{node.pid}")

    def retry_entry(self, entry: int) -> int | None:
        """Where a retried request should re-enter the overlay.

        The client-side dual of the paper's ``FINDLIVENODE``: keep a
        still-live entry, otherwise climb to its first alive ancestor,
        falling back to the tree's storage node; ``None`` only when no
        node is left alive (the retry expires immediately).
        """
        if self.membership.is_live(entry):
            return entry
        nxt = first_alive_ancestor(self.tree, entry, self.membership)
        if nxt is not None:
            return nxt
        try:
            return storage_node(self.tree, self.membership)
        except NoLiveNodeError:
            return None

    def holders(self, file: str) -> set[int]:
        """Live PIDs currently holding a copy (the oracle view).

        A real node cannot read this set; policies only receive it to
        skip already-replicated targets, mirroring the fluid engine.
        """
        return {pid for pid, node in self.nodes.items() if file in node.store}

    def choose_target(
        self, overloaded: int, file: str, source_rates: dict[int, float]
    ) -> int | None:
        """Run the placement policy for an overloaded holder.

        For ``b = 0`` the policy sees the whole tree; for ``b > 0`` it
        runs inside the holder's subtree via the §4 identity reduction
        (the same mechanism ``LessLogSystem.replicate`` uses).
        """
        rng = self.rng_hub.stream(f"policy:{overloaded}")
        local_view = self.nodes[overloaded].membership
        if self.b == 0:
            context = PlacementContext(rng=rng, forwarder_rates=source_rates)
            return self.policy.choose(
                self.tree, overloaded, local_view, self.holders(file), context
            )
        from ..core.subtree import SvidLiveness, identity_tree

        sid = subtree_of_pid(self.tree, overloaded, self.b)
        view = SubtreeView(self.tree, self.b, sid)
        itree = identity_tree(view)
        sliveness = SvidLiveness(view, local_view)
        holders_svid = {
            view.svid_of(pid)
            for pid in self.holders(file)
            if view.contains(pid)
        }
        rates_svid = {
            (view.svid_of(src) if src >= 0 and view.contains(src) else -1): rate
            for src, rate in source_rates.items()
        }
        context = PlacementContext(rng=rng, forwarder_rates=rates_svid)
        target_svid = self.policy.choose(
            itree, view.svid_of(overloaded), sliveness, holders_svid, context
        )
        if target_svid is None:
            return None
        return view.pid_of_svid(target_svid)

    def _workload(self, duration: float, rate_scale: float = 1.0, phase: int = 0):
        """Generator process emitting Poisson client GETs."""
        from ..sim.rng import derive_seed
        from ..workloads.generator import RequestStream

        stream = RequestStream(
            self._entry_rates * rate_scale,
            self.file,
            seed=derive_seed(self.rng_hub.seed, f"workload:{phase}"),
        )
        last = 0.0
        for request in stream.generate(duration):
            yield request.time - last
            last = request.time
            if not self.membership.is_live(request.entry):
                continue  # entry died mid-run; client retries elsewhere
            self.requests_sent += 1
            message = Message(
                kind=MessageKind.GET,
                src=CLIENT,
                dst=request.entry,
                file=self.file,
            )
            self._inflight[message.request_id] = self.engine.now
            if self.reliability is not None:
                self.reliability.issue(
                    message, send=self.transport.send, reroute=self.retry_entry
                )
            else:
                self.transport.send(message)

    def run_schedule(
        self,
        phases: list[tuple[float, float]],
        settle: float = 2.0,
        sample_replicas_every: float = 1.0,
    ) -> tuple[DesResult, list[tuple[float, int]]]:
        """Drive a time-varying workload: ``phases`` = [(duration, scale)].

        Each phase replays the base rate vector scaled by ``scale`` for
        ``duration`` seconds, back to back.  Returns the usual result
        plus a sampled (time, replica count) series — the view needed
        to watch the counter-based removal breathe.
        """
        if not phases:
            raise ConfigurationError("at least one phase is required")
        total = 0.0
        for index, (duration, scale) in enumerate(phases):
            if duration <= 0 or scale < 0:
                raise ConfigurationError(
                    f"bad phase {index}: duration={duration}, scale={scale}"
                )
            start = total

            def launch(index=index, duration=duration, scale=scale):
                self.engine.spawn(
                    self._workload(duration, rate_scale=scale, phase=index),
                    label=f"workload:{index}",
                )

            self.engine.schedule_at(start, launch, label=f"phase:{index}")
            total += duration

        series: list[tuple[float, int]] = []

        def sampler():
            while True:
                series.append(
                    (self.engine.now, len(self.holders(self.file)) - 1)
                )
                yield sample_replicas_every

        self.engine.spawn(sampler(), label="replica-sampler")
        result = self._finish(total, settle)
        return result, series

    def update_file(self, payload, version: int, at_time: float) -> None:
        """Schedule a §2.2 top-down update broadcast over the transport.

        One UPDATE message is injected at each subtree's root position
        (bypassing a dead root to its children list, per §3); holders
        re-broadcast, non-holders discard.
        """
        from ..core.children import advanced_children_list
        from ..core.subtree import SvidLiveness, identity_tree

        def starts() -> list[int]:
            out: list[int] = []
            for sid in range(1 << self.b):
                if self.b == 0:
                    root = self.tree.root
                    if self.membership.is_live(root):
                        out.append(root)
                    else:
                        out.extend(
                            advanced_children_list(
                                self.tree, root, self.membership
                            )
                        )
                    continue
                view = SubtreeView(self.tree, self.b, sid)
                root = view.root_pid
                if self.membership.is_live(root):
                    out.append(root)
                    continue
                itree = identity_tree(view)
                sliveness = SvidLiveness(view, self.membership)
                root_svid = (1 << view.width) - 1
                out.extend(
                    view.pid_of_svid(s)
                    for s in advanced_children_list(itree, root_svid, sliveness)
                )
            return out

        def fire() -> None:
            for start in starts():
                self.transport.send(
                    Message(
                        kind=MessageKind.UPDATE,
                        src=CLIENT,
                        dst=start,
                        file=self.file,
                        payload=payload,
                        version=version,
                    )
                )

        self.engine.schedule_at(at_time, fire, label="update")

    def join_node(self, pid: int, at_time: float) -> None:
        """Schedule a §5.1 join: the node registers live everywhere and
        the files its absence displaced are transferred to it.

        The transfer rides the transport as an INSERT message, so there
        is a realistic window (one network latency) during which
        requests that already route to the newcomer can fault.
        """

        def arrive() -> None:
            if self.membership.is_live(pid):
                raise ConfigurationError(f"P({pid}) is already live")
            neighbour = min(self.nodes, default=None)
            self.membership.register_live(pid)
            node = _DesNode(pid, self)
            self.nodes[pid] = node
            self.engine.spawn(node.overload_check(), label=f"check:{pid}")
            if self.gossip:
                # §5.1: adopt a neighbour's status word, then broadcast
                # the join to everyone it lists.
                if neighbour is not None:
                    node.agent.adopt(self.nodes[neighbour].membership)
                node.agent.broadcast(MessageKind.REGISTER_LIVE, pid)
            # Migrate the file if the newcomer is now a storage node.
            for home in insert_targets(self.tree, self.b, self.membership):
                if home != pid:
                    continue
                donor = next(
                    (p for p, n in self.nodes.items()
                     if p != pid and self.file in n.store),
                    None,
                )
                if donor is None:
                    continue
                copy = self.nodes[donor].store.get(self.file, count_access=False)
                self.transport.send(
                    Message(
                        kind=MessageKind.INSERT,
                        src=donor,
                        dst=pid,
                        file=self.file,
                        payload=(copy.payload, copy.version),
                    )
                )

        self.engine.schedule_at(at_time, arrive, label=f"join:{pid}")

    def fail_node(self, pid: int, at_time: float) -> None:
        """Schedule a crash: the node drops off the transport and every
        node's status word flips (instant §5.3 broadcast)."""

        def crash() -> None:
            self.membership.register_dead(pid)
            self.transport.unregister(pid)
            self.nodes.pop(pid, None)
            if self.gossip:
                self.engine.schedule(
                    self.detection_delay,
                    lambda: self._broadcast_membership(
                        MessageKind.REGISTER_DEAD, pid
                    ),
                    label=f"detect:{pid}",
                )

        self.engine.schedule_at(at_time, crash, label=f"fail:{pid}")

    def _broadcast_membership(self, kind: MessageKind, subject: int) -> None:
        """§5: a surviving node broadcasts a registration to everyone.

        The detector is the live node with the lowest PID (any live
        node works; the choice only fixes determinism).
        """
        detector = min(self.nodes, default=None)
        if detector is None:
            return
        self.nodes[detector].agent.broadcast(kind, subject)

    def run(self, duration: float, settle: float = 2.0) -> DesResult:
        """Drive the workload for ``duration`` plus a settle tail."""
        if duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration}")
        self.engine.spawn(self._workload(duration), label="workload")
        return self._finish(duration, settle)

    def _finish(self, duration: float, settle: float) -> DesResult:
        """Run the engine to the end of the workload and collect results."""
        final_max_box = [0.0]

        def sample_final() -> None:
            final_max_box[0] = max(
                (
                    node.monitor.total_rate(self.engine.now)
                    for node in self.nodes.values()
                ),
                default=0.0,
            )

        self.engine.schedule_at(duration, sample_final, label="final-sample")
        self.engine.run_until(duration + settle)
        self.engine.clear()  # drop the infinite overload checkers

        hops = self.metrics.histogram("des.hops")
        latency = self.metrics.histogram("des.latency")
        return DesResult(
            replicas_created=len(self.replica_events),
            requests_sent=self.requests_sent,
            requests_served=self.metrics.counter("des.served").value,
            faults=self.metrics.counter("des.faults").value,
            max_observed_rate=self.max_rate_seen,
            final_max_rate=final_max_box[0],
            replica_events=list(self.replica_events),
            hop_mean=hops.mean() if hops.count else 0.0,
            hop_max=hops.max() if hops.count else 0.0,
            latency_mean=latency.mean() if latency.count else 0.0,
            latency_p95=latency.quantile(0.95) if latency.count else 0.0,
            requests_completed=self.metrics.counter("request.completed").value,
            requests_retried=self.metrics.counter("request.retried").value,
            dead_letters=(
                len(self.reliability.dead_letters)
                if self.reliability is not None
                else 0
            ),
        )
