"""Evaluation engines.

``fluid`` — steady-state rate-based engine (exact, fast; drives the
figure reproductions).  ``des_driver`` — request-level discrete-event
engine over the simulated transport (validates the fluid shapes
dynamically).
"""

from .fluid import BalanceResult, FlowResult, FluidSimulation, Placement
from .multifile import FileSpec, MultiFileBalanceResult, MultiFileFluid

__all__ = [
    "BalanceResult",
    "FileSpec",
    "FlowResult",
    "FluidSimulation",
    "MultiFileBalanceResult",
    "MultiFileFluid",
    "Placement",
]


def __getattr__(name: str):
    if name in {"DesExperiment", "DesResult"}:
        from . import des_driver

        return getattr(des_driver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
