"""Fluid (steady-state, rate-based) evaluation engine.

The paper's §6 metric is *the number of replicas created to reach a
load-balanced state* given an aggregate client request rate.  That is a
steady-state property: demand is a rate vector, routing aggregates
rates up the lookup tree, a holder's load is the rate it absorbs, and a
system is balanced when no holder exceeds its capacity.  This engine
computes the metric exactly and deterministically:

1. **Flow pass** — process live nodes in ascending-VID order; a node
   holding a copy absorbs its accumulated inflow, anyone else pushes it
   to its next hop (first alive ancestor, or the storage-node jump at
   the top of an incomplete tree).  One O(N) pass per round.
2. **Balance loop** — each round, every overloaded holder places one
   replica via the active policy (nodes act on what they can currently
   measure, as they would in a running system); repeat until no holder
   is overloaded or no policy has a move left.

The next-hop table depends only on liveness, never on replica
placement, so it is shared through the :func:`~repro.core.routing.routing_table`
cache: every sweep cell at the same ``(root, liveness)`` reuses one
precomputed :class:`~repro.core.routing.RoutingTable`.

Two equivalent flow implementations exist:

* the **vectorized kernel** (default) — one ``np.add.at`` per level of
  the forwarding forest, sources in ascending-VID order within a
  level, plus an *incremental* balance loop that re-flows only the
  forwarding path above a freshly placed replica;
* the **reference pass** (``reference=True``) — the original
  per-round, per-node dict walk, kept as the equivalence oracle.

Both produce bit-identical ``FlowResult``s and placement sequences:
each holder's accumulator sees exactly the same float additions in the
same order (the per-target accumulation order is ascending source VID
in both, and a re-flowed path node re-folds the identical expression
from unchanged sub-results).
"""

from __future__ import annotations

from bisect import insort
from collections import defaultdict
from dataclasses import dataclass, field

import random

import numpy as np

from ..baselines.base import PlacementContext, ReplicationPolicy
from ..core.errors import ConfigurationError
from ..core.liveness import LivenessView
from ..core.routing import RoutingTable, routing_table
from ..core.tree import LookupTree

__all__ = ["FlowResult", "Placement", "BalanceResult", "FluidSimulation"]

_DIRECT = -1
"""Forwarder key marking requests that entered straight from a client."""


@dataclass(frozen=True)
class FlowResult:
    """Steady-state flows for one holder configuration."""

    served: dict[int, float]
    """holder PID → request rate it serves."""

    forwarders: dict[int, dict[int, float]]
    """holder PID → (immediate forwarder PID or -1) → rate contributed."""

    def max_served(self) -> float:
        return max(self.served.values(), default=0.0)

    def total_served(self) -> float:
        return float(sum(self.served.values()))


@dataclass(frozen=True)
class Placement:
    """One replica creation."""

    round: int
    source: int
    target: int


@dataclass
class BalanceResult:
    """Outcome of a balance run."""

    placements: list[Placement]
    rounds: int
    flows: FlowResult
    holders: set[int]
    unresolved: list[int] = field(default_factory=list)

    @property
    def replicas_created(self) -> int:
        return len(self.placements)

    @property
    def balanced(self) -> bool:
        return not self.unresolved


class FluidSimulation:
    """Steady-state model of one popular file in a LessLog system."""

    def __init__(
        self,
        tree: LookupTree,
        liveness: LivenessView,
        entry_rates: np.ndarray,
        capacity: float,
        holders: set[int] | None = None,
        rng: random.Random | None = None,
        reference: bool = False,
    ) -> None:
        n = 1 << tree.m
        # ``capacity`` is a uniform scalar (the paper's model) or a
        # per-node array (heterogeneous nodes — an extension study).
        capacities = np.asarray(capacity, dtype=float)
        if capacities.ndim == 0:
            capacities = np.full(n, float(capacities))
        if capacities.shape != (n,):
            raise ConfigurationError(
                f"capacity must be a scalar or shape ({n},), got "
                f"{capacities.shape}"
            )
        if np.any(capacities <= 0):
            raise ConfigurationError("capacities must be positive")
        entry_rates = np.asarray(entry_rates, dtype=float)
        if entry_rates.shape != (n,):
            raise ConfigurationError(
                f"entry rates must have shape ({n},), got {entry_rates.shape}"
            )
        if np.any(entry_rates < 0):
            raise ConfigurationError("entry rates must be non-negative")
        self.tree = tree
        self.liveness = liveness
        self.entry_rates = entry_rates
        self.capacities = capacities
        self.capacity = float(capacities.min())
        """The tightest node budget (full vector in ``capacities``)."""
        self.rng = rng if rng is not None else random.Random(0)
        self.reference = reference
        """Use the original dict-based flow pass (equivalence oracle)."""

        self.table: RoutingTable = routing_table(tree, liveness)
        """Shared precomputed next-hop/ordering arrays (liveness-only)."""

        self.home = self.table.home
        self.holders: set[int] = set(holders) if holders is not None else {self.home}
        if self.home not in self.holders:
            raise ConfigurationError(
                f"the storage node P({self.home}) must hold the inserted copy"
            )
        dead_hot = np.nonzero((entry_rates > 0) & ~self.table.live)[0]
        if dead_hot.size:
            raise ConfigurationError(
                f"dead node P({int(dead_hot[0])}) has positive entry rate"
            )

        # Ascending-VID processing order and the liveness-only next-hop
        # table of the reference pass (read off the shared arrays).
        self._order: list[int] = self.table.order.tolist()
        nh = self.table.next_hop
        self._next_hop: dict[int, int] = {pid: int(nh[pid]) for pid in self._order}

    # -- flow computation -----------------------------------------------

    def compute_flows(self) -> FlowResult:
        """Steady-state flows for the current holder set.

        Dispatches to the vectorized kernel (default) or the original
        dict pass (``reference=True``); both return identical results.
        """
        if self.reference:
            return self._compute_flows_reference()
        return self._flows_from_inflows(self._cascade())

    def _compute_flows_reference(self) -> FlowResult:
        """One ascending-VID aggregation pass (O(live nodes))."""
        acc = self.entry_rates.copy()
        served: dict[int, float] = {}
        forwarders: dict[int, dict[int, float]] = defaultdict(dict)
        holders = self.holders
        next_hop = self._next_hop
        for pid in self._order:
            inflow = acc[pid]
            if pid in holders:
                served[pid] = float(inflow)
                direct = float(self.entry_rates[pid])
                if direct > 0:
                    fw = forwarders[pid]
                    fw[_DIRECT] = fw.get(_DIRECT, 0.0) + direct
                continue
            if inflow <= 0.0:
                continue
            nh = next_hop[pid]
            acc[nh] += inflow
            if nh in holders:
                fw = forwarders[nh]
                fw[pid] = fw.get(pid, 0.0) + float(inflow)
        return FlowResult(served=served, forwarders=dict(forwarders))

    # -- vectorized kernel ----------------------------------------------

    def _holder_mask(self) -> np.ndarray:
        mask = np.zeros(self.table.n, dtype=bool)
        mask[list(self.holders)] = True
        return mask

    def _cascade(self, hmask: np.ndarray | None = None) -> np.ndarray:
        """Full vectorized flow pass → per-node steady-state inflow.

        One ``np.add.at`` per forwarding-forest level, deepest level
        first so every source's inflow is final before it pushes.
        Sources within a level are in ascending-VID order, which makes
        each target's accumulation sequence identical to the reference
        pass (all forwarding children of a node share its level + 1,
        and ``np.add.at`` applies duplicate indices in array order).
        Holders receive but never push.  ``hmask`` may pass in an
        already-built holder mask.
        """
        acc = self.entry_rates.copy()
        if hmask is None:
            hmask = self._holder_mask()
        next_hop = self.table.next_hop
        for wave in self.table.waves:
            src = wave[~hmask[wave]]
            if src.size:
                np.add.at(acc, next_hop[src], acc[src])
        return acc

    def _flows_from_inflows(self, acc: np.ndarray) -> FlowResult:
        """Assemble a :class:`FlowResult` from per-node inflows."""
        table = self.table
        vids, next_hop, live = table.vids, table.next_hop, table.live
        hmask = self._holder_mask()
        live_holders = sorted(
            (pid for pid in self.holders if live[pid]),
            key=lambda pid: vids[pid],
        )
        served = {pid: float(acc[pid]) for pid in live_holders}
        forwarders: dict[int, dict[int, float]] = {}
        # Edge sources: live non-holders pushing straight into a holder.
        order = table.order
        edge = (~hmask[order]) & (acc[order] > 0.0) & hmask[next_hop[order]]
        for pid in order[edge].tolist():
            forwarders.setdefault(int(next_hop[pid]), {})[pid] = float(acc[pid])
        for pid in live_holders:
            direct = float(self.entry_rates[pid])
            if direct > 0:
                forwarders.setdefault(pid, {})[_DIRECT] = direct
        return FlowResult(served=served, forwarders=forwarders)

    def _served_of(self, acc: np.ndarray, holder_order: list[int]) -> dict[int, float]:
        """Served rates of the (vid-ordered, live) holders from inflows."""
        return {pid: float(acc[pid]) for pid in holder_order}

    def _forwarders_of(self, acc: np.ndarray, holder: int) -> dict[int, float]:
        """One holder's forwarder→rate map, straight from inflows.

        Identical to ``compute_flows().forwarders.get(holder, {})``:
        non-holder forwarding children with positive inflow in
        ascending-VID order, then the direct-arrival key.
        """
        holders = self.holders
        fw: dict[int, float] = {}
        for child in self.table.eff_children(holder):
            if child not in holders:
                rate = acc[child]
                if rate > 0:
                    fw[child] = float(rate)
        direct = float(self.entry_rates[holder])
        if direct > 0:
            fw[_DIRECT] = direct
        return fw

    def _reflow_path(self, acc: np.ndarray, placed: int) -> None:
        """Incremental update after ``placed`` became a holder.

        A new holder's own inflow is unchanged (it still receives; it
        merely stops pushing), so only the nodes on its old forwarding
        path — up to and including the first holder, which absorbs —
        see different flows.  Each is re-folded from scratch in the
        reference order (entry rate, then forwarding children ascending
        by VID), reading sub-results that are either untouched or
        already re-folded, so the result is bit-identical to a full
        pass over the new holder set.  O(path · children) per replica
        instead of O(live nodes).
        """
        table = self.table
        next_hop, entry_rates = table.next_hop, self.entry_rates
        holders = self.holders
        node = int(next_hop[placed])
        while True:
            total = entry_rates[node]
            for child in table.eff_children(node):
                if child not in holders:
                    total = total + acc[child]
            acc[node] = total
            if node in holders:
                break
            node = int(next_hop[node])

    def overloaded(self, flows: FlowResult | None = None) -> list[int]:
        """Holders above their own capacity, most overloaded first."""
        flows = flows if flows is not None else self.compute_flows()
        return self._overloaded_from_served(flows.served)

    def _overloaded_from_served(self, served: dict[int, float]) -> list[int]:
        vids = self.table.vids
        over = [h for h, s in served.items() if s > self.capacities[h]]
        over.sort(
            key=lambda p: (
                -(served[p] - self.capacities[p]),
                vids[p],
            )
        )
        return over

    def _overloaded_from_acc(
        self, acc: np.ndarray, holder_order: list[int]
    ) -> list[int]:
        """Overload list straight from inflows.

        Same ordering as :meth:`overloaded` — excess descending, VID
        ascending on ties (``lexsort`` keys primary-last) — without
        materializing the served dict.
        """
        arr = np.fromiter(
            holder_order, dtype=np.int64, count=len(holder_order)
        )
        excess = acc[arr] - self.capacities[arr]
        hot = excess > 0
        if not hot.any():
            return []
        cand, exc = arr[hot], excess[hot]
        rank = np.lexsort((self.table.vids[cand], -exc))
        return cand[rank].tolist()

    # -- balancing --------------------------------------------------------

    def balance(
        self,
        policy: ReplicationPolicy,
        max_rounds: int = 10_000,
        serial: bool = False,
    ) -> BalanceResult:
        """Create replicas via ``policy`` until no holder is overloaded.

        Round semantics: every currently-overloaded, non-saturated
        holder places one replica per round, then flows are remeasured.
        A holder becomes *saturated* when its policy returns no target;
        it can never unsaturate (children lists only fill up), so the
        loop terminates: each round either adds a holder or saturates
        everything still overloaded.

        ``serial=True`` restricts each round to the single most
        overloaded holder — the fully sequential schedule, used by the
        concurrency ablation.
        """
        placements: list[Placement] = []
        saturated: set[int] = set()
        rounds = 0
        fast = not self.reference
        # The incremental loop measures each round from the running
        # inflow array instead of a fresh O(live-nodes) pass; placing a
        # replica re-flows only its old forwarding path, and forwarder
        # maps are materialized only for the holders a policy asks
        # about.
        acc: np.ndarray | None = None
        holder_order: list[int] = []
        hmask: np.ndarray | None = None
        flows: FlowResult | None = None
        if fast:
            hmask = self._holder_mask()
            acc = self._cascade(hmask)
            vids, live = self.table.vids, self.table.live
            holder_order = sorted(
                (p for p in self.holders if live[p]), key=lambda p: vids[p]
            )
        while rounds < max_rounds:
            if fast:
                over = [
                    h for h in self._overloaded_from_acc(acc, holder_order)
                    if h not in saturated
                ]
            else:
                flows = self.compute_flows()
                over = [
                    h for h in self._overloaded_from_served(flows.served)
                    if h not in saturated
                ]
            if not over:
                break
            if serial:
                over = over[:1]
            rounds += 1
            progress = False
            for h in over:
                context = PlacementContext(
                    rng=self.rng,
                    forwarder_rates=(
                        self._forwarders_of(acc, h) if fast
                        else flows.forwarders.get(h, {})
                    ),
                    table=self.table if fast else None,
                    holder_mask=hmask,
                )
                target = policy.choose(
                    self.tree, h, self.liveness, self.holders, context
                )
                if target is None or target in self.holders:
                    saturated.add(h)
                    continue
                self.holders.add(target)
                if fast:
                    hmask[target] = True
                    self._reflow_path(acc, target)
                    insort(holder_order, target, key=lambda p: vids[p])
                placements.append(Placement(round=rounds, source=h, target=target))
                progress = True
            if not progress:
                break
        else:
            raise ConfigurationError(
                f"balance did not converge within {max_rounds} rounds"
            )
        final = (
            self._flows_from_inflows(acc) if fast else self.compute_flows()
        )
        unresolved = self.overloaded(final)
        return BalanceResult(
            placements=placements,
            rounds=rounds,
            flows=final,
            holders=set(self.holders),
            unresolved=unresolved,
        )

    # -- counter-based replica removal (§2.2 / §6) ------------------------

    def prune_and_rebalance(
        self,
        policy: ReplicationPolicy,
        threshold: float,
        max_iterations: int = 100,
    ) -> tuple[int, BalanceResult]:
        """Remove cold replicas, re-balance, repeat until stable.

        Returns ``(replicas_pruned, final_balance_result)``.  The
        inserted copy at the storage node is never pruned.
        """
        if threshold < 0:
            raise ConfigurationError(f"threshold must be non-negative, got {threshold}")
        pruned_total = 0
        result = self.balance(policy)
        for _ in range(max_iterations):
            flows = self.compute_flows()
            cold = [
                h
                for h in sorted(self.holders)
                if h != self.home and flows.served.get(h, 0.0) < threshold
            ]
            if not cold:
                break
            for h in cold:
                self.holders.discard(h)
            pruned_total += len(cold)
            result = self.balance(policy)
            # If balancing re-created everything we removed, we are at a
            # fixed point and further pruning would loop.
            if {p.target for p in result.placements} >= set(cold):
                break
        return pruned_total, result

    def replica_count(self) -> int:
        """Replicas currently in the system (excludes the inserted copy)."""
        return len(self.holders) - 1
