"""Fluid (steady-state, rate-based) evaluation engine.

The paper's §6 metric is *the number of replicas created to reach a
load-balanced state* given an aggregate client request rate.  That is a
steady-state property: demand is a rate vector, routing aggregates
rates up the lookup tree, a holder's load is the rate it absorbs, and a
system is balanced when no holder exceeds its capacity.  This engine
computes the metric exactly and deterministically:

1. **Flow pass** — process live nodes in ascending-VID order; a node
   holding a copy absorbs its accumulated inflow, anyone else pushes it
   to its next hop (first alive ancestor, or the storage-node jump at
   the top of an incomplete tree).  One O(N) pass per round.
2. **Balance loop** — each round, every overloaded holder places one
   replica via the active policy (nodes act on what they can currently
   measure, as they would in a running system); repeat until no holder
   is overloaded or no policy has a move left.

The next-hop table depends only on liveness, never on replica
placement, so it is computed once per simulation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import random

import numpy as np

from ..baselines.base import PlacementContext, ReplicationPolicy
from ..core.errors import ConfigurationError
from ..core.liveness import LivenessView
from ..core.routing import first_alive_ancestor, storage_node
from ..core.tree import LookupTree

__all__ = ["FlowResult", "Placement", "BalanceResult", "FluidSimulation"]

_DIRECT = -1
"""Forwarder key marking requests that entered straight from a client."""


@dataclass(frozen=True)
class FlowResult:
    """Steady-state flows for one holder configuration."""

    served: dict[int, float]
    """holder PID → request rate it serves."""

    forwarders: dict[int, dict[int, float]]
    """holder PID → (immediate forwarder PID or -1) → rate contributed."""

    def max_served(self) -> float:
        return max(self.served.values(), default=0.0)

    def total_served(self) -> float:
        return float(sum(self.served.values()))


@dataclass(frozen=True)
class Placement:
    """One replica creation."""

    round: int
    source: int
    target: int


@dataclass
class BalanceResult:
    """Outcome of a balance run."""

    placements: list[Placement]
    rounds: int
    flows: FlowResult
    holders: set[int]
    unresolved: list[int] = field(default_factory=list)

    @property
    def replicas_created(self) -> int:
        return len(self.placements)

    @property
    def balanced(self) -> bool:
        return not self.unresolved


class FluidSimulation:
    """Steady-state model of one popular file in a LessLog system."""

    def __init__(
        self,
        tree: LookupTree,
        liveness: LivenessView,
        entry_rates: np.ndarray,
        capacity: float,
        holders: set[int] | None = None,
        rng: random.Random | None = None,
    ) -> None:
        n = 1 << tree.m
        # ``capacity`` is a uniform scalar (the paper's model) or a
        # per-node array (heterogeneous nodes — an extension study).
        capacities = np.asarray(capacity, dtype=float)
        if capacities.ndim == 0:
            capacities = np.full(n, float(capacities))
        if capacities.shape != (n,):
            raise ConfigurationError(
                f"capacity must be a scalar or shape ({n},), got "
                f"{capacities.shape}"
            )
        if np.any(capacities <= 0):
            raise ConfigurationError("capacities must be positive")
        entry_rates = np.asarray(entry_rates, dtype=float)
        if entry_rates.shape != (n,):
            raise ConfigurationError(
                f"entry rates must have shape ({n},), got {entry_rates.shape}"
            )
        if np.any(entry_rates < 0):
            raise ConfigurationError("entry rates must be non-negative")
        self.tree = tree
        self.liveness = liveness
        self.entry_rates = entry_rates
        self.capacities = capacities
        self.capacity = float(capacities.min())
        """The tightest node budget (full vector in ``capacities``)."""
        self.rng = rng if rng is not None else random.Random(0)

        self.home = storage_node(tree, liveness)
        self.holders: set[int] = set(holders) if holders is not None else {self.home}
        if self.home not in self.holders:
            raise ConfigurationError(
                f"the storage node P({self.home}) must hold the inserted copy"
            )
        for pid in range(n):
            if entry_rates[pid] > 0 and not liveness.is_live(pid):
                raise ConfigurationError(f"dead node P({pid}) has positive entry rate")

        # Ascending-VID processing order and the liveness-only next-hop
        # table (replica placement never changes either).
        self._order: list[int] = []
        self._next_hop: dict[int, int] = {}
        for vid in range(n):
            pid = tree.pid_of(vid)
            if not liveness.is_live(pid):
                continue
            self._order.append(pid)
            nxt = first_alive_ancestor(tree, pid, liveness)
            if nxt is None:
                nxt = self.home if pid != self.home else pid
            self._next_hop[pid] = nxt

    # -- flow computation -----------------------------------------------

    def compute_flows(self) -> FlowResult:
        """One ascending-VID aggregation pass (O(live nodes))."""
        acc = self.entry_rates.copy()
        served: dict[int, float] = {}
        forwarders: dict[int, dict[int, float]] = defaultdict(dict)
        holders = self.holders
        next_hop = self._next_hop
        for pid in self._order:
            inflow = acc[pid]
            if pid in holders:
                served[pid] = float(inflow)
                direct = float(self.entry_rates[pid])
                if direct > 0:
                    fw = forwarders[pid]
                    fw[_DIRECT] = fw.get(_DIRECT, 0.0) + direct
                continue
            if inflow <= 0.0:
                continue
            nh = next_hop[pid]
            acc[nh] += inflow
            if nh in holders:
                fw = forwarders[nh]
                fw[pid] = fw.get(pid, 0.0) + float(inflow)
        return FlowResult(served=served, forwarders=dict(forwarders))

    def overloaded(self, flows: FlowResult | None = None) -> list[int]:
        """Holders above their own capacity, most overloaded first."""
        flows = flows if flows is not None else self.compute_flows()
        over = [
            h for h, s in flows.served.items() if s > self.capacities[h]
        ]
        over.sort(
            key=lambda p: (
                -(flows.served[p] - self.capacities[p]),
                self.tree.vid_of(p),
            )
        )
        return over

    # -- balancing --------------------------------------------------------

    def balance(
        self,
        policy: ReplicationPolicy,
        max_rounds: int = 10_000,
        serial: bool = False,
    ) -> BalanceResult:
        """Create replicas via ``policy`` until no holder is overloaded.

        Round semantics: every currently-overloaded, non-saturated
        holder places one replica per round, then flows are remeasured.
        A holder becomes *saturated* when its policy returns no target;
        it can never unsaturate (children lists only fill up), so the
        loop terminates: each round either adds a holder or saturates
        everything still overloaded.

        ``serial=True`` restricts each round to the single most
        overloaded holder — the fully sequential schedule, used by the
        concurrency ablation.
        """
        placements: list[Placement] = []
        saturated: set[int] = set()
        rounds = 0
        while rounds < max_rounds:
            flows = self.compute_flows()
            over = [h for h in self.overloaded(flows) if h not in saturated]
            if not over:
                break
            if serial:
                over = over[:1]
            rounds += 1
            progress = False
            for h in over:
                context = PlacementContext(
                    rng=self.rng,
                    forwarder_rates=flows.forwarders.get(h, {}),
                )
                target = policy.choose(
                    self.tree, h, self.liveness, self.holders, context
                )
                if target is None or target in self.holders:
                    saturated.add(h)
                    continue
                self.holders.add(target)
                placements.append(Placement(round=rounds, source=h, target=target))
                progress = True
            if not progress:
                break
        else:
            raise ConfigurationError(
                f"balance did not converge within {max_rounds} rounds"
            )
        final = self.compute_flows()
        unresolved = self.overloaded(final)
        return BalanceResult(
            placements=placements,
            rounds=rounds,
            flows=final,
            holders=set(self.holders),
            unresolved=unresolved,
        )

    # -- counter-based replica removal (§2.2 / §6) ------------------------

    def prune_and_rebalance(
        self,
        policy: ReplicationPolicy,
        threshold: float,
        max_iterations: int = 100,
    ) -> tuple[int, BalanceResult]:
        """Remove cold replicas, re-balance, repeat until stable.

        Returns ``(replicas_pruned, final_balance_result)``.  The
        inserted copy at the storage node is never pruned.
        """
        if threshold < 0:
            raise ConfigurationError(f"threshold must be non-negative, got {threshold}")
        pruned_total = 0
        result = self.balance(policy)
        for _ in range(max_iterations):
            flows = self.compute_flows()
            cold = [
                h
                for h in sorted(self.holders)
                if h != self.home and flows.served.get(h, 0.0) < threshold
            ]
            if not cold:
                break
            for h in cold:
                self.holders.discard(h)
            pruned_total += len(cold)
            result = self.balance(policy)
            # If balancing re-created everything we removed, we are at a
            # fixed point and further pruning would loop.
            if {p.target for p in result.placements} >= set(cold):
                break
        return pruned_total, result

    def replica_count(self) -> int:
        """Replicas currently in the system (excludes the inserted copy)."""
        return len(self.holders) - 1
