"""LessLog reproduction: logless file replication for P2P systems.

A full implementation of *"LessLog: A Logless File Replication
Algorithm for Peer-to-Peer Distributed Systems"* (Huang, Huang & Chou,
IPDPS 2004), together with the substrates needed to evaluate it: a
discrete-event simulator, a simulated message transport, workload
generators, the paper's baseline policies (random and log-based
replication), and experiment drivers regenerating Figures 5–8.

Quickstart::

    from repro import LessLogSystem

    system = LessLogSystem.build(m=4)
    system.insert("report.pdf", payload=b"...")
    result = system.get("report.pdf", entry=3)
    print(result.route, result.server)

See ``examples/`` and DESIGN.md for the full tour.
"""

from .core import (
    AllLive,
    LessLogError,
    LookupTree,
    Psi,
    SetLiveness,
    VirtualTree,
    psi,
)

__version__ = "1.0.0"

__all__ = [
    "AllLive",
    "LessLogError",
    "LessLogSystem",
    "LookupTree",
    "Psi",
    "SetLiveness",
    "VirtualTree",
    "__version__",
    "psi",
]


def __getattr__(name: str):
    # Heavier layers are imported lazily so `import repro` stays cheap
    # and the core algebra has no simulation dependencies.
    if name == "LessLogSystem":
        from .cluster.system import LessLogSystem

        return LessLogSystem
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
