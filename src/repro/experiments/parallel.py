"""Process-parallel execution of experiment sweep cells.

Every figure is a grid of fully independent (series, rate) cells — each
builds its own seeded :class:`~repro.engine.fluid.FluidSimulation` and
shares nothing — so the sweep parallelises trivially across processes.
Determinism is preserved: a cell's seed depends only on its labels, so
serial and parallel runs produce byte-identical tables.

Cells are dispatched with ``executor.map`` in contiguous chunks, so the
cells of one liveness pattern tend to land on the same worker and hit
that worker's :func:`~repro.core.routing.routing_table` cache instead
of rebuilding the table per cell.

Used by the figure drivers when ``FigureConfig.workers != 1`` and by
the CLI's ``lesslog run --workers N`` (``0`` = one worker per CPU).
"""

from __future__ import annotations

import os

from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any, TypeVar

__all__ = ["CellError", "map_cells", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")


class CellError(RuntimeError):
    """A sweep cell failed; the message names the offending cell."""


def resolve_workers(workers: int) -> int:
    """Normalise a worker count: ``0`` means one worker per CPU."""
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _describe_cell(index: int, cell: tuple[Any, ...]) -> str:
    parts = ", ".join(
        repr(arg) if isinstance(arg, (str, int, float)) else type(arg).__name__
        for arg in cell
    )
    return f"cell {index} ({parts})"


def _run_cell(task: tuple[Callable[..., R], int, tuple[Any, ...]]) -> R:
    """Worker entry point: run one cell, labelling any failure.

    Module-level so it pickles; the label travels in the exception
    message because ``__cause__`` chains do not survive the pool's
    pickle round-trip reliably.
    """
    fn, index, cell = task
    try:
        return fn(*cell)
    except Exception as exc:
        raise CellError(
            f"{_describe_cell(index, cell)} failed: {exc!r}"
        ) from exc


def map_cells(
    fn: Callable[..., R],
    cells: Sequence[tuple[Any, ...]],
    workers: int = 1,
) -> list[R]:
    """Apply ``fn(*cell)`` to every cell, preserving order.

    ``workers == 1`` runs in-process (no fork overhead, easier
    debugging); ``workers == 0`` uses one worker per CPU; otherwise a
    ``ProcessPoolExecutor`` fans the cells out in contiguous chunks.
    ``fn`` and every cell element must be picklable for the parallel
    path.  A failing cell raises :class:`CellError` naming the cell.
    """
    workers = resolve_workers(workers)
    tasks = [(fn, index, cell) for index, cell in enumerate(cells)]
    if workers == 1 or len(cells) <= 1:
        return [_run_cell(task) for task in tasks]
    pool_size = min(workers, len(cells))
    chunksize = max(1, len(cells) // (pool_size * 4))
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        return list(pool.map(_run_cell, tasks, chunksize=chunksize))
