"""Process-parallel execution of experiment sweep cells.

Every figure is a grid of fully independent (series, rate) cells — each
builds its own seeded :class:`~repro.engine.fluid.FluidSimulation` and
shares nothing — so the sweep parallelises trivially across processes.
Determinism is preserved: a cell's seed depends only on its labels, so
serial and parallel runs produce byte-identical tables.

Used by the figure drivers when ``FigureConfig.workers > 1`` and by the
CLI's ``lesslog run --workers N``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any, TypeVar

__all__ = ["map_cells"]

T = TypeVar("T")
R = TypeVar("R")


def map_cells(
    fn: Callable[..., R],
    cells: Sequence[tuple[Any, ...]],
    workers: int = 1,
) -> list[R]:
    """Apply ``fn(*cell)`` to every cell, preserving order.

    ``workers == 1`` runs in-process (no fork overhead, easier
    debugging); otherwise a ``ProcessPoolExecutor`` fans the cells out.
    ``fn`` and every cell element must be picklable for the parallel
    path.
    """
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    if workers == 1 or len(cells) <= 1:
        return [fn(*cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
        futures = [pool.submit(fn, *cell) for cell in cells]
        return [future.result() for future in futures]
