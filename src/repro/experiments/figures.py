"""Reproduction drivers for the paper's evaluation figures (§6).

Each ``figureN`` function regenerates the data behind the corresponding
paper figure as a :class:`~repro.analysis.results.SweepResult`:

* **Figure 5** — replicas-to-balance vs demand; log-based vs LessLog vs
  random, evenly-distributed load, all 1024 identifiers live.
* **Figure 6** — LessLog only, evenly-distributed load, with 10/20/30 %
  dead nodes.
* **Figure 7** — as Figure 5 under the 80/20 locality model.
* **Figure 8** — as Figure 6 under the 80/20 locality model.

All four share :func:`replicas_to_balance`, which builds the fluid
simulation for one (policy, demand, liveness, rate) cell.
"""

from __future__ import annotations

import random

from ..analysis.results import SweepResult
from ..baselines import make_policy
from ..core.hashing import Psi
from ..core.liveness import AllLive, LivenessView, SetLiveness
from ..core.tree import LookupTree
from ..engine.fluid import FluidSimulation
from ..sim.rng import derive_seed
from ..workloads import LocalityDemand, UniformDemand
from ..workloads.base import DemandModel
from .config import DEAD_FRACTIONS, FigureConfig
from .parallel import map_cells

__all__ = [
    "target_of",
    "liveness_with_dead_fraction",
    "replicas_to_balance",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "FIGURES",
]

POLICY_NAMES = ("log-based", "lesslog", "random")


def target_of(config: FigureConfig) -> int:
    """The popular file's target PID, ``ψ(file_name)``."""
    return Psi(config.m)(config.file_name)


def liveness_with_dead_fraction(
    m: int, fraction: float, seed: int
) -> LivenessView:
    """A seeded liveness pattern with ``fraction`` of identifiers dead."""
    if fraction <= 0:
        return AllLive(m)
    n = 1 << m
    count = round(fraction * n)
    if count >= n:
        raise ValueError(f"dead fraction {fraction} leaves no live nodes")
    rng = random.Random(derive_seed(seed, f"dead:{fraction}"))
    dead = rng.sample(range(n), count)
    return SetLiveness.all_but(m, dead=dead)


def replicas_to_balance(
    config: FigureConfig,
    policy_name: str,
    demand: DemandModel,
    liveness: LivenessView,
    total_rate: float,
) -> int:
    """Replicas the policy creates to balance one demand level."""
    tree = LookupTree(target_of(config), config.m)
    rates = demand.rates(total_rate, liveness)
    rng = random.Random(
        derive_seed(config.seed, f"{policy_name}:{total_rate}")
    )
    sim = FluidSimulation(
        tree,
        liveness,
        rates,
        capacity=config.capacity,
        rng=rng,
        reference=config.reference,
    )
    result = sim.balance(make_policy(policy_name))
    return result.replicas_created


def _policy_sweep(
    config: FigureConfig, demand: DemandModel, experiment: str, note: str
) -> SweepResult:
    result = SweepResult(
        experiment=experiment,
        x_label="incoming requests/s",
        y_label="replicas",
        notes=note,
    )
    liveness = AllLive(config.m)
    cells = [
        (config, policy_name, demand, liveness, rate)
        for rate in config.rates
        for policy_name in POLICY_NAMES
    ]
    values = map_cells(replicas_to_balance, cells, workers=config.workers)
    for (_cfg, policy_name, _demand, _live, rate), value in zip(cells, values):
        result.add(policy_name, rate, value)
    return result


def _dead_sweep(
    config: FigureConfig, demand: DemandModel, experiment: str, note: str
) -> SweepResult:
    result = SweepResult(
        experiment=experiment,
        x_label="incoming requests/s",
        y_label="replicas",
        notes=note,
    )
    cells = []
    labels = []
    for fraction in DEAD_FRACTIONS:
        liveness = liveness_with_dead_fraction(config.m, fraction, config.seed)
        label = f"{round(fraction * 100)}% dead"
        for rate in config.rates:
            cells.append((config, "lesslog", demand, liveness, rate))
            labels.append((label, rate))
    values = map_cells(replicas_to_balance, cells, workers=config.workers)
    for (label, rate), value in zip(labels, values):
        result.add(label, rate, value)
    return result


def figure5(config: FigureConfig | None = None) -> SweepResult:
    """Figure 5: evenly-distributed load, three policies, all live."""
    config = config or FigureConfig.paper()
    return _policy_sweep(
        config,
        UniformDemand(),
        "Figure 5: evenly-distributed load",
        "Expected shape: random >> lesslog ~= log-based.",
    )


def figure6(config: FigureConfig | None = None) -> SweepResult:
    """Figure 6: LessLog under 10/20/30 % dead nodes, even load."""
    config = config or FigureConfig.paper()
    return _dead_sweep(
        config,
        UniformDemand(),
        "Figure 6: evenly-distributed load on LessLog with dead nodes",
        "Expected shape: similar replica counts across dead fractions.",
    )


def figure7(config: FigureConfig | None = None) -> SweepResult:
    """Figure 7: 80/20 locality model, three policies, all live."""
    config = config or FigureConfig.paper()
    demand = LocalityDemand(
        hot_fraction=config.hot_fraction,
        hot_share=config.hot_share,
        seed=config.seed,
    )
    return _policy_sweep(
        config,
        demand,
        "Figure 7: locality model (80% of requests on 20% of nodes)",
        "Expected shape: random >> lesslog >= log-based.",
    )


def figure8(config: FigureConfig | None = None) -> SweepResult:
    """Figure 8: locality model on LessLog with dead nodes."""
    config = config or FigureConfig.paper()
    demand = LocalityDemand(
        hot_fraction=config.hot_fraction,
        hot_share=config.hot_share,
        seed=config.seed,
    )
    return _dead_sweep(
        config,
        demand,
        "Figure 8: locality model on LessLog with dead nodes",
        "Expected shape: similar replica counts across dead fractions.",
    )


FIGURES = {
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
}
"""Registry of figure reproductions (used by the CLI and benchmarks)."""
