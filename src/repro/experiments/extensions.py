"""Extension studies beyond the paper's four figures.

Each exercises a claim or mechanism the paper states but does not
measure:

* :func:`lookup_path_lengths` — §1's "lookup time bounded at O(log N)",
  with Chord (related work) as the comparator on the same node sets.
* :func:`prune_ablation` — §2.2/§6's counter-based replica removal:
  how many replicas survive after demand drops, per threshold.
* :func:`fault_tolerance_study` — §4: file survivability and storage
  overhead as ``b`` grows, under repeated random crashes.
* :func:`churn_study` — §8 future work: faults and migrations under a
  dynamic join/leave/fail schedule.
* :func:`engine_agreement` — cross-validation: fluid vs DES replica
  counts on the same small configurations.
"""

from __future__ import annotations

import random

from ..analysis.results import SweepResult
from ..baselines import ChordRing, LessLogPolicy
from ..cluster.faults import ChurnSchedule
from ..cluster.system import LessLogSystem
from ..core.errors import FileNotFoundInSystemError
from ..core.hashing import Psi
from ..core.liveness import SetLiveness
from ..core.routing import route_length
from ..core.tree import LookupTree
from ..engine.des_driver import DesExperiment
from ..engine.fluid import FluidSimulation
from ..sim.rng import derive_seed
from ..workloads import UniformDemand

__all__ = [
    "lookup_path_lengths",
    "scalability_study",
    "replica_decay_study",
    "heterogeneity_study",
    "gossip_staleness_study",
    "prune_ablation",
    "fault_tolerance_study",
    "churn_study",
    "engine_agreement",
]


def lookup_path_lengths(
    widths: tuple[int, ...] = (4, 6, 8, 10),
    samples: int = 200,
    seed: int = 0,
) -> SweepResult:
    """Mean and max lookup hops vs system size, LessLog vs Chord."""
    result = SweepResult(
        experiment="Extension: lookup path length vs N",
        x_label="N (nodes)",
        y_label="hops",
        notes="LessLog and Chord are O(log N) (LessLog max = m by design); CAN(d=2) grows as sqrt(N).",
    )
    from ..baselines import CanGrid

    for m in widths:
        n = 1 << m
        rng = random.Random(derive_seed(seed, f"lookup:{m}"))
        target = rng.randrange(n)
        tree = LookupTree(target, m)
        liveness = SetLiveness(m, range(n))
        ring = ChordRing(m, range(n))
        entries = [rng.randrange(n) for _ in range(samples)]
        ll_hops = [route_length(tree, e, liveness) for e in entries]
        ch_hops = [ring.lookup_hops(e, target) for e in entries]
        result.add("lesslog mean", n, sum(ll_hops) / len(ll_hops))
        result.add("lesslog max", n, max(ll_hops))
        result.add("chord mean", n, sum(ch_hops) / len(ch_hops))
        result.add("chord max", n, max(ch_hops))
        if m % 2 == 0:
            # CAN (d=2) needs a square lattice: side = 2**(m/2).
            grid = CanGrid(2, 1 << (m // 2))
            can_hops = [grid.lookup_hops(e, "popular-file") for e in entries]
            result.add("can(d=2) mean", n, sum(can_hops) / len(can_hops))
            result.add("can(d=2) max", n, max(can_hops))
    return result


def prune_ablation(
    m: int = 8,
    capacity: float = 100.0,
    peak_rate: float = 4000.0,
    trough_rate: float = 400.0,
    thresholds: tuple[float, ...] = (1.0, 5.0, 10.0, 25.0, 50.0),
    seed: int = 0,
) -> SweepResult:
    """Replica counts after demand drops, with and without pruning.

    Balance at ``peak_rate``, drop demand to ``trough_rate``, then run
    the counter-based removal at each threshold.
    """
    result = SweepResult(
        experiment="Extension: counter-based replica removal",
        x_label="prune threshold (req/s)",
        y_label="replicas",
        notes=f"Balanced at {peak_rate} req/s, demand dropped to {trough_rate}.",
    )
    target = Psi(m)("popular-file")
    for threshold in thresholds:
        tree = LookupTree(target, m)
        liveness = SetLiveness(m, range(1 << m))
        demand = UniformDemand()
        sim = FluidSimulation(
            tree,
            liveness,
            demand.rates(peak_rate, liveness),
            capacity=capacity,
            rng=random.Random(seed),
        )
        peak = sim.balance(LessLogPolicy())
        result.add("before prune", threshold, peak.replicas_created)
        sim.entry_rates = demand.rates(trough_rate, liveness)
        pruned, _ = sim.prune_and_rebalance(LessLogPolicy(), threshold=threshold)
        result.add("after prune", threshold, sim.replica_count())
        result.add("pruned", threshold, pruned)
    return result


def fault_tolerance_study(
    m: int = 7,
    bs: tuple[int, ...] = (0, 1, 2, 3),
    files: int = 40,
    crashes: int = 30,
    seed: int = 0,
) -> SweepResult:
    """File survivability and storage overhead vs fault-tolerance degree.

    For each ``b``: insert ``files`` files, crash ``crashes`` random
    nodes one at a time (§5.3 recovery runs after each), then report
    the fraction of files still readable and the initial storage
    overhead (copies per file).
    """
    result = SweepResult(
        experiment="Extension: fault tolerance vs b",
        x_label="b (2^b copies per file)",
        y_label="value",
        notes=f"{files} files, {crashes} sequential crashes, m={m}.",
    )
    for b in bs:
        system = LessLogSystem.build(m=m, b=b, seed=seed)
        total_copies = 0
        for i in range(files):
            total_copies += len(system.insert(f"file-{i}", payload=i).homes)
        rng = random.Random(derive_seed(seed, f"ft:{b}"))
        for _ in range(crashes):
            live = list(system.membership.live_pids())
            if len(live) <= 1:
                break
            system.fail(rng.choice(live))
        entry = next(iter(system.membership.live_pids()))
        readable = 0
        for i in range(files):
            try:
                system.get(f"file-{i}", entry=entry)
                readable += 1
            except FileNotFoundInSystemError:
                pass
        result.add("survival fraction", b, readable / files)
        result.add("copies per file", b, total_copies / files)
    return result


def churn_study(
    m: int = 7,
    b: int = 1,
    files: int = 30,
    duration: float = 120.0,
    rates: tuple[float, ...] = (0.1, 0.5, 1.0, 2.0),
    seed: int = 0,
) -> SweepResult:
    """Losses and migrations under increasing churn intensity."""
    result = SweepResult(
        experiment="Extension: churn",
        x_label="churn events/s",
        y_label="count",
        notes=f"{files} files, {duration}s of churn, m={m}, b={b}.",
    )
    for rate in rates:
        system = LessLogSystem.build(m=m, b=b, n_live=(1 << m) * 3 // 4, seed=seed)
        for i in range(files):
            system.insert(f"file-{i}", payload=i)
        schedule = ChurnSchedule.generate(
            system, duration=duration, rate=rate, seed=derive_seed(seed, f"churn:{rate}")
        )
        schedule.apply_all(system)
        system.check_invariants()
        entry = next(iter(system.membership.live_pids()))
        readable = sum(
            1
            for i in range(files)
            if _readable(system, f"file-{i}", entry)
        )
        result.add("events applied", rate, len(schedule))
        result.add("files readable", rate, readable)
        result.add("files lost", rate, len(set(system.faults)))
    return result


def _readable(system: LessLogSystem, name: str, entry: int) -> bool:
    try:
        system.get(name, entry=entry)
        return True
    except FileNotFoundInSystemError:
        return False


def scalability_study(
    widths: tuple[int, ...] = (8, 10, 12, 14),
    total_rate: float = 20_000.0,
    capacity: float = 100.0,
    seed: int = 0,
) -> SweepResult:
    """Replica demand and lookup cost as the system grows.

    The paper's §8 future work is "a large-scaled P2P system"; this
    study scales N from 256 to 16,384 identifiers at fixed demand.  Two
    properties should emerge: the replica count needed for balance
    depends on demand/capacity, *not* on N, while the mean lookup path
    grows as m/2 (the O(log N) bound of §1).
    """
    result = SweepResult(
        experiment="Extension: scalability in N",
        x_label="N (nodes)",
        y_label="value",
        notes=f"fixed demand {total_rate:.0f} req/s, capacity {capacity:.0f}.",
    )
    demand = UniformDemand()
    for m in widths:
        n = 1 << m
        target = Psi(m)("popular-file")
        liveness = SetLiveness(m, range(n))
        tree = LookupTree(target, m)
        sim = FluidSimulation(
            tree,
            liveness,
            demand.rates(total_rate, liveness),
            capacity=capacity,
            rng=random.Random(derive_seed(seed, f"scale:{m}")),
        )
        balance = sim.balance(LessLogPolicy())
        rng = random.Random(derive_seed(seed, f"scale-entries:{m}"))
        entries = [rng.randrange(n) for _ in range(200)]
        hops = [route_length(tree, e, liveness) for e in entries]
        result.add("replicas to balance", n, balance.replicas_created)
        result.add("balance rounds", n, balance.rounds)
        result.add("mean lookup hops", n, sum(hops) / len(hops))
    return result


def heterogeneity_study(
    m: int = 8,
    total_rate: float = 4000.0,
    mean_capacity: float = 100.0,
    cvs: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0),
    seed: int = 0,
) -> SweepResult:
    """Replica cost of heterogeneous node capacities (extension).

    The paper assumes every node serves 100 req/s; real peers differ.
    Per-node capacities are drawn lognormally with fixed mean and
    increasing coefficient of variation: weaker nodes overload sooner,
    so more replicas are needed to reach a balanced state — and some
    placements become unresolvable when a weak node's *direct* client
    load already exceeds its budget.
    """
    import numpy as np

    result = SweepResult(
        experiment="Extension: heterogeneous node capacities",
        x_label="capacity coefficient of variation",
        y_label="value",
        notes=f"lognormal capacities, mean {mean_capacity:.0f} req/s; "
        f"demand {total_rate:.0f} req/s, m={m}.",
    )
    liveness = SetLiveness(m, range(1 << m))
    demand = UniformDemand()
    target = Psi(m)("popular-file")
    for cv in cvs:
        if cv == 0.0:
            capacities = np.full(1 << m, mean_capacity)
        else:
            sigma = float(np.sqrt(np.log(1 + cv**2)))
            mu = float(np.log(mean_capacity)) - sigma**2 / 2
            gen = np.random.default_rng(derive_seed(seed, f"hetero:{cv}"))
            capacities = gen.lognormal(mu, sigma, size=1 << m)
        sim = FluidSimulation(
            LookupTree(target, m),
            liveness,
            demand.rates(total_rate, liveness),
            capacity=capacities,
            rng=random.Random(derive_seed(seed, f"hetero-rng:{cv}")),
        )
        balance = sim.balance(LessLogPolicy())
        result.add("replicas", cv, balance.replicas_created)
        result.add("unresolved nodes", cv, len(balance.unresolved))
    return result


def replica_decay_study(
    m: int = 6,
    crowd_rate: float = 1200.0,
    quiet_scale: float = 0.05,
    capacity: float = 100.0,
    thresholds: tuple[float, ...] = (0.0, 2.0, 5.0, 10.0),
    seed: int = 1,
) -> SweepResult:
    """Counter-based removal in the request-level simulation.

    A flash crowd drives replication up; demand then collapses to
    ``quiet_scale`` of the peak.  With the removal mechanism enabled
    (threshold > 0), nodes autonomously drop their now-cold replicas —
    the dynamic version of §2.2's "simple counter-based mechanism".
    """
    result = SweepResult(
        experiment="Extension: counter-based removal under a flash crowd (DES)",
        x_label="removal threshold (req/s)",
        y_label="replicas",
        notes=f"crowd {crowd_rate:.0f} req/s for 10s, then {quiet_scale:.0%} "
        "of that for 15s.",
    )
    liveness = SetLiveness(m, range(1 << m))
    rates = UniformDemand().rates(crowd_rate, liveness)
    target = Psi(m)("popular-file")
    for threshold in thresholds:
        exp = DesExperiment(
            m=m,
            target=target,
            entry_rates=rates,
            capacity=capacity,
            removal_threshold=threshold,
            seed=seed,
        )
        run, series = exp.run_schedule([(10.0, 1.0), (15.0, quiet_scale)])
        peak = max(count for _, count in series)
        final = series[-1][1]
        result.add("peak replicas", threshold, peak)
        result.add("final replicas", threshold, final)
        result.add(
            "removed", threshold,
            exp.metrics.counter("des.replicas_removed").value,
        )
    return result


def gossip_staleness_study(
    m: int = 5,
    total_rate: float = 500.0,
    delays: tuple[float, ...] = (0.1, 0.5, 1.0, 2.0, 4.0),
    seed: int = 3,
) -> SweepResult:
    """Requests lost to stale status words after a crash (§5 gossip).

    In gossip mode a crash is only visible to peers once a detector
    broadcast lands; until then they keep routing into the corpse and
    the transport drops those messages.  Sweeping the detection delay
    measures the price of slow failure detection.
    """
    result = SweepResult(
        experiment="Extension: stale status words after a crash",
        x_label="detection delay (s)",
        y_label="count",
        notes=f"{total_rate:.0f} req/s; crash at t=2s of an 8s run.",
    )
    liveness = SetLiveness(m, range(1 << m))
    rates = UniformDemand().rates(total_rate, liveness)
    target = Psi(m)("popular-file")
    for delay in delays:
        exp = DesExperiment(
            m=m,
            target=target,
            entry_rates=rates,
            capacity=1e9,
            gossip=True,
            detection_delay=delay,
            seed=seed,
        )
        victim = exp.tree.children(target)[0]
        exp.fail_node(victim, at_time=2.0)
        run = exp.run(duration=8.0)
        lost = run.requests_sent - run.requests_served - run.faults
        result.add("requests lost", delay, lost)
        result.add(
            "messages dropped", delay,
            exp.metrics.counter("transport.dropped.dead").value,
        )
    return result


def engine_agreement(
    m: int = 6,
    capacity: float = 100.0,
    rates: tuple[float, ...] = (400.0, 800.0, 1600.0),
    duration: float = 12.0,
    seed: int = 0,
) -> SweepResult:
    """Fluid vs DES replica counts on matched configurations."""
    result = SweepResult(
        experiment="Extension: fluid vs DES agreement",
        x_label="incoming requests/s",
        y_label="replicas",
        notes="The two engines should agree within measurement noise.",
    )
    target = Psi(m)("popular-file")
    liveness = SetLiveness(m, range(1 << m))
    demand = UniformDemand()
    for rate in rates:
        entry_rates = demand.rates(rate, liveness)
        fluid = FluidSimulation(
            LookupTree(target, m),
            liveness,
            entry_rates,
            capacity=capacity,
            rng=random.Random(seed),
        )
        fluid_replicas = fluid.balance(LessLogPolicy()).replicas_created
        des = DesExperiment(
            m=m,
            target=target,
            entry_rates=entry_rates,
            capacity=capacity,
            policy=LessLogPolicy(),
            seed=seed,
        )
        des_replicas = des.run(duration=duration).replicas_created
        result.add("fluid", rate, fluid_replicas)
        result.add("des", rate, des_replicas)
    return result
