"""Experiment drivers: the paper's figures, structure dumps, extensions."""

from .config import DEAD_FRACTIONS, PAPER_CAPACITY, PAPER_M, PAPER_RATES, FigureConfig
from .figures import FIGURES, figure5, figure6, figure7, figure8
from .runner import EXPERIMENTS, list_experiments, run_experiment

__all__ = [
    "DEAD_FRACTIONS",
    "EXPERIMENTS",
    "FIGURES",
    "FigureConfig",
    "PAPER_CAPACITY",
    "PAPER_M",
    "PAPER_RATES",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "list_experiments",
    "run_experiment",
]
