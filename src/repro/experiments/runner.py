"""Experiment registry and runner.

Maps experiment ids (the ones DESIGN.md's per-experiment index uses) to
callables producing :class:`~repro.analysis.results.SweepResult`, and
provides the run-and-render entry the CLI and benchmark harness share.
"""

from __future__ import annotations

from collections.abc import Callable

from ..analysis.results import SweepResult
from .ablations import (
    children_order_ablation,
    concurrency_ablation,
    proportional_choice_ablation,
)
from .config import FigureConfig
from .extensions import (
    churn_study,
    engine_agreement,
    fault_tolerance_study,
    gossip_staleness_study,
    heterogeneity_study,
    lookup_path_lengths,
    prune_ablation,
    replica_decay_study,
    scalability_study,
)
from .figures import figure5, figure6, figure7, figure8

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments"]


def _fig(fn: Callable[[FigureConfig | None], SweepResult]):
    def run(fast: bool = False, workers: int = 1) -> SweepResult:
        config = FigureConfig.fast() if fast else FigureConfig.paper()
        return fn(config.with_(workers=workers))

    return run


def _ext(fn: Callable[..., SweepResult]):
    def run(fast: bool = False) -> SweepResult:
        # Extensions are already CI-sized; fast mode shrinks them a bit.
        if not fast:
            return fn()
        import inspect

        params = inspect.signature(fn).parameters
        kwargs = {}
        if "samples" in params:
            kwargs["samples"] = 50
        if "crashes" in params:
            kwargs["crashes"] = 10
        if "files" in params:
            kwargs["files"] = 10
        if "duration" in params and fn is churn_study:
            kwargs["duration"] = 30.0
        if "rates" in params and fn is engine_agreement:
            kwargs["rates"] = (400.0, 800.0)
        if "widths" in params and fn is scalability_study:
            kwargs["widths"] = (8, 10, 12)
        if "thresholds" in params and fn is replica_decay_study:
            kwargs["thresholds"] = (0.0, 5.0)
        if "delays" in params and fn is gossip_staleness_study:
            kwargs["delays"] = (0.5, 2.0)
        if "cvs" in params and fn is heterogeneity_study:
            kwargs["cvs"] = (0.0, 0.5)
        return fn(**kwargs)

    return run


def _abl(fn: Callable[..., SweepResult]):
    # Ablations run at m=8; rates stay below the locality-feasibility
    # ceiling there (~6.3k req/s — above it the hot nodes' direct
    # client load alone exceeds capacity, for every policy).
    def run(fast: bool = False) -> SweepResult:
        rates = (2000.0, 6000.0) if fast else (1000.0, 2000.0, 4000.0, 6000.0)
        return fn(FigureConfig.fast().with_(m=8, rates=rates))

    return run


EXPERIMENTS: dict[str, Callable[..., SweepResult]] = {
    "fig5": _fig(figure5),
    "fig6": _fig(figure6),
    "fig7": _fig(figure7),
    "fig8": _fig(figure8),
    "ext-lookup": _ext(lookup_path_lengths),
    "ext-prune": _ext(prune_ablation),
    "ext-ft": _ext(fault_tolerance_study),
    "ext-churn": _ext(churn_study),
    "ext-des": _ext(engine_agreement),
    "ext-scale": _ext(scalability_study),
    "ext-decay": _ext(replica_decay_study),
    "ext-gossip": _ext(gossip_staleness_study),
    "ext-hetero": _ext(heterogeneity_study),
    "abl-order": _abl(children_order_ablation),
    "abl-proportional": _abl(proportional_choice_ablation),
    "abl-concurrency": _abl(concurrency_ablation),
}


def list_experiments() -> list[str]:
    return sorted(EXPERIMENTS)


def run_experiment(
    experiment_id: str, fast: bool = False, workers: int = 1
) -> SweepResult:
    """Run one experiment by id; raises ``KeyError`` for unknown ids.

    ``workers`` parallelises sweep cells for the figure experiments;
    extensions and ablations ignore it (their cells share state).
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {list_experiments()}"
        ) from None
    import inspect

    if "workers" in inspect.signature(runner).parameters:
        return runner(fast=fast, workers=workers)
    return runner(fast=fast)
