"""Experiment configuration.

Paper parameters (§6): ``m = 10`` (a 1024-slot identifier space),
``b = 0``, node capacity 100 requests/second, aggregate demand swept
from 1,000 to 20,000 requests/second.  ``FigureConfig.fast()`` gives a
reduced sweep for CI-speed benchmark runs; ``FigureConfig.paper()`` is
the full grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.errors import ConfigurationError

__all__ = [
    "FigureConfig",
    "ReliabilityConfig",
    "PAPER_M",
    "PAPER_CAPACITY",
    "PAPER_RATES",
    "DEAD_FRACTIONS",
]

PAPER_M = 10
PAPER_CAPACITY = 100.0
PAPER_RATES: tuple[float, ...] = tuple(float(r) for r in range(1000, 20001, 1000))
DEAD_FRACTIONS: tuple[float, ...] = (0.1, 0.2, 0.3)
"""Figure 6/8 dead-node fractions."""


@dataclass(frozen=True)
class ReliabilityConfig:
    """Lossy-transport / request-retry knobs for DES runs.

    ``max_attempts = 1`` reproduces the fire-and-forget baseline (a
    lost message means a lost request); larger budgets let the
    reliability layer (:mod:`repro.net.reliability`) retry with
    exponential backoff until the request completes or dead-letters.
    """

    loss_rate: float = 0.2
    timeout: float = 0.25
    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        # Retry-policy knobs share RetryPolicy's own validation.
        self.policy()

    def policy(self):
        """The :class:`~repro.net.reliability.RetryPolicy` these knobs name."""
        from ..net.reliability import RetryPolicy

        return RetryPolicy(
            timeout=self.timeout,
            max_attempts=self.max_attempts,
            backoff_base=self.backoff_base,
            backoff_factor=self.backoff_factor,
            jitter=self.jitter,
        )

    def settle_time(self) -> float:
        """Simulated tail long enough for every retry chain to resolve."""
        total = self.max_attempts * self.timeout
        for retry in range(1, self.max_attempts):
            total += self.backoff_base * self.backoff_factor ** (retry - 1) * (
                1.0 + self.jitter
            )
        return total + 1.0

    def with_(self, **changes) -> "ReliabilityConfig":
        return replace(self, **changes)


@dataclass(frozen=True)
class FigureConfig:
    """Parameters shared by all figure reproductions."""

    m: int = PAPER_M
    capacity: float = PAPER_CAPACITY
    rates: tuple[float, ...] = PAPER_RATES
    seed: int = 0
    file_name: str = "popular-file"
    hot_fraction: float = 0.2
    hot_share: float = 0.8
    workers: int = 1
    """Worker processes for sweep cells (1 = serial, 0 = one per CPU)."""

    reference: bool = False
    """Use the dict-based reference flow pass (equivalence oracle)."""

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        if not self.rates:
            raise ConfigurationError("at least one demand rate is required")
        if any(r <= 0 for r in self.rates):
            raise ConfigurationError("demand rates must be positive")
        if self.workers < 0:
            raise ConfigurationError(
                "workers must be non-negative (0 = one per CPU)"
            )

    @classmethod
    def paper(cls) -> "FigureConfig":
        """The full §6 parameter grid."""
        return cls()

    @classmethod
    def fast(cls) -> "FigureConfig":
        """A reduced sweep: same system size, five demand points."""
        return cls(rates=tuple(float(r) for r in range(4000, 20001, 4000)))

    @classmethod
    def tiny(cls) -> "FigureConfig":
        """A small system for unit tests (m=6, three points)."""
        return cls(m=6, rates=(500.0, 1000.0, 2000.0))

    def with_(self, **changes) -> "FigureConfig":
        return replace(self, **changes)
