"""Regeneration of the paper's structural figures (Figures 1–4).

These are not measurements but worked examples of the tree algebra; we
regenerate them exactly so the reproduction is checkable line-by-line
against the paper:

* **Figure 1** — the virtual lookup tree of a 16-node system.
* **Figure 2** — the physical lookup tree of ``P(4)``, 16 nodes.
* **Figure 3** — the tree of ``P(4)`` in a 14-node system with
  ``P(0)``, ``P(5)`` dead, and the redefined children list.
* **Figure 4** — the ``b = 2`` subtree decomposition of the tree of
  ``P(4)``.
"""

from __future__ import annotations

from ..core.bits import to_binary
from ..core.children import advanced_children_list, basic_children_list
from ..core.liveness import SetLiveness
from ..core.subtree import SubtreeView
from ..core.tree import LookupTree, VirtualTree

__all__ = ["figure1_data", "figure2_data", "figure3_data", "figure4_data", "render_all"]


def figure1_data(m: int = 4) -> dict:
    """Virtual tree facts: children and offspring per VID."""
    tree = VirtualTree(m)
    return {
        "m": m,
        "root": to_binary(tree.root, m),
        "children": {
            to_binary(v, m): [to_binary(c, m) for c in tree.children(v)]
            for v in range(tree.size)
            if tree.children(v)
        },
        "offspring": {
            to_binary(v, m): tree.offspring_count(v) for v in range(tree.size)
        },
    }


def figure2_data(root: int = 4, m: int = 4) -> dict:
    """Physical tree of ``P(root)``: VID↔PID map and children list."""
    tree = LookupTree(root, m)
    return {
        "root": root,
        "m": m,
        "pid_of_vid": {to_binary(v, m): tree.pid_of(v) for v in range(tree.size)},
        "children_list": basic_children_list(tree, root),
        "render": tree.render(),
        "example_route": tree.path_to_root(8),
    }


def figure3_data(root: int = 4, m: int = 4, dead: tuple[int, ...] = (0, 5)) -> dict:
    """The 14-node example: dead nodes and the redefined children list."""
    tree = LookupTree(root, m)
    liveness = SetLiveness.all_but(m, dead=list(dead))
    return {
        "root": root,
        "dead": sorted(dead),
        "n_live": liveness.live_count(),
        "children_list": advanced_children_list(tree, root, liveness),
        "children_list_vids": [
            to_binary(tree.vid_of(p), m)
            for p in advanced_children_list(tree, root, liveness)
        ],
    }


def figure4_data(root: int = 4, m: int = 4, b: int = 2) -> dict:
    """The 2**b-subtree split: members and roots per subtree id."""
    tree = LookupTree(root, m)
    views = [SubtreeView(tree, b, sid) for sid in range(1 << b)]
    return {
        "root": root,
        "b": b,
        "subtrees": {
            to_binary(view.sid, b): {
                "members": view.members(),
                "root_pid": view.root_pid,
                "root_svid": to_binary(
                    view.svid_of(view.root_pid), m - b
                ),
            }
            for view in views
        },
    }


def render_all() -> str:
    """Human-readable dump of all four structural figures."""
    f1, f2 = figure1_data(), figure2_data()
    f3, f4 = figure3_data(), figure4_data()
    lines = [
        "Figure 1: virtual lookup tree (m=4)",
        f"  root VID = {f1['root']}",
        "  children of the root: " + ", ".join(f1["children"][f1["root"]]),
        "",
        "Figure 2: lookup tree of P(4) in a 16-node system",
        f2["render"],
        f"  children list of P(4): {f2['children_list']}",
        f"  route P(8) -> P(4): {f2['example_route']}",
        "",
        "Figure 3: lookup tree of P(4), 14 nodes, P(0)/P(5) dead",
        f"  children list of P(4): {f3['children_list']}",
        "",
        "Figure 4: b=2 subtree split of the tree of P(4)",
    ]
    for sid, info in f4["subtrees"].items():
        lines.append(
            f"  subtree {sid}: members={info['members']} root=P({info['root_pid']})"
        )
    return "\n".join(lines)
