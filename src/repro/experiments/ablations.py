"""Ablation studies for LessLog's design choices.

DESIGN.md calls out three load-bearing decisions; each gets an ablation
that swaps the decision for a plausible alternative and measures the
replicas needed to reach balance:

* **Children-list order** (Property 3): LessLog replicates to the
  *most-offspring* uncopied child.  Ablations: least-offspring first,
  and a seeded random member of the list.
* **§3 proportional choice**: at the top of an incomplete tree, blame
  is split between the node's own children list and the root's,
  weighted by live-offspring count.  Ablations: always-own and
  always-root.
* **Balance concurrency**: overloaded holders act concurrently per
  measurement round.  Ablation: strictly serial (one placement per
  round) — the best-case sequential schedule.
"""

from __future__ import annotations

import random
from collections.abc import Collection

from ..analysis.results import SweepResult
from ..baselines.base import PlacementContext
from ..baselines.lesslog_policy import LessLogPolicy
from ..core.children import advanced_children_list, has_live_node_above
from ..core.hashing import Psi
from ..core.liveness import LivenessView
from ..core.replication import first_uncopied
from ..core.tree import LookupTree
from ..engine.fluid import FluidSimulation
from ..sim.rng import derive_seed
from ..workloads import UniformDemand
from .config import FigureConfig
from .figures import liveness_with_dead_fraction

__all__ = [
    "LeastOffspringPolicy",
    "RandomChildPolicy",
    "OwnListOnlyPolicy",
    "RootListOnlyPolicy",
    "children_order_ablation",
    "proportional_choice_ablation",
    "concurrency_ablation",
]


class LeastOffspringPolicy:
    """Children list walked backwards: smallest subtree first."""

    name = "least-offspring"

    def choose(self, tree, k, liveness, holders, context):
        for pid in reversed(advanced_children_list(tree, k, liveness)):
            if pid not in holders:
                return pid
        return None


class RandomChildPolicy:
    """A random uncopied children-list member (still tree-local)."""

    name = "random-child"

    def choose(self, tree, k, liveness, holders, context):
        candidates = [
            pid
            for pid in advanced_children_list(tree, k, liveness)
            if pid not in holders
        ]
        if not candidates:
            return None
        return context.rng.choice(candidates)


class OwnListOnlyPolicy:
    """§3 ablation: the top node always blames its own offspring."""

    name = "own-list-only"

    def choose(self, tree, k, liveness, holders, context):
        return first_uncopied(tree, k, liveness, holders)


class RootListOnlyPolicy:
    """§3 ablation: the top node always blames the rest of the system."""

    name = "root-list-only"

    def choose(
        self,
        tree: LookupTree,
        k: int,
        liveness: LivenessView,
        holders: Collection[int],
        context: PlacementContext,
    ):
        if has_live_node_above(tree, k, liveness):
            return first_uncopied(tree, k, liveness, holders)
        target = first_uncopied(tree, tree.root, liveness, holders)
        if target == k:
            target = None
        if target is None:
            target = first_uncopied(tree, k, liveness, holders)
        return target


def _replicas(config, policy, liveness, rate, label):
    tree = LookupTree(Psi(config.m)(config.file_name), config.m)
    rates = UniformDemand().rates(rate, liveness)
    sim = FluidSimulation(
        tree,
        liveness,
        rates,
        capacity=config.capacity,
        rng=random.Random(derive_seed(config.seed, label)),
    )
    return sim.balance(policy).replicas_created


def children_order_ablation(config: FigureConfig | None = None) -> SweepResult:
    """Most-offspring vs least-offspring vs random children-list order."""
    config = config or FigureConfig.fast().with_(m=8)
    result = SweepResult(
        experiment="Ablation: children-list ordering (Property 3)",
        x_label="incoming requests/s",
        y_label="replicas",
        notes="Most-offspring-first is the paper's rule.",
    )
    liveness = liveness_with_dead_fraction(config.m, 0.0, config.seed)
    policies = [
        ("most-offspring (paper)", LessLogPolicy()),
        ("least-offspring", LeastOffspringPolicy()),
        ("random-child", RandomChildPolicy()),
    ]
    for rate in config.rates:
        for label, policy in policies:
            result.add(
                label, rate, _replicas(config, policy, liveness, rate, label)
            )
    return result


def proportional_choice_ablation(
    config: FigureConfig | None = None,
) -> SweepResult:
    """§3 proportional split vs its two degenerate variants.

    The scenario that exercises the branch: the target node *and* its
    largest children are dead, so the storage node sits deep in the
    tree and its own subtree covers only a sliver of the system, while
    demand is skewed (80/20 locality).  Blaming only its own offspring
    then cannot shed the externally-arriving load.
    """
    config = config or FigureConfig.fast().with_(m=8)
    from ..core.liveness import SetLiveness
    from ..workloads import LocalityDemand

    result = SweepResult(
        experiment="Ablation: §3 proportional choice at the top node",
        x_label="incoming requests/s",
        y_label="value",
        notes="dead target + its two largest children, 80/20 locality; "
        "'…unbalanced' = 1 when the variant failed to clear overload.",
    )
    target = Psi(config.m)(config.file_name)
    tree = LookupTree(target, config.m)
    dead = [target, *tree.children(target)[:2]]
    liveness = SetLiveness.all_but(config.m, dead=dead)
    demand = LocalityDemand(seed=5)
    policies = [
        ("proportional (paper)", LessLogPolicy),
        ("own-list-only", OwnListOnlyPolicy),
        ("root-list-only", RootListOnlyPolicy),
    ]
    for rate in config.rates:
        for label, policy_cls in policies:
            sim = FluidSimulation(
                tree,
                liveness,
                demand.rates(rate, liveness),
                capacity=config.capacity,
                rng=random.Random(derive_seed(config.seed, label)),
            )
            balance = sim.balance(policy_cls())
            result.add(f"{label} replicas", rate, balance.replicas_created)
            result.add(f"{label} unbalanced", rate, 0 if balance.balanced else 1)
    return result


def concurrency_ablation(config: FigureConfig | None = None) -> SweepResult:
    """Concurrent rounds (deployed behaviour) vs serial placements."""
    config = config or FigureConfig.fast().with_(m=8)
    result = SweepResult(
        experiment="Ablation: balance-loop concurrency",
        x_label="incoming requests/s",
        y_label="value",
        notes="serial = one placement per measurement round.",
    )
    liveness = liveness_with_dead_fraction(config.m, 0.0, config.seed)
    tree = LookupTree(Psi(config.m)(config.file_name), config.m)
    for rate in config.rates:
        rates = UniformDemand().rates(rate, liveness)
        for label, serial in (("concurrent replicas", False), ("serial replicas", True)):
            sim = FluidSimulation(
                tree, liveness, rates, capacity=config.capacity,
                rng=random.Random(config.seed),
            )
            balance = sim.balance(LessLogPolicy(), serial=serial)
            result.add(label, rate, balance.replicas_created)
            result.add(
                label.replace("replicas", "rounds"), rate, balance.rounds
            )
    return result
