"""One-command reproduction report.

Runs every registered experiment, checks each against the paper's
qualitative claim, and renders a self-contained markdown report —
``lesslog report`` regenerates the whole evaluation in one shot.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..analysis.chart import render_sweep_chart
from ..analysis.results import SweepResult
from ..analysis.stats import dominates, max_relative_spread, mean_ratio
from .runner import EXPERIMENTS, run_experiment

__all__ = ["ClaimCheck", "CLAIMS", "generate_report"]


@dataclass(frozen=True)
class ClaimCheck:
    """A paper claim with an executable verdict."""

    claim: str
    check: Callable[[SweepResult], bool]


def _series(result: SweepResult, name: str) -> list[float]:
    return [result.value(name, x) for x in result.xs()]


CLAIMS: dict[str, ClaimCheck] = {
    "fig5": ClaimCheck(
        "random >> LessLog ~= log-based under even load",
        lambda r: dominates(_series(r, "log-based"), _series(r, "lesslog"))
        and mean_ratio(_series(r, "random"), _series(r, "lesslog")) > 2.0,
    ),
    "fig6": ClaimCheck(
        "similar replica counts across 10/20/30% dead nodes",
        lambda r: max_relative_spread(
            [_series(r, name) for name in sorted(r.series)]
        )
        < 0.8,
    ),
    "fig7": ClaimCheck(
        "random >> LessLog >= log-based under 80/20 locality",
        lambda r: dominates(_series(r, "log-based"), _series(r, "lesslog"))
        and mean_ratio(_series(r, "random"), _series(r, "lesslog")) > 2.0,
    ),
    "fig8": ClaimCheck(
        "similar replica counts across dead fractions (locality)",
        lambda r: max_relative_spread(
            [_series(r, name) for name in sorted(r.series)]
        )
        < 0.8,
    ),
    "ext-lookup": ClaimCheck(
        "lookup bounded by O(log N), comparable to Chord",
        lambda r: all(
            r.value("lesslog max", x) <= len(bin(int(x))) for x in r.xs()
        ),
    ),
    "ext-prune": ClaimCheck(
        "counter-based removal reduces the replica population",
        lambda r: r.value("after prune", r.xs()[-1])
        <= r.value("before prune", r.xs()[-1]),
    ),
    "ext-ft": ClaimCheck(
        "survivability never degrades as b grows",
        lambda r: _series(r, "survival fraction")
        == sorted(_series(r, "survival fraction")),
    ),
    "ext-scale": ClaimCheck(
        "replica count is demand-determined, independent of N",
        lambda r: len(set(_series(r, "replicas to balance"))) == 1,
    ),
    "ext-decay": ClaimCheck(
        "counter-based removal drains cold replicas after a crowd",
        lambda r: all(
            r.value("final replicas", t) < r.value("peak replicas", t)
            for t in r.xs()
            if t > 0
        ),
    ),
    "ext-gossip": ClaimCheck(
        "request losses grow with failure-detection delay",
        lambda r: _series(r, "requests lost")
        == sorted(_series(r, "requests lost")),
    ),
    "abl-order": ClaimCheck(
        "most-offspring-first ordering needs the fewest replicas",
        lambda r: dominates(
            _series(r, "most-offspring (paper)"), _series(r, "least-offspring")
        ),
    ),
    "abl-concurrency": ClaimCheck(
        "replica counts are schedule-invariant",
        lambda r: _series(r, "concurrent replicas")
        == _series(r, "serial replicas"),
    ),
}


def generate_report(
    experiment_ids: list[str] | None = None,
    fast: bool = True,
    charts: bool = True,
) -> str:
    """Run experiments and render the markdown reproduction report."""
    ids = experiment_ids if experiment_ids is not None else sorted(EXPERIMENTS)
    lines: list[str] = [
        "# LessLog reproduction report",
        "",
        f"Mode: {'fast (reduced sweeps)' if fast else 'full paper grid'}.",
        "Each section regenerates one paper figure or extension study and",
        "checks it against the paper's qualitative claim.",
        "",
    ]
    passed = failed = unchecked = 0
    for experiment_id in ids:
        result = run_experiment(experiment_id, fast=fast)
        lines.append(f"## {experiment_id}: {result.experiment}")
        lines.append("")
        claim = CLAIMS.get(experiment_id)
        if claim is not None:
            ok = claim.check(result)
            verdict = "PASS" if ok else "FAIL"
            passed += ok
            failed += not ok
            lines.append(f"**Claim:** {claim.claim} — **{verdict}**")
        else:
            unchecked += 1
            lines.append("**Claim:** (informational, no automated check)")
        lines.append("")
        lines.append("```")
        lines.append(result.render())
        if charts and len(result.xs()) > 1:
            lines.append("")
            lines.append(render_sweep_chart(result))
        lines.append("```")
        lines.append("")
    lines.insert(
        4,
        f"**Summary: {passed} claims reproduced, {failed} failed, "
        f"{unchecked} informational.**",
    )
    lines.insert(5, "")
    return "\n".join(lines)
