"""Exception hierarchy for the LessLog reproduction.

Every error raised by the library derives from :class:`LessLogError`
so callers can catch library failures with a single handler.
"""

from __future__ import annotations

__all__ = [
    "LessLogError",
    "InvalidIdentifierError",
    "NodeDownError",
    "UnknownNodeError",
    "FileNotFoundInSystemError",
    "NoLiveNodeError",
    "MembershipError",
    "StorageError",
    "SimulationError",
    "ConfigurationError",
]


class LessLogError(Exception):
    """Base class for all library errors."""


class InvalidIdentifierError(LessLogError, ValueError):
    """A PID/VID/width failed validation."""


class NodeDownError(LessLogError):
    """An operation was sent to a node that is not live."""

    def __init__(self, pid: int, operation: str = "") -> None:
        self.pid = pid
        self.operation = operation
        suffix = f" during {operation}" if operation else ""
        super().__init__(f"node P({pid}) is not live{suffix}")


class UnknownNodeError(LessLogError):
    """A PID does not name any node ever registered with the system."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        super().__init__(f"no node with PID {pid} is registered")


class FileNotFoundInSystemError(LessLogError):
    """A get/update could not locate any copy of the requested file."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"file {name!r} not found in the system")


class NoLiveNodeError(LessLogError):
    """FINDLIVENODE scanned the whole tree without finding a live node."""


class MembershipError(LessLogError):
    """Invalid join/leave/fail transition (e.g. duplicate PID)."""


class StorageError(LessLogError):
    """Local file-store violation (duplicate insert, missing replica...)."""


class SimulationError(LessLogError):
    """The discrete-event kernel was driven into an invalid state."""


class ConfigurationError(LessLogError, ValueError):
    """An experiment or system configuration is inconsistent."""
