"""The paper's hash function ψ mapping file names to target PIDs.

The paper only requires ψ to take "the unique information of the
requested file such as its URL address" and return a number in
``[0, 2**m)``.  We use SHA-256 with an optional salt so experiments can
place a file's target node deterministically (by choosing the salt) or
realistically (uniform over the identifier space).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .bits import check_width

__all__ = ["Psi", "psi"]


@dataclass(frozen=True)
class Psi:
    """A deterministic hash ψ: file name → target PID in ``[0, 2**m)``.

    Parameters
    ----------
    m:
        Identifier width; outputs are ``m``-bit.
    salt:
        Mixed into the digest.  Two ``Psi`` instances with different
        salts realise independent placements of the same namespace.
    """

    m: int
    salt: str = ""

    def __post_init__(self) -> None:
        check_width(self.m)

    def __call__(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.salt}\x00{name}".encode()).digest()
        # 8 bytes give 64 bits of entropy, far beyond any supported m.
        value = int.from_bytes(digest[:8], "big")
        return value & ((1 << self.m) - 1)

    def find_name_for_target(self, target: int, prefix: str = "file", limit: int = 1_000_000) -> str:
        """Search for a name hashing to ``target`` (testing convenience).

        Linear probing over ``f"{prefix}-{i}"``; with ``m <= 20`` this
        terminates almost immediately in expectation.
        """
        if not 0 <= target < (1 << self.m):
            raise ValueError(f"target {target} out of range for m={self.m}")
        for i in range(limit):
            name = f"{prefix}-{i}"
            if self(name) == target:
                return name
        raise RuntimeError(
            f"no name with prefix {prefix!r} hashes to {target} within {limit} probes"
        )


def psi(name: str, m: int, salt: str = "") -> int:
    """Functional shorthand for ``Psi(m, salt)(name)``."""
    return Psi(m, salt)(name)
