"""Core LessLog algorithms: tree algebra, routing, and replica placement.

This package is pure and deterministic — no simulation state, no I/O.
Everything maps one-to-one onto a construct in the paper:

=====================  =================================================
Module                 Paper construct
=====================  =================================================
``bits``               fixed-width bit manipulations (the substrate)
``vid``                Properties 1–4 over virtual identifiers
``tree``               virtual / physical lookup trees (Figures 1–2)
``liveness``           live vs dead identifiers (§3)
``routing``            ``FP``, ``FINDLIVENODE``, GETFILE walks (§2.2/§3)
``children``           basic & advanced children lists (§2.2/§3)
``replication``        ``C^r_k``, proportional choice, pruning (§2.2/§3)
``subtree``            fault-tolerant 2**b-way split (§4)
``hashing``            the hash ψ mapping files to targets
=====================  =================================================
"""

from .bits import complement, leading_ones, mask, to_binary
from .children import (
    advanced_children_list,
    basic_children_list,
    has_live_node_above,
    live_subtree_size,
)
from .errors import (
    ConfigurationError,
    FileNotFoundInSystemError,
    InvalidIdentifierError,
    LessLogError,
    MembershipError,
    NodeDownError,
    NoLiveNodeError,
    SimulationError,
    StorageError,
    UnknownNodeError,
)
from .hashing import Psi, psi
from .liveness import AllLive, LivenessView, SetLiveness
from .replication import (
    PlacementDecision,
    choose_replica_target,
    first_uncopied,
    prune_cold_replicas,
)
from .routing import (
    find_live_node,
    first_alive_ancestor,
    resolve_route,
    route_length,
    storage_node,
)
from .subtree import (
    SubtreeView,
    insert_targets,
    migration_order,
    split_vid,
    subtree_of_pid,
)
from .tree import LookupTree, VirtualTree

__all__ = [
    "AllLive",
    "ConfigurationError",
    "FileNotFoundInSystemError",
    "InvalidIdentifierError",
    "LessLogError",
    "LivenessView",
    "LookupTree",
    "MembershipError",
    "NodeDownError",
    "NoLiveNodeError",
    "PlacementDecision",
    "Psi",
    "SetLiveness",
    "SimulationError",
    "StorageError",
    "SubtreeView",
    "UnknownNodeError",
    "VirtualTree",
    "advanced_children_list",
    "basic_children_list",
    "choose_replica_target",
    "complement",
    "find_live_node",
    "first_alive_ancestor",
    "first_uncopied",
    "has_live_node_above",
    "insert_targets",
    "leading_ones",
    "live_subtree_size",
    "mask",
    "migration_order",
    "prune_cold_replicas",
    "psi",
    "resolve_route",
    "route_length",
    "split_vid",
    "storage_node",
    "subtree_of_pid",
    "to_binary",
]
