"""Replica-placement decisions (paper §2.2 "Replicating File" and §3).

The heart of LessLog: when ``P(k)`` is overloaded by requests for a
file targeting ``P(r)``, pick — with bitwise operations only, no access
logs — the node that should receive the next replica.

* Basic rule: ``C^r_k(f)`` = the first node in the children list of
  ``P(k)`` (in the tree of ``P(r)``) that does not yet hold a copy.
* §3 top-node rule: when no live node has a VID above ``P(k)``'s, the
  overload may originate anywhere in the system, so LessLog makes a
  *proportional choice* between ``P(k)``'s children list and the
  root's, weighted by the ratio of ``P(k)``'s live offspring to the
  rest of the live nodes.
* Counter-based pruning (§2.2/§6): replicas whose observed service rate
  falls below a threshold are removed.
"""

from __future__ import annotations

from collections.abc import Callable, Collection
from dataclasses import dataclass

import random

from .children import (
    advanced_children_list,
    has_live_node_above,
    live_subtree_size,
)
from .liveness import LivenessView
from .routing import RoutingTable
from .tree import LookupTree

__all__ = [
    "first_uncopied",
    "choose_replica_target",
    "PlacementDecision",
    "prune_cold_replicas",
]


def first_uncopied(
    tree: LookupTree,
    k: int,
    liveness: LivenessView,
    holders: Collection[int],
    table: RoutingTable | None = None,
) -> int | None:
    """``C^r_k(f)``: first children-list member of ``P(k)`` without a copy.

    Returns ``None`` when every member already holds one — the paper's
    loop then simply cannot offload further from ``P(k)``.  ``table``
    is a pure accelerator: it memoizes the children list across calls.
    """
    if table is not None:
        children: Collection[int] = table.children_list(k, tree, liveness)
    else:
        children = advanced_children_list(tree, k, liveness)
    for pid in children:
        if pid not in holders:
            return pid
    return None


@dataclass(frozen=True)
class PlacementDecision:
    """Outcome of one replica-placement decision.

    ``target`` is ``None`` when no eligible node remained.  ``source``
    records whose children list supplied the target (``k`` or the tree
    root), and ``proportional`` whether the §3 weighted choice fired.
    """

    target: int | None
    source: int
    proportional: bool


def choose_replica_target(
    tree: LookupTree,
    k: int,
    liveness: LivenessView,
    holders: Collection[int],
    rng: random.Random | None = None,
    table: RoutingTable | None = None,
) -> PlacementDecision:
    """LessLog's placement rule for an overloaded holder ``P(k)``.

    Implements §3 exactly:

    * if a live node exists with VID above ``vid(k)``, the overload is
      forwarded traffic from ``P(k)``'s offspring → replicate into
      ``P(k)``'s children list (``C^r_k``);
    * otherwise ``P(k)`` is where the inserted file lives, and the
      choice between its children list and the root's is made
      proportionally to live-offspring count vs the rest.

    ``rng`` drives only the proportional branch; pass a seeded
    ``random.Random`` for reproducibility (defaults to a fixed seed).
    ``table`` accelerates the structural queries without changing any
    decision (same children lists, same coin, same rng consumption).
    """
    if rng is None:
        rng = random.Random(0)
    if table is not None:
        above = table.has_live_above(k)
    else:
        above = has_live_node_above(tree, k, liveness)
    if above:
        return PlacementDecision(
            target=first_uncopied(tree, k, liveness, holders, table),
            source=k,
            proportional=False,
        )
    if table is not None:
        own = int(table.live_subtree[k])
    else:
        own = live_subtree_size(tree, k, liveness)
    total = liveness.live_count()
    rest = max(total - own, 0)
    # Weighted coin: with probability own/(own+rest) blame the offspring.
    pick_own = rest == 0 or rng.random() < own / (own + rest)
    source = k if pick_own else tree.root
    target = first_uncopied(tree, source, liveness, holders, table)
    if target is None and not pick_own:
        # The root's list may be exhausted while k's still has room
        # (or vice versa); fall through to the other list rather than
        # stalling the balance loop.
        source = k
        target = first_uncopied(tree, k, liveness, holders, table)
    elif target is None and pick_own:
        source = tree.root
        target = first_uncopied(tree, tree.root, liveness, holders, table)
    # Never "replicate" onto the overloaded node itself.
    if target == k:
        target = None
    return PlacementDecision(target=target, source=source, proportional=True)


def prune_cold_replicas(
    holders: Collection[int],
    served_rate: Callable[[int], float],
    threshold: float,
    protected: Collection[int] = (),
) -> list[int]:
    """Counter-based replica removal.

    Returns the holders whose observed service rate is below
    ``threshold`` and that are not ``protected`` (the inserted copies
    must never be pruned).  The caller removes them and re-checks
    balance; see ``repro.engine.fluid.prune_and_rebalance``.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    protected_set = set(protected)
    return [
        pid
        for pid in holders
        if pid not in protected_set and served_rate(pid) < threshold
    ]
