"""Fault-tolerant model (paper §4): the ``2**b``-way subtree split.

Reserving the last ``b`` of the ``m`` VID bits partitions every lookup
tree into ``2**b`` *independent and identical* binomial subtrees: all
nodes sharing the same low-``b`` VID pattern (the **subtree
identifier**) form one subtree, and their high ``m - b`` bits (the
**subtree VID**) obey exactly the same Properties 1--4 at width
``m - b``.  A file is inserted into all ``2**b`` subtrees, so it
survives any failure pattern that leaves at least one of its target
nodes alive.

:class:`SubtreeView` binds a physical tree, a ``b``, and one subtree
identifier, exposing the usual structural/routing queries in PID space;
module functions handle whole-file concerns (insert targets, subtree
membership, fault migration order).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import vid as V
from .bits import check_id, low_bits
from .errors import ConfigurationError, NoLiveNodeError
from .liveness import LivenessView, cache_token
from .tree import LookupTree

__all__ = [
    "check_b",
    "split_vid",
    "join_vid",
    "subtree_of_pid",
    "SubtreeView",
    "SvidLiveness",
    "identity_tree",
    "insert_targets",
    "migration_order",
]


def check_b(b: int, m: int) -> None:
    """Validate a fault-tolerance degree ``b`` against width ``m``."""
    if not isinstance(b, int) or isinstance(b, bool):
        raise ConfigurationError(f"b must be an int, got {b!r}")
    if not 0 <= b < m:
        raise ConfigurationError(f"b must satisfy 0 <= b < m={m}, got {b}")


def split_vid(vid: int, m: int, b: int) -> tuple[int, int]:
    """Split a VID into ``(subtree_vid, subtree_id)``.

    The subtree id is the low ``b`` bits; the subtree VID is the
    remaining high ``m - b`` bits.
    """
    check_id(vid, m)
    check_b(b, m)
    return vid >> b, low_bits(vid, b)


def join_vid(svid: int, sid: int, m: int, b: int) -> int:
    """Inverse of :func:`split_vid`."""
    check_b(b, m)
    check_id(svid, m - b) if m - b >= 1 else None
    if not 0 <= sid < (1 << b):
        raise ConfigurationError(f"subtree id {sid} out of range for b={b}")
    return (svid << b) | sid


def subtree_of_pid(tree: LookupTree, pid: int, b: int) -> int:
    """Subtree identifier of ``P(pid)`` in ``tree``."""
    check_b(b, tree.m)
    return low_bits(tree.vid_of(pid), b)


@dataclass(frozen=True)
class SubtreeView:
    """One of the ``2**b`` subtrees of a physical lookup tree.

    All structural queries operate at width ``m - b`` over subtree VIDs
    and are exposed in PID space, mirroring :class:`LookupTree`.
    """

    tree: LookupTree
    b: int
    sid: int

    def __post_init__(self) -> None:
        check_b(self.b, self.tree.m)
        if not 0 <= self.sid < (1 << self.b):
            raise ConfigurationError(
                f"subtree id {self.sid} out of range for b={self.b}"
            )

    @property
    def width(self) -> int:
        """Width of the subtree-VID space: ``m - b``."""
        return self.tree.m - self.b

    @property
    def size(self) -> int:
        return 1 << self.width

    def contains(self, pid: int) -> bool:
        """Is ``P(pid)`` a member of this subtree?"""
        return subtree_of_pid(self.tree, pid, self.b) == self.sid

    def svid_of(self, pid: int) -> int:
        """Subtree VID of a member PID."""
        if not self.contains(pid):
            raise ConfigurationError(
                f"P({pid}) is not in subtree {self.sid} of the tree of "
                f"P({self.tree.root})"
            )
        return self.tree.vid_of(pid) >> self.b

    def pid_of_svid(self, svid: int) -> int:
        """PID of the member at subtree VID ``svid``."""
        return self.tree.pid_of(join_vid(svid, self.sid, self.tree.m, self.b))

    @property
    def root_pid(self) -> int:
        """PID at the subtree's all-ones subtree VID."""
        return self.pid_of_svid((1 << self.width) - 1)

    def parent(self, pid: int) -> int:
        """Parent within the subtree (Property 2 at width ``m - b``)."""
        return self.pid_of_svid(V.parent_vid(self.svid_of(pid), self.width))

    def children(self, pid: int) -> list[int]:
        """Children within the subtree, most offspring first."""
        return [
            self.pid_of_svid(c)
            for c in V.children_vids(self.svid_of(pid), self.width)
        ]

    def members(self) -> list[int]:
        """All member PIDs, descending subtree VID."""
        return [self.pid_of_svid(s) for s in range(self.size - 1, -1, -1)]

    # -- liveness-aware operations (the §3 algorithms, per subtree) ----

    def first_alive_ancestor(self, pid: int, liveness: LivenessView) -> int | None:
        """Nearest live ancestor within the subtree, or ``None``."""
        svid = self.svid_of(pid)
        top = (1 << self.width) - 1
        while svid != top:
            svid = V.parent_vid(svid, self.width)
            candidate = self.pid_of_svid(svid)
            if liveness.is_live(candidate):
                return candidate
        return None

    def find_live_node(self, start_pid: int, liveness: LivenessView) -> int:
        """The modified ``FINDLIVENODE`` of §4, over subtree VIDs."""
        if liveness.is_live(start_pid):
            return start_pid
        start = self.svid_of(start_pid)
        for svid in range(start - 1, -1, -1):
            pid = self.pid_of_svid(svid)
            if liveness.is_live(pid):
                return pid
        raise NoLiveNodeError(
            f"subtree {self.sid} of the tree of P({self.tree.root}) has no "
            f"live node below subtree VID {start}"
        )

    def storage_node(self, liveness: LivenessView) -> int:
        """Where an insert stores this subtree's copy of the file."""
        return self.find_live_node(self.root_pid, liveness)

    def resolve_route(self, entry: int, liveness: LivenessView) -> list[int]:
        """GETFILE walk confined to this subtree (entry must be a member)."""
        if not liveness.is_live(entry):
            raise NoLiveNodeError(f"entry node P({entry}) is not live")
        route = [entry]
        current = entry
        while True:
            nxt = self.first_alive_ancestor(current, liveness)
            if nxt is None:
                break
            current = nxt
            route.append(current)
        home = self.storage_node(liveness)
        if current != home:
            route.append(home)
        return route

    def live_count(self, liveness: LivenessView) -> int:
        """Number of live members."""
        return sum(1 for pid in self.members() if liveness.is_live(pid))


class SvidLiveness:
    """Liveness over a subtree's svid space (for the identity reduction).

    §4 says "all file operations described in Section 3 still work
    inside each subtree".  We realise that literally: a subtree at
    width ``m - b`` is isomorphic to a whole system whose "PIDs" are
    subtree VIDs, via :meth:`SubtreeView.identity_tree`.  This wrapper
    presents the member liveness in that space, so every §2/§3
    algorithm (children lists, ``choose_replica_target``, ...) can run
    unchanged inside one subtree.
    """

    def __init__(self, view: SubtreeView, liveness: LivenessView) -> None:
        self.view = view
        self._liveness = liveness

    @property
    def m(self) -> int:
        return self.view.width

    @property
    def epoch(self) -> int | None:
        """Mirrors the wrapped view's epoch (``None`` if it has none)."""
        return getattr(self._liveness, "epoch", None)

    def cache_token(self) -> tuple | None:
        """Content fingerprint: the subtree identity + the inner token.

        Lets identity-reduced routing tables share the same LRU cache
        as whole-tree tables; ``None`` (no caching) when the wrapped
        view cannot be fingerprinted.
        """
        inner = cache_token(self._liveness)
        if inner is None:
            return None
        tree = self.view.tree
        return ("svid", tree.root, tree.m, self.view.b, self.view.sid, inner)

    def is_live(self, svid: int) -> bool:
        return self._liveness.is_live(self.view.pid_of_svid(svid))

    def live_pids(self):
        return iter(
            svid
            for svid in range(1 << self.view.width)
            if self.is_live(svid)
        )

    def live_count(self) -> int:
        return sum(1 for _ in self.live_pids())


def identity_tree(view: SubtreeView) -> LookupTree:
    """A width-``m-b`` tree whose PID space *is* the svid space.

    Rooting at the all-ones identifier makes the XOR key zero, so
    ``pid == vid`` — results translate back through
    :meth:`SubtreeView.pid_of_svid`.
    """
    return LookupTree((1 << view.width) - 1, view.width)


def insert_targets(tree: LookupTree, b: int, liveness: LivenessView) -> list[int]:
    """The ``2**b`` storage PIDs for a file targeting ``tree.root``.

    One per subtree, each located with the subtree-local modified
    ``FINDLIVENODE``.  Subtrees with no live member are skipped (the
    file then has a reduced replication degree, as in the paper when
    nodes "fail simultaneously").
    """
    check_b(b, tree.m)
    targets: list[int] = []
    for sid in range(1 << b):
        view = SubtreeView(tree, b, sid)
        try:
            targets.append(view.storage_node(liveness))
        except NoLiveNodeError:
            continue
    return targets


def migration_order(tree: LookupTree, b: int, entry: int) -> list[int]:
    """Subtree identifiers in the order a faulting request tries them.

    §4: a request first searches the entry node's own subtree; on a
    fault it migrates "to another subtree by changing the subtree
    identifier".  We fix the deterministic order: own subtree first,
    then the remaining identifiers ascending from it (mod ``2**b``).
    """
    check_b(b, tree.m)
    own = subtree_of_pid(tree, entry, b)
    count = 1 << b
    return [(own + offset) % count for offset in range(count)]
