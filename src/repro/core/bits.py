"""Bitwise primitives underlying the LessLog lookup-tree algebra.

Everything in the paper's Properties 1--4 reduces to a handful of
fixed-width bit manipulations on ``m``-bit identifiers.  This module is
the single place those manipulations are defined; the rest of the core
package composes them.

Conventions
-----------
* Identifiers are plain Python ``int`` in ``[0, 2**m)``.
* Bit positions are counted from 0 at the least-significant bit, so the
  most-significant bit of an ``m``-bit identifier is position ``m - 1``.
* The *leading-ones run* of ``v`` is the number of consecutive ``1``
  bits starting at position ``m - 1`` and moving downward.  It drives
  the entire tree shape: a VID with run length ``i`` has exactly ``i``
  children and ``2**i - 1`` offspring (Property 1 / Property 3).
"""

from __future__ import annotations

__all__ = [
    "mask",
    "check_width",
    "check_id",
    "complement",
    "leading_ones",
    "trailing_zeros",
    "popcount",
    "bit_length_fixed",
    "set_leftmost_zero",
    "leftmost_zero_position",
    "low_bits",
    "high_bits",
    "to_binary",
    "from_binary",
]

_MAX_WIDTH = 30
"""Upper bound on ``m`` we accept (2**30 nodes is far beyond any use)."""


def mask(m: int) -> int:
    """Return the all-ones ``m``-bit mask ``2**m - 1``."""
    check_width(m)
    return (1 << m) - 1


def check_width(m: int) -> None:
    """Validate a tree width ``m``; raise ``ValueError`` otherwise."""
    if not isinstance(m, int) or isinstance(m, bool):
        raise ValueError(f"tree width m must be an int, got {m!r}")
    if not 1 <= m <= _MAX_WIDTH:
        raise ValueError(f"tree width m must be in [1, {_MAX_WIDTH}], got {m}")


def check_id(v: int, m: int) -> None:
    """Validate that ``v`` is an ``m``-bit identifier."""
    check_width(m)
    if not isinstance(v, int) or isinstance(v, bool):
        raise ValueError(f"identifier must be an int, got {v!r}")
    if not 0 <= v < (1 << m):
        raise ValueError(f"identifier {v} out of range for m={m}")


def complement(v: int, m: int) -> int:
    """Return the ``m``-bit bitwise complement of ``v``.

    The paper writes this as an overbar; the physical lookup tree of
    ``P(r)`` is the virtual tree XORed with ``complement(r, m)``.
    """
    check_id(v, m)
    return v ^ ((1 << m) - 1)


def leading_ones(v: int, m: int) -> int:
    """Length of the run of consecutive 1 bits from the MSB of ``v``.

    This is the child count of VID ``v`` (Property 1) and
    ``log2`` of its subtree size (Property 3).
    """
    check_id(v, m)
    run = 0
    bit = 1 << (m - 1)
    while bit and (v & bit):
        run += 1
        bit >>= 1
    return run


def trailing_zeros(v: int, m: int) -> int:
    """Number of consecutive 0 bits from the LSB of ``v`` (``m`` if 0)."""
    check_id(v, m)
    if v == 0:
        return m
    return (v & -v).bit_length() - 1


def popcount(v: int) -> int:
    """Number of set bits in ``v``."""
    return int(v).bit_count()


def bit_length_fixed(v: int, m: int) -> int:
    """``v.bit_length()`` after range-checking against width ``m``."""
    check_id(v, m)
    return v.bit_length()


def leftmost_zero_position(v: int, m: int) -> int:
    """Position of the most-significant 0 bit of ``v``.

    Raises ``ValueError`` when ``v`` is the all-ones root, which has no
    zero bit (and, per Property 2, no parent).
    """
    check_id(v, m)
    full = (1 << m) - 1
    if v == full:
        raise ValueError("all-ones identifier has no zero bit (tree root)")
    # The leftmost zero sits just below the leading-ones run.
    return m - 1 - leading_ones(v, m)


def set_leftmost_zero(v: int, m: int) -> int:
    """Set the most-significant 0 bit of ``v`` — Property 2's parent rule."""
    return v | (1 << leftmost_zero_position(v, m))


def low_bits(v: int, width: int) -> int:
    """The low ``width`` bits of ``v`` (``width`` may be 0)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return v & ((1 << width) - 1)


def high_bits(v: int, m: int, width: int) -> int:
    """The high ``width`` bits of the ``m``-bit value ``v``."""
    check_id(v, m)
    if not 0 <= width <= m:
        raise ValueError(f"width must be in [0, {m}], got {width}")
    return v >> (m - width) if width else 0


def to_binary(v: int, m: int) -> str:
    """Format ``v`` as an ``m``-character binary string (paper notation)."""
    check_id(v, m)
    return format(v, f"0{m}b")


def from_binary(s: str) -> int:
    """Parse a binary string (optionally with ``_`` separators)."""
    cleaned = s.replace("_", "").strip()
    if not cleaned or any(c not in "01" for c in cleaned):
        raise ValueError(f"not a binary string: {s!r}")
    return int(cleaned, 2)
