"""Lookup-tree objects: the virtual tree and per-root physical trees.

The pure-function VID algebra lives in :mod:`repro.core.vid`; this
module wraps it in two small classes that carry the width ``m`` (and,
for physical trees, the root PID ``r``) so call sites stop threading
those around.  Physical trees also expose PID-space versions of every
query via Property 4's XOR mapping.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from . import vid as V
from .bits import check_id, check_width, complement, mask, to_binary

__all__ = ["VirtualTree", "LookupTree"]


@dataclass(frozen=True)
class VirtualTree:
    """The unique ``2**m``-node template binomial tree over VIDs."""

    m: int

    def __post_init__(self) -> None:
        check_width(self.m)

    @property
    def size(self) -> int:
        return 1 << self.m

    @property
    def root(self) -> int:
        return V.root_vid(self.m)

    def children(self, vid: int) -> list[int]:
        """Children of ``vid`` in descending-subtree-size order."""
        return V.children_vids(vid, self.m)

    def parent(self, vid: int) -> int:
        return V.parent_vid(vid, self.m)

    def child_count(self, vid: int) -> int:
        return V.child_count(vid, self.m)

    def subtree_size(self, vid: int) -> int:
        return V.subtree_size(vid, self.m)

    def offspring_count(self, vid: int) -> int:
        return V.offspring_count(vid, self.m)

    def in_subtree(self, w: int, vid: int) -> bool:
        return V.in_subtree(w, vid, self.m)

    def is_ancestor(self, a: int, w: int) -> bool:
        return V.is_ancestor(a, w, self.m)

    def iter_subtree(self, vid: int) -> Iterator[int]:
        return V.iter_subtree(vid, self.m)

    def ancestors(self, vid: int) -> list[int]:
        return V.ancestors(vid, self.m)

    def depth(self, vid: int) -> int:
        return V.depth(vid, self.m)

    def path_to_root(self, vid: int) -> list[int]:
        return V.path_to_root(vid, self.m)

    # -- whole-tree array queries (vectorized kernels) ------------------

    def parent_array(self) -> np.ndarray:
        """Parent VID of every VID as one int array (root maps to -1).

        Property 2 vectorized: set the leftmost 0 bit, found by
        propagating the leading-ones run.  O(m) numpy passes.
        """
        vids = np.arange(self.size, dtype=np.int64)
        runs = self.leading_ones_array()
        # The leftmost zero sits just below the leading-ones run.
        parents = vids | (1 << (self.m - 1 - runs).clip(min=0))
        parents[vids == self.root] = -1
        return parents

    def leading_ones_array(self) -> np.ndarray:
        """Length of the leading-ones run of every VID (Property 1)."""
        vids = np.arange(self.size, dtype=np.int64)
        runs = np.zeros(self.size, dtype=np.int64)
        ongoing = np.ones(self.size, dtype=bool)
        for bit in range(self.m - 1, -1, -1):
            is_one = (vids >> bit) & 1 == 1
            ongoing &= is_one
            runs += ongoing
        return runs

    def depth_array(self) -> np.ndarray:
        """Depth of every VID — its number of 0 bits, vectorized."""
        vids = np.arange(self.size, dtype=np.int64)
        ones = np.zeros(self.size, dtype=np.int64)
        for bit in range(self.m):
            ones += (vids >> bit) & 1
        return self.m - ones

    def subtree_low_mask_array(self) -> np.ndarray:
        """Per-VID mask of the bits fixed across its subtree."""
        runs = self.leading_ones_array()
        return (np.int64(1) << (self.m - runs)) - 1

    def iter_bfs(self) -> Iterator[int]:
        """Breadth-first traversal from the root (children big-first)."""
        queue = [self.root]
        while queue:
            nxt: list[int] = []
            for v in queue:
                yield v
                nxt.extend(self.children(v))
            queue = nxt

    def validate(self) -> None:
        """Exhaustively check the binomial-tree invariants (tests/debug).

        Every non-root VID must appear exactly once as a child, the
        parent/child relations must be mutually consistent, and subtree
        sizes must add up.  Cost is O(2**m * m); intended for small m.
        """
        seen: dict[int, int] = {}
        for v in range(self.size):
            for c in self.children(v):
                if c in seen:
                    raise AssertionError(
                        f"VID {to_binary(c, self.m)} has two parents: "
                        f"{to_binary(seen[c], self.m)} and {to_binary(v, self.m)}"
                    )
                seen[c] = v
                if self.parent(c) != v:
                    raise AssertionError(
                        f"parent({to_binary(c, self.m)}) != {to_binary(v, self.m)}"
                    )
        if len(seen) != self.size - 1:
            raise AssertionError(f"expected {self.size - 1} children, saw {len(seen)}")
        for v in range(self.size):
            total = 1 + sum(self.subtree_size(c) for c in self.children(v))
            if total != self.subtree_size(v):
                raise AssertionError(f"subtree sizes inconsistent at {v}")


@dataclass(frozen=True)
class LookupTree:
    """The physical lookup tree of ``P(root)`` in an ``m``-bit system.

    All structural queries delegate to the virtual tree through
    Property 4's involution ``pid <-> vid = id XOR complement(root)``.
    """

    root: int
    m: int

    def __post_init__(self) -> None:
        check_width(self.m)
        check_id(self.root, self.m)
        # vid_of/pid_of sit on the runtime's per-message routing path:
        # precompute the XOR constant once (the dataclass is frozen, so
        # it can never go stale) instead of re-deriving and re-validating
        # it on every translation.
        object.__setattr__(self, "_key", complement(self.root, self.m))

    @property
    def size(self) -> int:
        return 1 << self.m

    @property
    def xor_key(self) -> int:
        """The complement of the root — the PID↔VID XOR constant."""
        return self._key

    def vid_of(self, pid: int) -> int:
        """VID of ``P(pid)`` in this tree (Property 4)."""
        if type(pid) is not int or not 0 <= pid < (1 << self.m):
            check_id(pid, self.m)
        return pid ^ self._key

    def pid_of(self, vid: int) -> int:
        """PID of the node at ``vid`` in this tree (Property 4)."""
        if type(vid) is not int or not 0 <= vid < (1 << self.m):
            check_id(vid, self.m)
        return vid ^ self._key

    # -- PID-space structural queries ----------------------------------

    def parent(self, pid: int) -> int:
        """PID of the parent of ``P(pid)``; raises at the root."""
        return self.pid_of(V.parent_vid(self.vid_of(pid), self.m))

    def children(self, pid: int) -> list[int]:
        """Children PIDs of ``P(pid)``, largest subtree first."""
        return [self.pid_of(c) for c in V.children_vids(self.vid_of(pid), self.m)]

    def child_count(self, pid: int) -> int:
        return V.child_count(self.vid_of(pid), self.m)

    def subtree_size(self, pid: int) -> int:
        return V.subtree_size(self.vid_of(pid), self.m)

    def offspring_count(self, pid: int) -> int:
        return V.offspring_count(self.vid_of(pid), self.m)

    def in_subtree(self, pid: int, under: int) -> bool:
        """Is ``P(pid)`` in the subtree rooted at ``P(under)``?"""
        return V.in_subtree(self.vid_of(pid), self.vid_of(under), self.m)

    def is_ancestor(self, a: int, w: int) -> bool:
        return V.is_ancestor(self.vid_of(a), self.vid_of(w), self.m)

    def iter_subtree(self, pid: int) -> Iterator[int]:
        for v in V.iter_subtree(self.vid_of(pid), self.m):
            yield self.pid_of(v)

    def ancestors(self, pid: int) -> list[int]:
        """PIDs from ``P(pid)``'s parent up to the root."""
        return [self.pid_of(v) for v in V.ancestors(self.vid_of(pid), self.m)]

    def depth(self, pid: int) -> int:
        return V.depth(self.vid_of(pid), self.m)

    def path_to_root(self, pid: int) -> list[int]:
        """PIDs from ``P(pid)`` (inclusive) to the root (inclusive)."""
        return [self.pid_of(v) for v in V.path_to_root(self.vid_of(pid), self.m)]

    # -- whole-tree array queries (vectorized kernels) ------------------

    def vid_array(self) -> np.ndarray:
        """VID of every PID: ``arange(2**m) ^ xor_key`` (Property 4).

        The involution means the same array also maps VID → PID.
        """
        return np.arange(self.size, dtype=np.int64) ^ np.int64(self.xor_key)

    def render(self, max_nodes: int = 64) -> str:
        """ASCII rendering of the tree (小 systems only), for debugging."""
        if self.size > max_nodes:
            return f"<LookupTree root=P({self.root}) m={self.m}: too large to render>"
        lines: list[str] = []

        def walk(vid: int, prefix: str, is_last: bool, is_root: bool) -> None:
            pid = self.pid_of(vid)
            connector = "" if is_root else ("`-- " if is_last else "|-- ")
            lines.append(f"{prefix}{connector}P({pid}) vid={to_binary(vid, self.m)}")
            kids = V.children_vids(vid, self.m)
            child_prefix = prefix + ("" if is_root else ("    " if is_last else "|   "))
            for idx, c in enumerate(kids):
                walk(c, child_prefix, idx == len(kids) - 1, False)

        walk(mask(self.m), "", True, True)
        return "\n".join(lines)
