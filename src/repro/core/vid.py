"""Virtual-identifier (VID) algebra: the paper's Properties 1--4.

The *virtual lookup tree* is a binomial tree over all ``2**m`` VIDs,
rooted at the all-ones VID.  Every node's position is a pure function of
its VID, which is what lets LessLog route and place replicas without any
state beyond the target's PID:

* **Property 1** — a VID whose leading-ones run has length ``i`` has
  exactly ``i`` children, obtained by clearing one of those ``i``
  leading 1 bits.  Clearing the *least-significant* bit of the run
  yields the child with the largest subtree.
* **Property 2** — the parent of a VID is obtained by setting its
  most-significant 0 bit.
* **Property 3** — subtree size is ``2**i``; numerically larger VIDs
  never have smaller subtrees.
* **Property 4** — the physical tree of ``P(r)`` maps
  ``pid = vid XOR complement(r)`` (an involution, so the same function
  converts both ways).

A useful closed form (derived in DESIGN.md and exploited throughout):
``w`` lies in the subtree of ``v`` iff ``w`` agrees with ``v`` on the
low ``m - i`` bits, where ``i = leading_ones(v)``.
"""

from __future__ import annotations

from collections.abc import Iterator

from .bits import (
    check_id,
    complement,
    leading_ones,
    low_bits,
    mask,
    set_leftmost_zero,
)

__all__ = [
    "root_vid",
    "child_count",
    "children_vids",
    "parent_vid",
    "subtree_size",
    "offspring_count",
    "subtree_low_mask",
    "in_subtree",
    "is_ancestor",
    "iter_subtree",
    "ancestors",
    "depth",
    "path_to_root",
    "vid_to_pid",
    "pid_to_vid",
]


def root_vid(m: int) -> int:
    """The all-ones VID: root of the virtual lookup tree."""
    return mask(m)


def child_count(vid: int, m: int) -> int:
    """Number of children of ``vid`` (Property 1)."""
    return leading_ones(vid, m)


def children_vids(vid: int, m: int) -> list[int]:
    """Children of ``vid``, ordered by *descending* subtree size.

    Property 1: clear one of the ``i`` leading 1 bits.  Clearing bit
    ``m - i`` (the lowest bit of the run) preserves a run of ``i - 1``
    ones and therefore yields the biggest subtree; clearing the MSB
    yields a leaf.  The returned order is the paper's *children list*
    order for a fully-live system.
    """
    i = leading_ones(vid, m)
    return [vid ^ (1 << p) for p in range(m - i, m)]


def parent_vid(vid: int, m: int) -> int:
    """Parent of ``vid`` (Property 2). Raises ``ValueError`` at the root."""
    return set_leftmost_zero(vid, m)


def subtree_size(vid: int, m: int) -> int:
    """Number of nodes in the subtree rooted at ``vid`` (incl. itself)."""
    return 1 << leading_ones(vid, m)


def offspring_count(vid: int, m: int) -> int:
    """Number of strict descendants of ``vid`` — ``2**i - 1``."""
    return subtree_size(vid, m) - 1


def subtree_low_mask(vid: int, m: int) -> int:
    """Mask of the bit positions fixed across ``vid``'s subtree.

    All subtree members share ``vid``'s value on the low ``m - i`` bits.
    """
    i = leading_ones(vid, m)
    return (1 << (m - i)) - 1


def in_subtree(w: int, vid: int, m: int) -> bool:
    """O(1) test: is ``w`` in the subtree rooted at ``vid``?"""
    check_id(w, m)
    lm = subtree_low_mask(vid, m)
    return (w & lm) == (vid & lm)


def is_ancestor(a: int, w: int, m: int) -> bool:
    """True when ``a`` is a *strict* ancestor of ``w``."""
    return a != w and in_subtree(w, a, m)


def iter_subtree(vid: int, m: int) -> Iterator[int]:
    """Iterate every VID in the subtree of ``vid`` (root first).

    Subtree members share the low ``m - i`` bits and range freely over
    the top ``i`` bits, so enumeration is a simple counter walk.
    """
    i = leading_ones(vid, m)
    low = low_bits(vid, m - i)
    for top in range((1 << i) - 1, -1, -1):
        yield (top << (m - i)) | low


def ancestors(vid: int, m: int) -> list[int]:
    """Strict ancestors of ``vid``, nearest first, ending at the root."""
    out: list[int] = []
    v = vid
    r = mask(m)
    while v != r:
        v = parent_vid(v, m)
        out.append(v)
    return out


def depth(vid: int, m: int) -> int:
    """Distance from ``vid`` to the root — the number of 0 bits."""
    check_id(vid, m)
    return m - int(vid).bit_count()


def path_to_root(vid: int, m: int) -> list[int]:
    """``vid`` followed by its ancestors up to and including the root."""
    return [vid, *ancestors(vid, m)]


def vid_to_pid(vid: int, r: int, m: int) -> int:
    """Map a VID in the tree of ``P(r)`` to its PID (Property 4)."""
    check_id(vid, m)
    return vid ^ complement(r, m)


def pid_to_vid(pid: int, r: int, m: int) -> int:
    """Map a PID to its VID in the tree of ``P(r)`` (Property 4).

    XOR with the same complement — the mapping is an involution.
    """
    check_id(pid, m)
    return pid ^ complement(r, m)
