"""Liveness views: who is alive in the ``2**m`` identifier space.

The advanced system model (paper §3) distinguishes *live* nodes from
*dead* identifiers — positions in the virtual tree with no node behind
them.  Routing, children lists, insertion, and replication all consult
a liveness view.  The core algorithms only need the tiny read-only
protocol defined here; the cluster layer provides richer, mutable
implementations (status words) that satisfy it.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator
from typing import Protocol, runtime_checkable

from .bits import check_id, check_width

__all__ = ["LivenessView", "AllLive", "SetLiveness", "cache_token"]


@runtime_checkable
class LivenessView(Protocol):
    """Read-only view of node liveness over an ``m``-bit PID space."""

    @property
    def m(self) -> int:
        """Identifier width."""
        ...

    def is_live(self, pid: int) -> bool:
        """True when ``P(pid)`` is a live node."""
        ...

    def live_pids(self) -> Iterator[int]:
        """Iterate the PIDs of all live nodes (ascending)."""
        ...

    def live_count(self) -> int:
        """Number of live nodes."""
        ...


def cache_token(liveness: LivenessView) -> tuple | None:
    """A value-based key identifying a liveness view's current content.

    Views that support caching expose ``cache_token()``; two views with
    equal tokens are guaranteed to report identical liveness for every
    PID.  Returns ``None`` for views that cannot be fingerprinted (the
    cluster layer's mutable status words, say) — callers must then skip
    caching and recompute.
    """
    token = getattr(liveness, "cache_token", None)
    if token is None:
        return None
    return token()


class AllLive:
    """The basic model (paper §2): every identifier is a live node."""

    def __init__(self, m: int) -> None:
        check_width(m)
        self._m = m

    @property
    def m(self) -> int:
        return self._m

    def is_live(self, pid: int) -> bool:
        check_id(pid, self._m)
        return True

    def live_pids(self) -> Iterator[int]:
        return iter(range(1 << self._m))

    def live_count(self) -> int:
        return 1 << self._m

    @property
    def epoch(self) -> int:
        """Mutation counter; an immutable view is forever at epoch 0."""
        return 0

    def cache_token(self) -> tuple:
        return ("all", self._m)

    def __repr__(self) -> str:
        return f"AllLive(m={self._m})"


class SetLiveness:
    """An explicit live-PID set — the advanced model's view (paper §3)."""

    def __init__(self, m: int, live: Iterable[int]) -> None:
        check_width(m)
        self._m = m
        self._live: set[int] = set()
        for pid in live:
            check_id(pid, m)
            self._live.add(pid)
        self._epoch = 0
        self._token: tuple | None = None

    @classmethod
    def all_but(cls, m: int, dead: Iterable[int]) -> "SetLiveness":
        """Every identifier live except the given dead ones."""
        dead_set = set(dead)
        return cls(m, (p for p in range(1 << m) if p not in dead_set))

    @property
    def m(self) -> int:
        return self._m

    def is_live(self, pid: int) -> bool:
        check_id(pid, self._m)
        return pid in self._live

    def live_pids(self) -> Iterator[int]:
        return iter(sorted(self._live))

    def live_count(self) -> int:
        return len(self._live)

    @property
    def epoch(self) -> int:
        """Bumped by every :meth:`add` / :meth:`remove` mutation."""
        return self._epoch

    def cache_token(self) -> tuple:
        """Content fingerprint, memoized until the next mutation.

        Value-based (two views with identical live sets share a token),
        so routing tables built in one worker process are reused for
        every sweep cell that unpickles an equal view.
        """
        if self._token is None:
            digest = hashlib.blake2b(digest_size=16)
            for pid in sorted(self._live):
                digest.update(pid.to_bytes(8, "little"))
            self._token = ("set", self._m, len(self._live), digest.hexdigest())
        return self._token

    def add(self, pid: int) -> None:
        """Mark ``pid`` live (used by churn orchestration)."""
        check_id(pid, self._m)
        if pid not in self._live:
            self._live.add(pid)
            self._epoch += 1
            self._token = None

    def remove(self, pid: int) -> None:
        """Mark ``pid`` dead."""
        check_id(pid, self._m)
        if pid in self._live:
            self._live.discard(pid)
            self._epoch += 1
            self._token = None

    def __contains__(self, pid: int) -> bool:
        return pid in self._live

    def __repr__(self) -> str:
        return f"SetLiveness(m={self._m}, live={len(self._live)})"
