"""Liveness views: who is alive in the ``2**m`` identifier space.

The advanced system model (paper §3) distinguishes *live* nodes from
*dead* identifiers — positions in the virtual tree with no node behind
them.  Routing, children lists, insertion, and replication all consult
a liveness view.  The core algorithms only need the tiny read-only
protocol defined here; the cluster layer provides richer, mutable
implementations (status words) that satisfy it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Protocol, runtime_checkable

from .bits import check_id, check_width

__all__ = ["LivenessView", "AllLive", "SetLiveness"]


@runtime_checkable
class LivenessView(Protocol):
    """Read-only view of node liveness over an ``m``-bit PID space."""

    @property
    def m(self) -> int:
        """Identifier width."""
        ...

    def is_live(self, pid: int) -> bool:
        """True when ``P(pid)`` is a live node."""
        ...

    def live_pids(self) -> Iterator[int]:
        """Iterate the PIDs of all live nodes (ascending)."""
        ...

    def live_count(self) -> int:
        """Number of live nodes."""
        ...


class AllLive:
    """The basic model (paper §2): every identifier is a live node."""

    def __init__(self, m: int) -> None:
        check_width(m)
        self._m = m

    @property
    def m(self) -> int:
        return self._m

    def is_live(self, pid: int) -> bool:
        check_id(pid, self._m)
        return True

    def live_pids(self) -> Iterator[int]:
        return iter(range(1 << self._m))

    def live_count(self) -> int:
        return 1 << self._m

    def __repr__(self) -> str:
        return f"AllLive(m={self._m})"


class SetLiveness:
    """An explicit live-PID set — the advanced model's view (paper §3)."""

    def __init__(self, m: int, live: Iterable[int]) -> None:
        check_width(m)
        self._m = m
        self._live: set[int] = set()
        for pid in live:
            check_id(pid, m)
            self._live.add(pid)

    @classmethod
    def all_but(cls, m: int, dead: Iterable[int]) -> "SetLiveness":
        """Every identifier live except the given dead ones."""
        dead_set = set(dead)
        return cls(m, (p for p in range(1 << m) if p not in dead_set))

    @property
    def m(self) -> int:
        return self._m

    def is_live(self, pid: int) -> bool:
        check_id(pid, self._m)
        return pid in self._live

    def live_pids(self) -> Iterator[int]:
        return iter(sorted(self._live))

    def live_count(self) -> int:
        return len(self._live)

    def add(self, pid: int) -> None:
        """Mark ``pid`` live (used by churn orchestration)."""
        check_id(pid, self._m)
        self._live.add(pid)

    def remove(self, pid: int) -> None:
        """Mark ``pid`` dead."""
        check_id(pid, self._m)
        self._live.discard(pid)

    def __contains__(self, pid: int) -> bool:
        return pid in self._live

    def __repr__(self) -> str:
        return f"SetLiveness(m={self._m}, live={len(self._live)})"
