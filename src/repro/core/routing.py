"""Liveness-aware routing over a lookup tree (paper §2.2 and §3).

Three primitives drive every file operation:

* :func:`first_alive_ancestor` — the augmented ``FP^r_k`` of §3: the
  nearest *live* ancestor of ``P(k)`` in the tree of ``P(r)``.
* :func:`find_live_node` — the paper's ``FINDLIVENODE(s, r)``: starting
  from ``P(s)``, the live node with the largest VID not exceeding
  ``vid(s)`` in the tree of ``P(r)``.  With ``s = r`` this locates the
  live node with the most offspring, where ``ADVANCEDINSERTFILE``
  stores a file whose target is dead.
* :func:`resolve_route` — the full GETFILE walk: the ordered list of
  live PIDs a request visits from an entry node until it reaches the
  node that must hold the (inserted) file, including the final jump to
  ``FINDLIVENODE(r, r)`` when the climb tops out below it.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

import numpy as np

from . import vid as V
from .bits import mask
from .children import advanced_children_list
from .errors import NoLiveNodeError
from .liveness import LivenessView, cache_token
from .tree import LookupTree, VirtualTree

__all__ = [
    "first_alive_ancestor",
    "find_live_node",
    "storage_node",
    "resolve_route",
    "iter_route",
    "route_length",
    "RoutingTable",
    "routing_table",
    "routing_table_cache_clear",
    "routing_table_cache_info",
]


def first_alive_ancestor(tree: LookupTree, k: int, liveness: LivenessView) -> int | None:
    """Nearest live strict ancestor of ``P(k)`` in ``tree`` (or ``None``).

    This is the §3 augmentation of ``FP^r_k``: climb Property-2 parents,
    skipping dead identifiers.  Returns ``None`` when every ancestor up
    to the root is dead (the caller has reached the top of its chain).
    """
    v = tree.vid_of(k)
    top = mask(tree.m)
    while v != top:
        v = V.parent_vid(v, tree.m)
        pid = tree.pid_of(v)
        if liveness.is_live(pid):
            return pid
    return None


def find_live_node(tree: LookupTree, s: int, liveness: LivenessView) -> int:
    """The paper's ``FINDLIVENODE(s, r)`` with ``r = tree.root``.

    If ``P(s)`` is live, return ``s``.  Otherwise scan VIDs downward
    from ``vid(s) - 1`` and return the first live PID.  By Property 3
    the result is the live node with the most offspring among those
    with VID below ``vid(s)``.

    Raises :class:`NoLiveNodeError` when no live node exists in range,
    matching the algorithm's ``return false``.
    """
    if liveness.is_live(s):
        return s
    s_vid = tree.vid_of(s)
    for v in range(s_vid - 1, -1, -1):
        pid = tree.pid_of(v)
        if liveness.is_live(pid):
            return pid
    raise NoLiveNodeError(
        f"no live node with VID below {s_vid} in the tree of P({tree.root})"
    )


def storage_node(tree: LookupTree, liveness: LivenessView) -> int:
    """Where ``ADVANCEDINSERTFILE`` stores a file targeting ``tree.root``.

    ``FINDLIVENODE(r, r)``: the root itself when live, else the live
    node with the globally largest VID (most offspring).
    """
    return find_live_node(tree, tree.root, liveness)


def iter_route(tree: LookupTree, entry: int, liveness: LivenessView) -> Iterator[int]:
    """Yield the live PIDs a request visits, entry node first.

    The walk follows ``first_alive_ancestor`` hops.  If the climb ends
    (no live ancestor) at a node other than the storage node — which
    can only happen when the target ``P(r)`` is dead — the request
    makes the §3 "second step" jump to ``FINDLIVENODE(r, r)``.
    """
    if not liveness.is_live(entry):
        raise NoLiveNodeError(f"entry node P({entry}) is not live")
    current = entry
    yield current
    while True:
        nxt = first_alive_ancestor(tree, current, liveness)
        if nxt is None:
            break
        current = nxt
        yield current
    if current != tree.root:
        home = storage_node(tree, liveness)
        if home != current:
            yield home


def resolve_route(tree: LookupTree, entry: int, liveness: LivenessView) -> list[int]:
    """The full route as a list (see :func:`iter_route`)."""
    return list(iter_route(tree, entry, liveness))


def route_length(tree: LookupTree, entry: int, liveness: LivenessView) -> int:
    """Number of forwarding hops on the route from ``entry`` (≥ 0)."""
    return len(resolve_route(tree, entry, liveness)) - 1


class RoutingTable:
    """Precomputed routing arrays for one ``(tree, liveness)`` pair.

    Next-hop structure is a pure function of identifiers and liveness
    (it never depends on replica placement), so everything a flow pass
    or placement decision needs can be computed once and reused across
    every balance round and every sweep cell at the same liveness:

    * ``vids`` — PID → VID (the Property-4 involution, so it is also
      VID → PID);
    * ``tree_parent`` / ``depth`` — tree structure per PID (liveness
      free; the root has parent ``-1``);
    * ``nearest_live_ancestor`` — the §3 augmented ``FP^r_k`` per live
      PID (``-1`` when every ancestor is dead);
    * ``next_hop`` — the fluid forwarding hop: nearest live ancestor,
      falling back to the storage node at the top of the chain (the
      storage node maps to itself; dead PIDs map to ``-1``);
    * ``eff_depth`` / ``waves`` — depth in the forwarding forest and
      the topological schedule for a vectorized flow pass: one array of
      source PIDs per level, deepest level first, each sorted by
      ascending VID (the reference pass's per-target accumulation
      order);
    * ``live_subtree`` — live-node count of every PID's subtree (the §3
      proportional-choice weight);
    * ``order`` / ``live_pids_asc`` — live PIDs sorted by VID / by PID.

    Instances are immutable once built; get them via
    :func:`routing_table`, which memoizes on the liveness content so
    repeated sweep cells at the same ``(root, liveness)`` share one
    table.
    """

    __slots__ = (
        "m", "n", "root", "home", "liveness_epoch", "vids", "live",
        "tree_parent", "depth", "nearest_live_ancestor", "next_hop",
        "eff_depth", "waves", "live_subtree", "order", "live_pids_asc",
        "max_live_vid", "_children_lists", "_eff_children", "_live_floor",
    )

    def __init__(self, tree: LookupTree, liveness: LivenessView) -> None:
        m, n = tree.m, tree.size
        self.m, self.n, self.root = m, n, tree.root
        self.liveness_epoch = getattr(liveness, "epoch", None)
        virtual = VirtualTree(m)
        vids = tree.vid_array()
        live = np.zeros(n, dtype=bool)
        live[np.fromiter(liveness.live_pids(), dtype=np.int64, count=-1)] = True
        if not live.any():
            raise NoLiveNodeError(f"no live node in the tree of P({tree.root})")
        live_by_vid = live[vids]  # involution: index by VID
        parent_by_vid = virtual.parent_array()
        depth_by_vid = virtual.depth_array()

        # Nearest live *proper* ancestor per VID, resolved root-down so
        # each wave can read its parents' already-final answers.
        nla_by_vid = np.full(n, -1, dtype=np.int64)
        by_depth = np.argsort(depth_by_vid, kind="stable")
        boundaries = np.searchsorted(depth_by_vid[by_depth], np.arange(m + 2))
        for d in range(1, m + 1):
            wave = by_depth[boundaries[d]:boundaries[d + 1]]
            if wave.size == 0:
                continue
            parents = parent_by_vid[wave]
            nla_by_vid[wave] = np.where(
                live_by_vid[parents], parents, nla_by_vid[parents]
            )

        self.vids = vids
        self.live = live
        self.tree_parent = np.where(
            parent_by_vid[vids] >= 0, parent_by_vid[vids] ^ tree.xor_key, -1
        )
        self.depth = depth_by_vid[vids]
        self.max_live_vid = int(vids[live].max())
        self.home = int(self.max_live_vid ^ tree.xor_key)

        nla_vid_of_pid = nla_by_vid[vids]
        self.nearest_live_ancestor = np.where(
            live & (nla_vid_of_pid >= 0), nla_vid_of_pid ^ tree.xor_key, -1
        )
        next_hop = self.nearest_live_ancestor.copy()
        next_hop[live & (next_hop < 0)] = self.home
        next_hop[~live] = -1
        self.next_hop = next_hop

        # Depth in the forwarding forest (home is its only root).
        eff_depth = np.full(n, -1, dtype=np.int64)
        eff_depth[self.home] = 0
        pending = live & (np.arange(n) != self.home)
        for _ in range(m + 1):
            if not pending.any():
                break
            ready = pending & (eff_depth[next_hop] >= 0)
            eff_depth[ready] = eff_depth[next_hop[ready]] + 1
            pending &= ~ready
        self.eff_depth = eff_depth

        live_pids = np.nonzero(live)[0].astype(np.int64)
        self.live_pids_asc = live_pids
        self.order = live_pids[np.argsort(vids[live_pids], kind="stable")]

        # Topological schedule: deepest forwarding level first, sources
        # ascending-VID within a level (the storage node never pushes).
        sources = self.order[self.order != self.home]
        sources = sources[np.argsort(-eff_depth[sources], kind="stable")]
        level_starts = np.nonzero(
            np.diff(eff_depth[sources], prepend=np.int64(-2))
        )[0]
        self.waves = tuple(np.split(sources, level_starts[1:]))

        # Forwarding children per target (ascending VID within each
        # group), for incremental path re-flows.
        by_target = sources[np.argsort(next_hop[sources], kind="stable")]
        targets = next_hop[by_target]
        group_starts = np.nonzero(np.diff(targets, prepend=np.int64(-2)))[0]
        self._eff_children = {
            int(targets[start]): [int(p) for p in group]
            for start, group in zip(
                group_starts, np.split(by_target, group_starts[1:])
            )
        }

        # Live-node count of every subtree: push live flags up the tree.
        counts = live_by_vid.astype(np.int64)
        for d in range(m, 0, -1):
            wave = by_depth[boundaries[d]:boundaries[d + 1]]
            if wave.size:
                np.add.at(counts, parent_by_vid[wave], counts[wave])
        self.live_subtree = counts[vids]

        self._children_lists: dict[int, tuple[int, ...]] = {}
        self._live_floor: np.ndarray | None = None

    # -- structure queries ----------------------------------------------

    def has_live_above(self, pid: int) -> bool:
        """Is there a live node with VID strictly above ``vid(pid)``?"""
        return int(self.vids[pid]) < self.max_live_vid

    def find_live(self, pid: int) -> int:
        """The paper's ``FINDLIVENODE(pid, root)`` as an O(1) lookup.

        Matches :func:`find_live_node` exactly — ``pid`` itself when
        live, else the live node with the largest VID strictly below
        ``vid(pid)`` — but reads a lazily-built prefix-maximum array
        instead of scanning the VID space per call.
        """
        if self.live[pid]:
            return int(pid)
        floor = self._live_floor
        if floor is None:
            live_by_vid = self.live[self.vids]  # involution: index by VID
            floor = np.maximum.accumulate(
                np.where(live_by_vid, np.arange(self.n, dtype=np.int64), -1)
            )
            self._live_floor = floor
        v = int(self.vids[pid])
        if v == 0 or int(floor[v - 1]) < 0:
            raise NoLiveNodeError(
                f"no live node with VID below {v} in the tree of P({self.root})"
            )
        return int(self.vids[int(floor[v - 1])])  # involution: VID -> PID

    def children_list(self, pid: int, tree: LookupTree, liveness: LivenessView) -> tuple[int, ...]:
        """§3 advanced children list of ``P(pid)``, memoized per table."""
        cached = self._children_lists.get(pid)
        if cached is None:
            cached = tuple(advanced_children_list(tree, pid, liveness))
            self._children_lists[pid] = cached
        return cached

    def eff_children(self, pid: int) -> list[int]:
        """Live PIDs whose forwarding hop is ``pid``, ascending VID."""
        return self._eff_children.get(pid, [])

    def subtree_mask(self, pid: int) -> np.ndarray:
        """Boolean PID mask of ``P(pid)``'s subtree (O(n) bit test)."""
        v = int(self.vids[pid])
        low = V.subtree_low_mask(v, self.m)
        return (self.vids & low) == (v & low)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoutingTable(root=P({self.root}), m={self.m}, "
            f"live={int(self.live.sum())}, home=P({self.home}))"
        )


_TABLE_CACHE: OrderedDict[tuple, RoutingTable] = OrderedDict()
_TABLE_CACHE_MAX = 256
_table_cache_hits = 0
_table_cache_misses = 0


def routing_table(tree: LookupTree, liveness: LivenessView) -> RoutingTable:
    """The :class:`RoutingTable` for ``(tree, liveness)``, LRU-cached.

    The cache key is the liveness *content* (see
    :func:`repro.core.liveness.cache_token`), so a mutation bumps the
    view's epoch, changes its token, and transparently invalidates the
    cached table; same-content lookups return the identical object.
    Views that cannot be fingerprinted get a fresh table every call.
    """
    global _table_cache_hits, _table_cache_misses
    token = cache_token(liveness)
    if token is None:
        return RoutingTable(tree, liveness)
    key = (tree.m, tree.root, token)
    table = _TABLE_CACHE.get(key)
    if table is not None:
        _TABLE_CACHE.move_to_end(key)
        _table_cache_hits += 1
        return table
    _table_cache_misses += 1
    table = RoutingTable(tree, liveness)
    _TABLE_CACHE[key] = table
    while len(_TABLE_CACHE) > _TABLE_CACHE_MAX:
        _TABLE_CACHE.popitem(last=False)
    return table


def routing_table_cache_clear() -> None:
    """Drop every cached table (tests and benchmark isolation)."""
    global _table_cache_hits, _table_cache_misses
    _TABLE_CACHE.clear()
    _table_cache_hits = _table_cache_misses = 0


def routing_table_cache_info() -> dict[str, int]:
    """Hit/miss/size counters for the table cache."""
    return {
        "hits": _table_cache_hits,
        "misses": _table_cache_misses,
        "size": len(_TABLE_CACHE),
        "maxsize": _TABLE_CACHE_MAX,
    }
