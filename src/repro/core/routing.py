"""Liveness-aware routing over a lookup tree (paper §2.2 and §3).

Three primitives drive every file operation:

* :func:`first_alive_ancestor` — the augmented ``FP^r_k`` of §3: the
  nearest *live* ancestor of ``P(k)`` in the tree of ``P(r)``.
* :func:`find_live_node` — the paper's ``FINDLIVENODE(s, r)``: starting
  from ``P(s)``, the live node with the largest VID not exceeding
  ``vid(s)`` in the tree of ``P(r)``.  With ``s = r`` this locates the
  live node with the most offspring, where ``ADVANCEDINSERTFILE``
  stores a file whose target is dead.
* :func:`resolve_route` — the full GETFILE walk: the ordered list of
  live PIDs a request visits from an entry node until it reaches the
  node that must hold the (inserted) file, including the final jump to
  ``FINDLIVENODE(r, r)`` when the climb tops out below it.
"""

from __future__ import annotations

from collections.abc import Iterator

from . import vid as V
from .bits import mask
from .errors import NoLiveNodeError
from .liveness import LivenessView
from .tree import LookupTree

__all__ = [
    "first_alive_ancestor",
    "find_live_node",
    "storage_node",
    "resolve_route",
    "iter_route",
    "route_length",
]


def first_alive_ancestor(tree: LookupTree, k: int, liveness: LivenessView) -> int | None:
    """Nearest live strict ancestor of ``P(k)`` in ``tree`` (or ``None``).

    This is the §3 augmentation of ``FP^r_k``: climb Property-2 parents,
    skipping dead identifiers.  Returns ``None`` when every ancestor up
    to the root is dead (the caller has reached the top of its chain).
    """
    v = tree.vid_of(k)
    top = mask(tree.m)
    while v != top:
        v = V.parent_vid(v, tree.m)
        pid = tree.pid_of(v)
        if liveness.is_live(pid):
            return pid
    return None


def find_live_node(tree: LookupTree, s: int, liveness: LivenessView) -> int:
    """The paper's ``FINDLIVENODE(s, r)`` with ``r = tree.root``.

    If ``P(s)`` is live, return ``s``.  Otherwise scan VIDs downward
    from ``vid(s) - 1`` and return the first live PID.  By Property 3
    the result is the live node with the most offspring among those
    with VID below ``vid(s)``.

    Raises :class:`NoLiveNodeError` when no live node exists in range,
    matching the algorithm's ``return false``.
    """
    if liveness.is_live(s):
        return s
    s_vid = tree.vid_of(s)
    for v in range(s_vid - 1, -1, -1):
        pid = tree.pid_of(v)
        if liveness.is_live(pid):
            return pid
    raise NoLiveNodeError(
        f"no live node with VID below {s_vid} in the tree of P({tree.root})"
    )


def storage_node(tree: LookupTree, liveness: LivenessView) -> int:
    """Where ``ADVANCEDINSERTFILE`` stores a file targeting ``tree.root``.

    ``FINDLIVENODE(r, r)``: the root itself when live, else the live
    node with the globally largest VID (most offspring).
    """
    return find_live_node(tree, tree.root, liveness)


def iter_route(tree: LookupTree, entry: int, liveness: LivenessView) -> Iterator[int]:
    """Yield the live PIDs a request visits, entry node first.

    The walk follows ``first_alive_ancestor`` hops.  If the climb ends
    (no live ancestor) at a node other than the storage node — which
    can only happen when the target ``P(r)`` is dead — the request
    makes the §3 "second step" jump to ``FINDLIVENODE(r, r)``.
    """
    if not liveness.is_live(entry):
        raise NoLiveNodeError(f"entry node P({entry}) is not live")
    current = entry
    yield current
    while True:
        nxt = first_alive_ancestor(tree, current, liveness)
        if nxt is None:
            break
        current = nxt
        yield current
    if current != tree.root:
        home = storage_node(tree, liveness)
        if home != current:
            yield home


def resolve_route(tree: LookupTree, entry: int, liveness: LivenessView) -> list[int]:
    """The full route as a list (see :func:`iter_route`)."""
    return list(iter_route(tree, entry, liveness))


def route_length(tree: LookupTree, entry: int, liveness: LivenessView) -> int:
    """Number of forwarding hops on the route from ``entry`` (≥ 0)."""
    return len(resolve_route(tree, entry, liveness)) - 1
