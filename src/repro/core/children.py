"""Children lists: the paper's replica-placement target ordering.

In the basic model (§2) the *children list* of ``P(k)`` in the tree of
``P(r)`` is simply ``P(k)``'s children sorted by descending offspring
count.  The advanced model (§3) redefines it for systems with dead
identifiers:

    "We first redefine the children list of P(k) to include every live
    child node of P(k) and the children list of each dead node [...]
    sorted by the VID."

i.e. dead children are recursively *spliced* — replaced by their own
children lists — and the resulting live set is ordered by descending
VID, which by Property 3 is also descending offspring count.  The
paper's Figure 3 example is reproduced verbatim in the test suite.
"""

from __future__ import annotations

from . import vid as V
from .liveness import LivenessView
from .tree import LookupTree

__all__ = [
    "basic_children_list",
    "advanced_children_list",
    "live_subtree_size",
    "has_live_node_above",
]


def basic_children_list(tree: LookupTree, k: int) -> list[int]:
    """§2 children list of ``P(k)``: children PIDs, most offspring first."""
    return tree.children(k)


def advanced_children_list(
    tree: LookupTree, k: int, liveness: LivenessView
) -> list[int]:
    """§3 children list of ``P(k)``: dead children spliced, VID-descending.

    Returns live PIDs only.  Splicing recurses through chains of dead
    identifiers, so the list covers exactly the live "upper fringe" of
    ``P(k)``'s strict descendants.
    """
    collected: list[int] = []  # VIDs of live fringe nodes

    def collect(vid: int) -> None:
        for child_vid in V.children_vids(vid, tree.m):
            if liveness.is_live(tree.pid_of(child_vid)):
                collected.append(child_vid)
            else:
                collect(child_vid)

    collect(tree.vid_of(k))
    collected.sort(reverse=True)
    return [tree.pid_of(v) for v in collected]


def live_subtree_size(tree: LookupTree, k: int, liveness: LivenessView) -> int:
    """Number of live nodes in the subtree of ``P(k)`` (incl. itself).

    Drives the §3 proportional replication choice: the ratio of live
    offspring of the overloaded node to the rest of the live system.
    """
    return sum(
        1
        for vid in V.iter_subtree(tree.vid_of(k), tree.m)
        if liveness.is_live(tree.pid_of(vid))
    )


def has_live_node_above(tree: LookupTree, k: int, liveness: LivenessView) -> bool:
    """Is there any live node with VID strictly above ``vid(k)``?

    The §3 replication rule branches on this: when no live node sits
    above ``P(k)`` in the tree of ``P(r)``, ``P(k)`` is the node where
    the inserted file lives, and overload there may come from anywhere
    in the system rather than only from its own offspring.
    """
    for v in range(tree.vid_of(k) + 1, 1 << tree.m):
        if liveness.is_live(tree.pid_of(v)):
            return True
    return False
