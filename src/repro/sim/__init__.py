"""Discrete-event simulation substrate.

``engine`` — deterministic heap-based event loop with generator
processes; ``events`` — scheduled-event objects with lazy cancellation;
``rng`` — named deterministic random streams; ``metrics`` — counters,
gauges, histograms, time series; ``trace`` — structured, replayable
traces.
"""

from .engine import Engine
from .events import Event, EventHandle
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from .rng import RngHub, derive_seed
from .trace import TraceRecord, Tracer

__all__ = [
    "Counter",
    "Engine",
    "Event",
    "EventHandle",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RngHub",
    "TimeSeries",
    "TraceRecord",
    "Tracer",
    "derive_seed",
]
