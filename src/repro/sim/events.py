"""Event objects for the discrete-event kernel.

An :class:`Event` is an immutable record of *something scheduled*: a
firing time, a tie-breaking sequence number, and a zero-argument
callback.  Cancellation is handled through :class:`EventHandle` so the
heap never needs to be re-sorted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventHandle"]


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Ordering is by ``(time, priority, seq)``: earlier time first, then
    lower priority number, then FIFO among ties — so simultaneous
    events fire in the order they were scheduled.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    done: bool = field(default=False, compare=False)
    """Set by the engine once executed (or dropped by ``clear``), so a
    stale handle's ``cancel`` cannot skew the live-event counter."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled" if self.cancelled
            else "done" if self.done
            else "pending"
        )
        name = self.label or getattr(self.callback, "__name__", "<fn>")
        return f"Event(t={self.time:.6g}, {name}, {state})"


class EventHandle:
    """A caller-facing handle to a scheduled event.

    Keeping the handle lets the scheduler mark the underlying heap
    entry dead without touching the heap structure (lazy deletion).
    ``on_cancel`` lets the owning engine keep its live-event counter
    exact without scanning the heap.
    """

    __slots__ = ("_event", "_on_cancel")

    def __init__(
        self,
        event: Event,
        on_cancel: Callable[[Event], None] | None = None,
    ) -> None:
        self._event = event
        self._on_cancel = on_cancel

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event; returns False when already cancelled/run."""
        if self._event.cancelled or self._event.done:
            return False
        self._event.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel(self._event)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventHandle({self._event!r})"
