"""A small, deterministic discrete-event simulation kernel.

Design goals, in order: determinism (identical runs for identical
seeds), debuggability (labels on events, strict error checking), and
speed adequate for ~10^6 events (binary heap + lazy cancellation).

Two programming styles are supported:

* **callbacks** — ``engine.schedule(delay, fn, label=...)``;
* **generator processes** — ``engine.spawn(gen)`` where ``gen`` yields
  non-negative float delays between its steps (a tiny cooperative
  coroutine layer, enough for node behaviours and workload drivers).
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable

from ..core.errors import SimulationError
from .events import Event, EventHandle

__all__ = ["Engine"]


class Engine:
    """Deterministic event loop with a virtual clock.

    The clock starts at 0.0 and only moves forward.  Events scheduled
    for the same instant fire in scheduling order (FIFO), which keeps
    runs reproducible without relying on hash order anywhere.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._live = 0
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events.

        O(1): a counter maintained on schedule/cancel/execute rather
        than a heap scan (handles may cancel lazily-deleted entries,
        so the heap length alone over-counts).
        """
        return self._live

    def _note_cancel(self, event: Event) -> None:
        self._live -= 1

    # -- scheduling -----------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time=time, priority=priority, seq=self._seq, callback=callback, label=label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return EventHandle(event, on_cancel=self._note_cancel)

    def spawn(self, process: Generator[float, None, Any], *, label: str = "") -> EventHandle:
        """Run a generator process: each yielded value is a delay.

        The process advances one step per event; returning (or raising
        ``StopIteration``) ends it.  The returned handle cancels only
        the *next* pending step.
        """

        handle_box: list[EventHandle] = []

        def step() -> None:
            try:
                delay = next(process)
            except StopIteration:
                return
            if delay < 0:
                raise SimulationError(
                    f"process {label or process!r} yielded negative delay {delay}"
                )
            handle_box[0] = self.schedule(delay, step, label=label)

        handle_box.append(self.schedule(0.0, step, label=label))
        return handle_box[0]

    # -- execution ------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event; returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:  # pragma: no cover - heap invariant
                raise SimulationError("heap produced an event from the past")
            self._now = event.time
            event.done = True
            self._live -= 1
            event.callback()
            self.events_executed += 1
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Run until the event heap drains; returns events executed.

        ``max_events`` bounds runaway simulations (raises when hit).
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        try:
            executed = 0
            while self.step():
                executed += 1
                if max_events is not None and executed >= max_events:
                    if self._live > 0:
                        raise SimulationError(
                            f"exceeded max_events={max_events} with work pending"
                        )
                    break
            return executed
        finally:
            self._running = False

    def run_until(self, time: float) -> int:
        """Run every event with ``event.time <= time``; advance clock to it.

        Events scheduled exactly at ``time`` are executed.  The clock is
        left at ``time`` even if the heap drained earlier, so periodic
        drivers can resume cleanly.
        """
        if time < self._now:
            raise SimulationError(f"run_until({time}) is before now={self._now}")
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        executed = 0
        try:
            while self._heap:
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if nxt.time > time:
                    break
                heapq.heappop(self._heap)
                self._now = nxt.time
                nxt.done = True
                self._live -= 1
                nxt.callback()
                self.events_executed += 1
                executed += 1
            self._now = time
            return executed
        finally:
            self._running = False

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched)."""
        for event in self._heap:
            event.done = True  # stale handles must not decrement _live
        self._heap.clear()
        self._live = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Engine(now={self._now:.6g}, pending={self.pending})"
