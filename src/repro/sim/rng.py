"""Deterministic random-stream management.

Simulations need many independent random streams (one per workload, per
policy decision point, per fault injector...) that are stable under
code movement: adding a consumer must not shift every other consumer's
draws.  :class:`RngHub` derives named child streams from a root seed by
hashing the name, so each component owns an independent, reproducible
``random.Random``.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngHub", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name."""
    digest = hashlib.sha256(f"{root_seed}\x1f{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngHub:
    """A factory of named, independent, deterministic RNG streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name`` (created on first use)."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngHub":
        """A child hub whose streams are independent of this hub's."""
        return RngHub(derive_seed(self.seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngHub(seed={self.seed}, streams={sorted(self._streams)})"
