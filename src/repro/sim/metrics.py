"""Lightweight metrics: counters, gauges, histograms, time series.

A :class:`MetricsRegistry` is threaded through the simulation layers so
experiments can interrogate anything after a run without the hot paths
paying for string formatting.  All containers are plain Python with
NumPy only at summary time.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "TimeSeries", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase (amount={amount})")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A value that can move both ways."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """Sample accumulator with quantile/summary support.

    Stores raw samples (the simulations here produce at most ~10^6);
    summaries are computed lazily with NumPy.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        self._samples.append(value)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return float("nan")
        return float(np.mean(self._samples))

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return float("nan")
        return float(np.quantile(self._samples, q))

    def max(self) -> float:
        return max(self._samples) if self._samples else float("nan")

    def min(self) -> float:
        return min(self._samples) if self._samples else float("nan")

    def summary(self) -> dict[str, float]:
        """count/mean/p50/p95/p99/max in one dict."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.quantile(0.5) if self._samples else float("nan"),
            "p95": self.quantile(0.95) if self._samples else float("nan"),
            "p99": self.quantile(0.99) if self._samples else float("nan"),
            "max": self.max(),
        }

    def __repr__(self) -> str:
        return f"Histogram(n={self.count})"


@dataclass
class TimeSeries:
    """(time, value) samples, e.g. replica count over simulated time."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series must be recorded in order ({time} < {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> float:
        if not self.values:
            raise ValueError("empty time series")
        return self.values[-1]

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def value_at(self, time: float) -> float:
        """Step-function evaluation: last value recorded at or before t."""
        idx = int(np.searchsorted(np.asarray(self.times), time, side="right")) - 1
        if idx < 0:
            raise ValueError(f"no sample at or before t={time}")
        return self.values[idx]


class MetricsRegistry:
    """Namespace of metrics, auto-creating on first access."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = defaultdict(Counter)
        self._gauges: dict[str, Gauge] = defaultdict(Gauge)
        self._histograms: dict[str, Histogram] = defaultdict(Histogram)
        self._series: dict[str, TimeSeries] = defaultdict(TimeSeries)

    def counter(self, name: str) -> Counter:
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        return self._histograms[name]

    def series(self, name: str) -> TimeSeries:
        return self._series[name]

    def names(self) -> dict[str, list[str]]:
        """All registered metric names grouped by kind."""
        return {
            "counters": sorted(self._counters),
            "gauges": sorted(self._gauges),
            "histograms": sorted(self._histograms),
            "series": sorted(self._series),
        }

    def snapshot(self) -> dict[str, float]:
        """Flat dict of counter and gauge values (histogram means too)."""
        out: dict[str, float] = {}
        for name, c in self._counters.items():
            out[f"counter:{name}"] = float(c.value)
        for name, g in self._gauges.items():
            out[f"gauge:{name}"] = float(g.value)
        for name, h in self._histograms.items():
            out[f"histogram:{name}:mean"] = h.mean()
        return out
