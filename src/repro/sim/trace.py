"""Structured event tracing with replay.

A :class:`Tracer` collects :class:`TraceRecord` entries from any layer
(message sends, replications, membership changes...).  Traces can be
filtered, summarised, serialised to JSON-lines, and replayed into
callbacks — which the test suite uses to assert on *sequences* of
system behaviour rather than just end states.
"""

from __future__ import annotations

import json
import math
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({"time": self.time, "kind": self.kind, "data": self.data})

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        """Parse one JSON line.

        ``data`` is optional (hand-written and trimmed traces omit it);
        ``time`` must be a finite number — a NaN or infinite timestamp
        silently corrupts ordering and reconciliation downstream, so it
        is rejected here with a clear error.
        """
        obj = json.loads(line)
        time = float(obj["time"])
        if not math.isfinite(time):
            raise ValueError(
                f"trace record time must be finite, got {obj['time']!r}"
            )
        return cls(time=time, kind=str(obj["kind"]), data=dict(obj.get("data") or {}))


class Tracer:
    """An append-only trace with filtering and replay.

    ``enabled=False`` turns :meth:`emit` into a no-op so hot simulation
    loops can keep their trace calls unconditionally.
    """

    def __init__(self, enabled: bool = True, kinds: Iterable[str] | None = None) -> None:
        self.enabled = enabled
        self._kinds = set(kinds) if kinds is not None else None
        self._records: list[TraceRecord] = []

    def emit(self, time: float, kind: str, **data: Any) -> None:
        """Record an occurrence (subject to the kind filter)."""
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        self._records.append(TraceRecord(time=time, kind=kind, data=data))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        return list(self._records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self._records if r.kind == kind]

    def kinds(self) -> dict[str, int]:
        """Histogram of record kinds."""
        out: dict[str, int] = {}
        for r in self._records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    def replay(self, handler: Callable[[TraceRecord], None], kind: str | None = None) -> int:
        """Feed records (optionally one kind) through ``handler`` in order."""
        count = 0
        for r in self._records:
            if kind is None or r.kind == kind:
                handler(r)
                count += 1
        return count

    def to_jsonl(self) -> str:
        return "\n".join(r.to_json() for r in self._records)

    @classmethod
    def from_jsonl(cls, text: str) -> "Tracer":
        tracer = cls()
        for line in text.splitlines():
            if line.strip():
                tracer._records.append(TraceRecord.from_json(line))
        return tracer

    def clear(self) -> None:
        self._records.clear()
