"""The log-based replication baseline of the paper's §6.

    "The log-based method records client-access logs and replicates the
    file to the child node that forwards most requests by carefully
    analyzing client-access logs."

This is the oracle LessLog is measured against: it reads the actual
per-forwarder rates (``context.forwarder_rates`` — the information a
client-access log contains) and places the replica on the child that
contributed the most load.  Under perfectly even demand it coincides
with LessLog, because the child with the most offspring *is* the child
forwarding the most requests; under skew it does strictly better —
at the cost of maintaining logs.
"""

from __future__ import annotations

from collections.abc import Collection

from ..core.children import advanced_children_list
from ..core.liveness import LivenessView
from ..core.tree import LookupTree
from .base import PlacementContext

__all__ = ["LogBasedPolicy"]


class LogBasedPolicy:
    """Replicate to the children-list member forwarding the most load."""

    name = "log-based"

    def choose(
        self,
        tree: LookupTree,
        k: int,
        liveness: LivenessView,
        holders: Collection[int],
        context: PlacementContext,
    ) -> int | None:
        holder_set = set(holders)
        rates = context.forwarder_rates
        best: int | None = None
        best_rate = 0.0
        if context.table is not None:
            children = context.table.children_list(k, tree, liveness)
        else:
            children = advanced_children_list(tree, k, liveness)
        # Children-list order is the deterministic tie-break, so the
        # policy degrades to LessLog's choice when rates are equal.
        for child in children:
            if child in holder_set:
                continue
            rate = float(rates.get(child, 0.0))
            if rate > best_rate:
                best, best_rate = child, rate
        return best

    def __repr__(self) -> str:
        return "LogBasedPolicy()"
