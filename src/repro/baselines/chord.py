"""A compact Chord implementation (Stoica et al., SIGCOMM 2001).

The paper's related-work section positions LessLog against Chord's
binomial-tree-shaped lookup.  This module implements Chord's ring,
finger tables, and greedy lookup so the extension benchmarks can
compare hop-count distributions of the two structures on the same
identifier space and liveness pattern.

Only lookup is modelled (Chord has no replication mechanism — that is
the paper's point); joins are handled by rebuilding fingers, which is
all the comparison needs.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable

from ..core.bits import check_id, check_width
from ..core.errors import NoLiveNodeError

__all__ = ["ChordRing"]


class ChordRing:
    """A Chord ring over the ``m``-bit identifier space."""

    def __init__(self, m: int, nodes: Iterable[int]) -> None:
        check_width(m)
        self.m = m
        self.space = 1 << m
        self._nodes = sorted(set(nodes))
        if not self._nodes:
            raise NoLiveNodeError("a Chord ring needs at least one node")
        for n in self._nodes:
            check_id(n, m)
        self._fingers: dict[int, list[int]] = {}
        self._build_fingers()

    @property
    def nodes(self) -> list[int]:
        return list(self._nodes)

    def _build_fingers(self) -> None:
        self._fingers = {
            n: [self.successor((n + (1 << i)) % self.space) for i in range(self.m)]
            for n in self._nodes
        }

    def successor(self, key: int) -> int:
        """First node at or clockwise after ``key`` on the ring."""
        check_id(key, self.m)
        idx = bisect.bisect_left(self._nodes, key)
        return self._nodes[idx % len(self._nodes)]

    def finger_table(self, node: int) -> list[int]:
        """The ``m`` finger entries of ``node``."""
        return list(self._fingers[node])

    @staticmethod
    def _in_open_interval(x: int, a: int, b: int, space: int) -> bool:
        """Is ``x`` in the clockwise-open interval (a, b) on the ring?"""
        if a == b:
            return x != a
        if a < b:
            return a < x < b
        return x > a or x < b

    def _closest_preceding(self, node: int, key: int) -> int:
        for finger in reversed(self._fingers[node]):
            if self._in_open_interval(finger, node, key, self.space):
                return finger
        return node

    def lookup_path(self, start: int, key: int) -> list[int]:
        """Node sequence visited resolving ``key`` from ``start``.

        Standard iterative Chord lookup: hop to the closest preceding
        finger until the key falls between the current node and its
        successor, then finish at the successor.
        """
        if start not in self._fingers:
            raise NoLiveNodeError(f"start node {start} is not on the ring")
        check_id(key, self.m)
        owner = self.successor(key)
        path = [start]
        current = start
        # Each hop at least halves the remaining clockwise distance, so
        # m + 1 hops always suffice; the guard catches table corruption.
        for _ in range(self.m + 1):
            if current == owner:
                return path
            succ = self.successor((current + 1) % self.space)
            if self._in_open_interval(key, current, succ, self.space) or key == succ:
                path.append(succ)
                return path
            nxt = self._closest_preceding(current, key)
            if nxt == current:
                path.append(owner)
                return path
            current = nxt
            path.append(current)
        raise RuntimeError("Chord lookup failed to converge")  # pragma: no cover

    def lookup_hops(self, start: int, key: int) -> int:
        return len(self.lookup_path(start, key)) - 1

    def add_node(self, node: int) -> None:
        """Join a node and rebuild fingers (simulation-grade join)."""
        check_id(node, self.m)
        if node not in self._nodes:
            bisect.insort(self._nodes, node)
            self._build_fingers()

    def remove_node(self, node: int) -> None:
        """Remove a node and rebuild fingers."""
        if node in self._nodes:
            if len(self._nodes) == 1:
                raise NoLiveNodeError("cannot empty the ring")
            self._nodes.remove(node)
            self._build_fingers()
