"""The LessLog placement policy — the paper's contribution.

Pure bitwise placement: replicate into the overloaded node's advanced
children list, falling back to the §3 proportional choice at the top of
an incomplete tree.  Deliberately ignores ``context.forwarder_rates``.
"""

from __future__ import annotations

from collections.abc import Collection

from ..core.liveness import LivenessView
from ..core.replication import choose_replica_target
from ..core.tree import LookupTree
from .base import PlacementContext

__all__ = ["LessLogPolicy"]


class LessLogPolicy:
    """Logless placement via children lists (paper §2.2/§3)."""

    name = "lesslog"

    def choose(
        self,
        tree: LookupTree,
        k: int,
        liveness: LivenessView,
        holders: Collection[int],
        context: PlacementContext,
    ) -> int | None:
        decision = choose_replica_target(
            tree, k, liveness, holders, rng=context.rng, table=context.table
        )
        return decision.target

    def __repr__(self) -> str:
        return "LessLogPolicy()"
