"""A compact CAN implementation (Ratnasamy et al., SIGCOMM 2001).

The paper's related work cites CAN as the other major lookup structure:
nodes own zones of a ``d``-dimensional torus and route greedily to the
neighbour closest to the key's point.  We model the regular case — a
full lattice of ``side**d`` nodes, each owning one cell — which gives
CAN its textbook ``(d/4) * N**(1/d)`` average hop count and lets the
extension benchmark contrast it with LessLog's ``O(log N)`` on equal
node counts.

Like the Chord comparator, only lookup is modelled (CAN has no file
replication mechanism — the paper's point in §7).
"""

from __future__ import annotations

import hashlib
from itertools import product

from ..core.errors import ConfigurationError, NoLiveNodeError

__all__ = ["CanGrid"]


class CanGrid:
    """A regular ``side**d``-node CAN torus."""

    def __init__(self, d: int, side: int) -> None:
        if d < 1:
            raise ConfigurationError(f"dimension must be >= 1, got {d}")
        if side < 1:
            raise ConfigurationError(f"side must be >= 1, got {side}")
        if side**d > 1 << 22:
            raise ConfigurationError("grid too large")
        self.d = d
        self.side = side
        self.n = side**d

    # -- coordinates -----------------------------------------------------

    def coords_of(self, node: int) -> tuple[int, ...]:
        """Lattice coordinates of a node id in ``[0, side**d)``."""
        if not 0 <= node < self.n:
            raise NoLiveNodeError(f"node {node} not on the {self.n}-cell grid")
        out = []
        for _ in range(self.d):
            out.append(node % self.side)
            node //= self.side
        return tuple(out)

    def node_at(self, coords: tuple[int, ...]) -> int:
        if len(coords) != self.d:
            raise ConfigurationError(
                f"expected {self.d} coordinates, got {len(coords)}"
            )
        node = 0
        for c in reversed(coords):
            if not 0 <= c < self.side:
                raise ConfigurationError(f"coordinate {c} out of range")
            node = node * self.side + c
        return node

    def key_owner(self, key: str) -> int:
        """The node owning the cell a key hashes into."""
        digest = hashlib.sha256(key.encode()).digest()
        coords = tuple(
            int.from_bytes(digest[4 * i: 4 * i + 4], "big") % self.side
            for i in range(self.d)
        )
        return self.node_at(coords)

    # -- routing -----------------------------------------------------------

    def _step_toward(self, here: int, there: int) -> int:
        """Greedy CAN forwarding: move one cell along the best axis."""
        hc, tc = list(self.coords_of(here)), self.coords_of(there)
        best_axis, best_gain, best_dir = -1, 0, 0
        for axis in range(self.d):
            delta = (tc[axis] - hc[axis]) % self.side
            if delta == 0:
                continue
            forward = delta
            backward = self.side - delta
            if forward <= backward:
                gain, direction = forward, 1
            else:
                gain, direction = backward, -1
            if gain > best_gain:
                best_axis, best_gain, best_dir = axis, gain, direction
        if best_axis < 0:
            return here
        hc[best_axis] = (hc[best_axis] + best_dir) % self.side
        return self.node_at(tuple(hc))

    def lookup_path(self, start: int, key: str) -> list[int]:
        """Node sequence from ``start`` to the key's owner."""
        owner = self.key_owner(key)
        path = [start]
        current = start
        # Torus distance along each axis is at most side/2.
        for _ in range(self.d * (self.side // 2 + 1) + 1):
            if current == owner:
                return path
            current = self._step_toward(current, owner)
            path.append(current)
        raise RuntimeError("CAN lookup failed to converge")  # pragma: no cover

    def lookup_hops(self, start: int, key: str) -> int:
        return len(self.lookup_path(start, key)) - 1

    def torus_distance(self, a: int, b: int) -> int:
        """Closed-form hop count (per-axis wrapped Manhattan distance)."""
        ac, bc = self.coords_of(a), self.coords_of(b)
        total = 0
        for x, y in zip(ac, bc):
            delta = abs(x - y)
            total += min(delta, self.side - delta)
        return total
