"""Replication-policy interface shared by LessLog and the baselines.

A policy answers one question: *an overloaded holder ``P(k)`` must shed
load for a file in the tree of ``P(r)`` — where does the next replica
go?*  The three policies of the paper's §6 differ only here; lookup
routing is identical for all of them ("all three methods use the same
binomial lookup tree").

The :class:`PlacementContext` carries exactly the information each
policy is entitled to: LessLog gets nothing beyond tree structure (that
is the point of the paper), the log-based method gets the per-forwarder
rates a client-access log would reveal, and random gets a seeded RNG.
"""

from __future__ import annotations

import random
from collections.abc import Collection, Mapping
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from ..core.liveness import LivenessView
from ..core.routing import RoutingTable
from ..core.tree import LookupTree

__all__ = ["PlacementContext", "ReplicationPolicy"]


@dataclass
class PlacementContext:
    """Inputs available to a placement decision.

    ``forwarder_rates`` maps an immediate overlay forwarder PID to the
    request rate it pushed into the overloaded node (``-1`` keys direct
    client arrivals).  Only the log-based policy may read it.

    ``table`` optionally carries the caller's precomputed
    :class:`~repro.core.routing.RoutingTable` for the same
    ``(tree, liveness)`` pair.  Policies use it as a pure accelerator —
    every decision is identical with or without it; callers that cannot
    vouch for the pairing (subtree views, the DES driver) leave it
    ``None`` and get the scalar code paths.

    ``holder_mask`` optionally mirrors ``holders`` as a boolean array
    indexed by PID (again a pure accelerator, maintained incrementally
    by the balance loop); when present it must agree with the
    ``holders`` collection passed to :meth:`ReplicationPolicy.choose`.
    Policies must not mutate it.
    """

    rng: random.Random = field(default_factory=lambda: random.Random(0))
    forwarder_rates: Mapping[int, float] = field(default_factory=dict)
    table: RoutingTable | None = None
    holder_mask: np.ndarray | None = None


@runtime_checkable
class ReplicationPolicy(Protocol):
    """Strategy for choosing the next replica location."""

    name: str

    def choose(
        self,
        tree: LookupTree,
        k: int,
        liveness: LivenessView,
        holders: Collection[int],
        context: PlacementContext,
    ) -> int | None:
        """PID for the next replica of the overloaded ``P(k)``'s file.

        ``None`` means the policy has no eligible target left; the
        balance loop then marks ``P(k)`` saturated.
        """
        ...
