"""The random-replication baseline of the paper's §6.

    "The random-replication method replicates the file to a random node
    when a node is overloaded."

A random node only absorbs the traffic that happens to route *through*
it, which is usually a small subtree — hence the paper's result that
random replication needs far more replicas to reach balance.
"""

from __future__ import annotations

from collections.abc import Collection

import numpy as np

from ..core.liveness import LivenessView
from ..core.tree import LookupTree
from .base import PlacementContext

__all__ = ["RandomPolicy"]


class RandomPolicy:
    """Replicate to a uniformly random live non-holder."""

    name = "random"

    def choose(
        self,
        tree: LookupTree,
        k: int,
        liveness: LivenessView,
        holders: Collection[int],
        context: PlacementContext,
    ) -> int | None:
        if context.table is not None:
            # Vectorized candidate filter.  Candidate order (ascending
            # PID) and rng consumption are identical to the list path:
            # both ``choice`` and ``randrange`` draw one ``_randbelow``
            # over the candidate count.
            live = context.table.live_pids_asc
            blocked = context.holder_mask
            if blocked is None:
                blocked = np.zeros(context.table.n, dtype=bool)
                blocked[list(holders)] = True
            eligible = ~blocked[live]
            if not blocked[k]:
                at = int(np.searchsorted(live, k))
                if at < live.size and live[at] == k:
                    eligible[at] = False
            candidates = live[eligible]
            if candidates.size == 0:
                return None
            return int(candidates[context.rng.randrange(candidates.size)])
        holder_set = set(holders)
        candidates_list = [
            pid for pid in liveness.live_pids() if pid not in holder_set and pid != k
        ]
        if not candidates_list:
            return None
        return context.rng.choice(candidates_list)

    def __repr__(self) -> str:
        return "RandomPolicy()"
