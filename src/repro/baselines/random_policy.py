"""The random-replication baseline of the paper's §6.

    "The random-replication method replicates the file to a random node
    when a node is overloaded."

A random node only absorbs the traffic that happens to route *through*
it, which is usually a small subtree — hence the paper's result that
random replication needs far more replicas to reach balance.
"""

from __future__ import annotations

from collections.abc import Collection

from ..core.liveness import LivenessView
from ..core.tree import LookupTree
from .base import PlacementContext

__all__ = ["RandomPolicy"]


class RandomPolicy:
    """Replicate to a uniformly random live non-holder."""

    name = "random"

    def choose(
        self,
        tree: LookupTree,
        k: int,
        liveness: LivenessView,
        holders: Collection[int],
        context: PlacementContext,
    ) -> int | None:
        holder_set = set(holders)
        candidates = [
            pid for pid in liveness.live_pids() if pid not in holder_set and pid != k
        ]
        if not candidates:
            return None
        return context.rng.choice(candidates)

    def __repr__(self) -> str:
        return "RandomPolicy()"
