"""Replication policies: LessLog and the paper's §6 baselines.

``LessLogPolicy`` — bitwise children-list placement (no logs);
``LogBasedPolicy`` — the access-log oracle; ``RandomPolicy`` — uniform
random placement; ``ChordRing`` — Chord lookup for the related-work
hop-count comparison.
"""

from .base import PlacementContext, ReplicationPolicy
from .can import CanGrid
from .chord import ChordRing
from .lesslog_policy import LessLogPolicy
from .logbased import LogBasedPolicy
from .random_policy import RandomPolicy

POLICIES = {
    "lesslog": LessLogPolicy,
    "log-based": LogBasedPolicy,
    "random": RandomPolicy,
}
"""Registry mapping policy names to classes (used by the CLI)."""


def make_policy(name: str) -> ReplicationPolicy:
    """Instantiate a policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None


__all__ = [
    "POLICIES",
    "CanGrid",
    "ChordRing",
    "LessLogPolicy",
    "LogBasedPolicy",
    "PlacementContext",
    "RandomPolicy",
    "ReplicationPolicy",
    "make_policy",
]
