"""Command-line interface: ``lesslog`` / ``python -m repro``.

Subcommands:

* ``experiments`` — list the reproducible experiments.
* ``run <id> [--fast] [--csv PATH]`` — run a figure/extension
  reproduction and print its table.
* ``figures`` — dump the paper's structural Figures 1–4.
* ``tree --root R --m M [--dead ...]`` — render a lookup tree and its
  children list.
* ``demo`` — a 30-second tour of the system API.
* ``reliability`` — a DES run over a lossy transport with the
  request-retry layer, printing per-request lifecycle accounting.
* ``verify fuzz`` — randomized scenario fuzzing against the invariant
  registry, shrinking any failure to a replayable repro file.
* ``verify replay REPRO.json`` — deterministically replay a failure.
* ``serve`` — boot a live asyncio cluster on loopback TCP and serve
  the wire protocol until interrupted; with ``--processes`` the
  cluster is a fleet of per-node worker OS processes behind a
  bootstrap endpoint.
* ``worker`` — one LessLog node process: dial a bootstrap endpoint,
  receive an identifier, serve until SIGTERM (spawned by the scale-out
  supervisor's subprocess mode; also useful by hand).
* ``loadgen`` — drive a live cluster with a seeded workload, print
  latency percentiles, and optionally verify oracle conformance.
  ``--processes`` boots a multi-process fleet for the run;
  ``--bootstrap`` dials one already serving.
* ``profile`` — run a seeded runtime workload under cProfile and print
  the hottest functions (the fast-path tuning loop).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]


def _add_overload_options(parser: argparse.ArgumentParser) -> None:
    """Overload control-plane knobs shared by ``serve`` and ``loadgen``."""
    parser.add_argument("--inbox-limit", type=int, default=0,
                        help="bounded-inbox depth per node (0 = unbounded, "
                        "no admission control)")
    parser.add_argument("--shed-policy", default="conservative",
                        choices=["conservative", "aggressive"],
                        help="how much queued work an overloaded node sheds")
    parser.add_argument("--queue-policy", default="fcfs",
                        choices=["fcfs", "priority"],
                        help="victim eligibility ordering under pressure")
    parser.add_argument("--victim-policy", default="lifo",
                        choices=["lifo", "fifo", "random"],
                        help="which queued requests are shed first")
    parser.add_argument("--slo-budget", type=float, default=0.0,
                        help="windowed p99 service-latency budget in seconds "
                        "that triggers replication (0 = disabled)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lesslog",
        description="LessLog (IPDPS 2004) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list reproducible experiments")

    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", help="experiment id (see `experiments`)")
    run.add_argument("--fast", action="store_true", help="reduced sweep")
    run.add_argument("--csv", type=Path, default=None, help="also write CSV here")
    run.add_argument("--chart", action="store_true", help="also draw an ASCII chart")
    run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for figure sweeps (fig5-fig8 only); "
        "0 = one per CPU",
    )

    sub.add_parser("figures", help="regenerate structural Figures 1-4")

    report = sub.add_parser(
        "report", help="run every experiment and emit a markdown report"
    )
    report.add_argument("--full", action="store_true", help="full paper grid")
    report.add_argument("-o", "--output", type=Path, default=None)
    report.add_argument(
        "--only", nargs="*", default=None, help="experiment ids to include"
    )

    tree = sub.add_parser("tree", help="render a lookup tree")
    tree.add_argument("--root", type=int, default=4)
    tree.add_argument("--m", type=int, default=4)
    tree.add_argument("--dead", type=int, nargs="*", default=[])

    sub.add_parser("demo", help="drive a small system end to end")

    rel = sub.add_parser(
        "reliability",
        help="DES run over a lossy transport with the request-retry layer; "
        "prints per-request lifecycle accounting",
    )
    rel.add_argument("--m", type=int, default=6, help="identifier width")
    rel.add_argument("--loss-rate", type=float, default=0.2,
                     help="per-message transport loss probability")
    rel.add_argument("--retries", type=int, default=4,
                     help="attempt budget per request (1 = fire-and-forget)")
    rel.add_argument("--timeout", type=float, default=0.25,
                     help="per-attempt deadline in simulated seconds")
    rel.add_argument("--rate", type=float, default=200.0,
                     help="aggregate client demand (requests/second)")
    rel.add_argument("--duration", type=float, default=5.0,
                     help="workload duration in simulated seconds")
    rel.add_argument("--seed", type=int, default=0)

    audit = sub.add_parser("audit", help="audit a system snapshot file")
    audit.add_argument("snapshot", type=Path, help="JSON snapshot path")

    snap = sub.add_parser(
        "snapshot-demo", help="build the demo system and write its snapshot"
    )
    snap.add_argument("-o", "--output", type=Path, required=True)

    verify = sub.add_parser(
        "verify", help="invariant fuzzing: randomized scenarios + replay"
    )
    verify_sub = verify.add_subparsers(dest="verify_command", required=True)

    fuzz = verify_sub.add_parser(
        "fuzz", help="fuzz randomized scenarios against the invariant registry"
    )
    fuzz.add_argument("--seeds", type=int, default=25, help="scenarios to run")
    fuzz.add_argument("--m", type=int, default=5, help="identifier width")
    fuzz.add_argument("--b", type=int, default=1, help="fault-tolerance degree")
    fuzz.add_argument("--events", type=int, default=40, help="events per scenario")
    fuzz.add_argument("--base-seed", type=int, default=0, help="first seed")
    fuzz.add_argument(
        "--mutate", default=None,
        help="inject a named bug (test knob; see repro.verify.scenario.MUTATIONS)",
    )
    fuzz.add_argument(
        "--out", type=Path, default=Path("results"),
        help="directory for shrunken failing-seed repro files",
    )

    replay = verify_sub.add_parser(
        "replay", help="replay a serialized failing scenario deterministically"
    )
    replay.add_argument("repro", type=Path, help="repro JSON written by fuzz")

    serve = sub.add_parser(
        "serve", help="boot a live cluster on loopback TCP and serve frames"
    )
    serve.add_argument("--m", type=int, default=4, help="identifier width")
    serve.add_argument("--b", type=int, default=1, help="fault-tolerance degree")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--capacity", type=float, default=50.0,
                       help="per-node overload threshold (requests/second)")
    serve.add_argument("--duration", type=float, default=0.0,
                       help="seconds to serve (0 = until interrupted)")
    serve.add_argument("--processes", type=int, default=0, metavar="N",
                       help="serve N nodes as separate OS processes behind "
                       "a bootstrap endpoint (0 = single process)")
    serve.add_argument("--spawn", default="fork",
                       choices=["fork", "subprocess"],
                       help="how --processes workers are spawned")
    _add_overload_options(serve)

    worker = sub.add_parser(
        "worker", help="one LessLog node as its own OS process"
    )
    worker.add_argument("--bootstrap", required=True, metavar="HOST:PORT",
                        help="bootstrap endpoint to register with")

    loadgen = sub.add_parser(
        "loadgen", help="drive a live cluster with a seeded GET workload"
    )
    loadgen.add_argument("--m", type=int, default=4, help="identifier width")
    loadgen.add_argument("--b", type=int, default=1, help="fault-tolerance degree")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--tcp", action="store_true",
                         help="real TCP on loopback instead of in-process streams")
    loadgen.add_argument("--files", type=int, default=8, help="files to insert")
    loadgen.add_argument("--workload", default="zipf",
                         choices=["uniform", "zipf", "locality"])
    loadgen.add_argument("--zipf-s", type=float, default=1.2,
                         help="Zipf exponent (workload=zipf)")
    loadgen.add_argument("--rps", type=float, default=200.0,
                         help="open-loop target requests/second")
    loadgen.add_argument("--duration", type=float, default=2.0,
                         help="workload duration in seconds")
    loadgen.add_argument("--closed-loop", type=int, default=0, metavar="CONC",
                         help="closed loop with this concurrency instead of "
                         "open loop (fires rps*duration requests)")
    loadgen.add_argument("--capacity", type=float, default=50.0,
                         help="per-node overload threshold (requests/second)")
    loadgen.add_argument("--service-time", type=float, default=0.001,
                         help="simulated per-GET service latency (seconds)")
    loadgen.add_argument("--conformance", action="store_true",
                         help="replay the oplog through the synchronous "
                         "oracle and diff final state (exit 1 on mismatch)")
    loadgen.add_argument("--redirects", type=int, default=3,
                         help="client redirect budget per OVERLOAD-refused GET")
    loadgen.add_argument("--churn-kills", type=int, default=0,
                         help="silent crashes (no announce) injected mid-burst")
    loadgen.add_argument("--churn-crashes", type=int, default=0,
                         help="announced crashes injected mid-burst")
    loadgen.add_argument("--churn-joins", type=int, default=0,
                         help="node joins injected mid-burst")
    loadgen.add_argument("--churn-leaves", type=int, default=0,
                         help="graceful leaves injected mid-burst")
    loadgen.add_argument("--churn-min-live", type=int, default=3,
                         help="never churn the live set below this size")
    loadgen.add_argument("--processes", type=int, default=0, metavar="N",
                         help="boot N nodes as separate OS processes and "
                         "drive them through the bootstrap endpoint "
                         "(0 = in-process cluster)")
    loadgen.add_argument("--spawn", default="fork",
                         choices=["fork", "subprocess"],
                         help="how --processes workers are spawned")
    loadgen.add_argument("--bootstrap", default=None, metavar="HOST:PORT",
                         help="drive an already-serving bootstrap endpoint "
                         "(from `lesslog serve --processes`) instead of "
                         "booting a cluster")
    loadgen.add_argument("--client-processes", type=int, default=1,
                         metavar="K",
                         help="fork K load-driver processes, each with its "
                         "own event loop and a disjoint entry-node "
                         "partition; per-shard ledgers and latency "
                         "histograms merge exactly (scale-out mode only, "
                         "open loop only)")
    _add_overload_options(loadgen)

    profile = sub.add_parser(
        "profile",
        help="run a seeded runtime workload under cProfile and print "
        "the hottest functions",
    )
    profile.add_argument("--m", type=int, default=4, help="identifier width")
    profile.add_argument("--b", type=int, default=1, help="fault-tolerance degree")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--files", type=int, default=8, help="files to insert")
    profile.add_argument("--rps", type=float, default=800.0,
                         help="open-loop target requests/second")
    profile.add_argument("--duration", type=float, default=2.0,
                         help="workload duration in seconds")
    profile.add_argument("--codec", default="binary",
                         choices=["binary", "json"],
                         help="wire codec profile to run under")
    profile.add_argument("--top", type=int, default=25,
                         help="hot functions to print")
    profile.add_argument("-o", "--output", type=Path, default=None,
                         help="also dump raw pstats data here")

    return parser


def _cmd_experiments() -> int:
    from .experiments import list_experiments

    for experiment_id in list_experiments():
        print(experiment_id)
    return 0


def _cmd_run(
    experiment_id: str, fast: bool, csv: Path | None, chart: bool,
    workers: int = 1,
) -> int:
    from .experiments import run_experiment

    try:
        result = run_experiment(experiment_id, fast=fast, workers=workers)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(result.render())
    if chart:
        from .analysis import render_sweep_chart

        print()
        print(render_sweep_chart(result))
    if csv is not None:
        csv.write_text(result.to_csv() + "\n")
        print(f"\nCSV written to {csv}")
    return 0


def _cmd_report(full: bool, output: Path | None, only: list[str] | None) -> int:
    from .experiments.report import generate_report

    try:
        text = generate_report(experiment_ids=only, fast=not full)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    if output is not None:
        output.write_text(text + "\n")
        print(f"report written to {output}")
    else:
        print(text)
    return 0


def _cmd_figures() -> int:
    from .experiments.structures import render_all

    print(render_all())
    return 0


def _cmd_tree(root: int, m: int, dead: list[int]) -> int:
    from .core.children import advanced_children_list
    from .core.liveness import SetLiveness
    from .core.tree import LookupTree

    tree = LookupTree(root, m)
    print(tree.render())
    liveness = SetLiveness.all_but(m, dead=dead)
    print(f"\nchildren list of P({root})"
          + (f" with dead={sorted(dead)}" if dead else "")
          + f": {advanced_children_list(tree, root, liveness)}")
    return 0


def _cmd_audit(snapshot_path: Path) -> int:
    from .cluster.audit import audit_system
    from .cluster.snapshot import restore_from_json

    try:
        system = restore_from_json(snapshot_path.read_text())
    except FileNotFoundError:
        print(f"no such snapshot: {snapshot_path}", file=sys.stderr)
        return 2
    audit = audit_system(system)
    print(audit.render())
    return 0 if audit.healthy else 1


def _cmd_snapshot_demo(output: Path) -> int:
    from .cluster.snapshot import snapshot_to_json
    from .cluster.system import LessLogSystem

    system = LessLogSystem.build(m=5, b=1, dead={3, 9})
    for i in range(6):
        system.insert(f"demo-{i}.dat", payload=f"payload {i}")
    home = system.holders_of("demo-0.dat")[0]
    system.replicate("demo-0.dat", overloaded=home)
    output.write_text(snapshot_to_json(system, indent=2) + "\n")
    print(f"snapshot of {system} written to {output}")
    return 0


def _cmd_demo() -> int:
    from .cluster.system import LessLogSystem

    print("Building a 16-node LessLog system (m=4, b=1)...")
    system = LessLogSystem.build(m=4, b=1)
    result = system.insert("report.pdf", payload=b"quarterly numbers")
    print(f"  inserted 'report.pdf' -> target P({result.target}), "
          f"homes {list(result.homes)}")
    got = system.get("report.pdf", entry=3)
    print(f"  get from P(3): served by P({got.server}) via {list(got.route)}")
    target = system.replicate("report.pdf", overloaded=got.server)
    print(f"  overloaded P({got.server}) replicated to P({target})")
    updated = system.update("report.pdf", payload=b"restated numbers")
    print(f"  update v{updated.version} reached {sorted(updated.updated)}")
    lost = system.fail(result.homes[0])
    print(f"  crashed P({result.homes[0]}); recovered files: {lost}")
    got = system.get("report.pdf", entry=3)
    print(f"  get after crash: served by P({got.server}), "
          f"version {got.version}")
    system.check_invariants()
    print("  invariants hold.")
    return 0


def _cmd_reliability(
    m: int, loss_rate: float, retries: int, timeout: float,
    rate: float, duration: float, seed: int,
) -> int:
    import numpy as np

    from .engine.des_driver import DesExperiment
    from .experiments.config import ReliabilityConfig

    config = ReliabilityConfig(
        loss_rate=loss_rate, timeout=timeout, max_attempts=retries
    )
    n = 1 << m
    experiment = DesExperiment(
        m=m,
        target=0,
        entry_rates=np.full(n, rate / n),
        seed=seed,
        loss_rate=config.loss_rate,
        retry=config.policy(),
    )
    result = experiment.run(duration, settle=config.settle_time())
    metrics = experiment.metrics
    print(
        f"reliability: m={m}, loss={loss_rate}, budget={retries} attempts, "
        f"timeout={timeout}s, {duration}s @ {rate} req/s (seed {seed})"
    )
    print(f"  issued      {result.requests_sent}")
    print(f"  completed   {result.requests_completed}")
    print(f"  retried     {result.requests_retried} retries "
          f"({metrics.counter('request.rerouted').value} rerouted)")
    print(f"  dead-letter {result.dead_letters}")
    inflight = experiment.reliability.inflight_count
    if inflight:
        print(f"  inflight    {inflight} (settle tail too short)")
    if result.requests_completed:
        print(f"  latency     mean {result.latency_mean * 1e3:.2f} ms, "
              f"p95 {result.latency_p95 * 1e3:.2f} ms")
    return 0 if result.dead_letters == 0 and not inflight else 1


def _cmd_verify_fuzz(
    seeds: int, m: int, b: int, events: int, base_seed: int,
    mutate: str | None, out: Path,
) -> int:
    from .verify import FuzzConfig, ScenarioFuzzer, Shrinker, save_repro

    config = FuzzConfig(
        seeds=seeds, m=m, b=b, events=events, base_seed=base_seed,
        mutation=mutate,
    )
    report = ScenarioFuzzer().fuzz(config)
    print(report.render())
    if report.ok:
        return 0
    for violation in report.violations:
        shrinker = Shrinker()
        minimized, shrunk = shrinker.shrink(violation.scenario, violation)
        path = save_repro(
            out / f"repro_seed{violation.seed}_{shrunk.invariant}.json",
            minimized,
            shrunk,
        )
        print(
            f"seed {violation.seed}: shrunk {len(violation.scenario.events)} -> "
            f"{len(minimized.events)} events ({shrinker.runs} runs); "
            f"repro written to {path}"
        )
        print(f"  replay with: lesslog verify replay {path}")
    return 1


def _overload_fields(args: "argparse.Namespace") -> dict[str, object]:
    """RuntimeConfig overrides from the shared overload options."""
    return {
        "inbox_limit": args.inbox_limit,
        "shed_policy": args.shed_policy,
        "queue_policy": args.queue_policy,
        "victim_policy": args.victim_policy,
        "slo_budget": args.slo_budget if args.slo_budget > 0 else float("inf"),
    }


def _cmd_worker(args: "argparse.Namespace") -> int:
    from .runtime.scaleout import run_worker

    host, _, port = args.bootstrap.rpartition(":")
    if not host or not port.isdigit():
        print(f"--bootstrap must be HOST:PORT, got {args.bootstrap!r}")
        return 2
    run_worker(host, int(port))
    return 0


def _cmd_serve_scaleout(args: "argparse.Namespace") -> int:
    import asyncio

    from .runtime import RuntimeConfig
    from .runtime.scaleout import ScaleoutSupervisor

    config = RuntimeConfig(
        m=args.m, b=args.b, seed=args.seed, tcp=True, capacity=args.capacity,
        **_overload_fields(args),
    )
    supervisor = ScaleoutSupervisor(
        config, n_nodes=args.processes, mode=args.spawn
    )
    # Fork the fleet before any event loop exists.
    host, port = supervisor.launch()

    async def run() -> int:
        await supervisor.start()
        book = supervisor.bootstrap.book
        print(f"bootstrap endpoint: {host}:{port}")
        print(f"fleet: {len(book)} worker process(es), m={args.m}, b={args.b}")
        for pid, (whost, wport) in sorted(book.items()):
            print(f"  P({pid}) -> {whost}:{wport} "
                  f"[os pid {supervisor.bootstrap.ospid_of(pid)}]")
        print(f"drive it with: lesslog loadgen --bootstrap {host}:{port}")
        if args.duration > 0:
            await asyncio.sleep(args.duration)
        else:  # pragma: no cover - interactive
            print("Ctrl-C to stop.")
            try:
                while True:
                    await asyncio.sleep(3600)
            except asyncio.CancelledError:
                pass
        await supervisor.shutdown()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0


def _cmd_serve(args: "argparse.Namespace") -> int:
    import asyncio

    from .runtime import LiveCluster, RuntimeConfig

    if args.processes > 0:
        return _cmd_serve_scaleout(args)

    m, b, duration = args.m, args.b, args.duration

    async def run() -> int:
        config = RuntimeConfig(
            m=m, b=b, seed=args.seed, tcp=True, capacity=args.capacity,
            **_overload_fields(args),
        )
        cluster = await LiveCluster.start(config)
        try:
            print(f"serving {cluster!r}")
            for pid, (host, port) in sorted(cluster.addresses.items()):
                print(f"  P({pid}) -> {host}:{port}")
            if duration > 0:
                await asyncio.sleep(duration)
            else:
                print("Ctrl-C to stop.")
                try:
                    while True:
                        await asyncio.sleep(3600)
                except asyncio.CancelledError:  # pragma: no cover
                    pass
        finally:
            await cluster.shutdown()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0


def _cmd_loadgen_scaleout(args: "argparse.Namespace") -> int:
    import asyncio
    import random

    from .runtime import (
        LoadGenerator,
        RuntimeClient,
        RuntimeConfig,
        WorkloadShape,
        verify_snapshot,
    )
    from .runtime.scaleout import (
        ScaleoutEndpoint,
        ScaleoutSupervisor,
        ShardedLoadDriver,
    )

    if args.churn_crashes or args.churn_joins or args.churn_leaves:
        print("loadgen --processes/--bootstrap supports --churn-kills only "
              "(kill -9 crash churn; joins/leaves need the in-process "
              "cluster)")
        return 2
    if args.client_processes > 1 and args.closed_loop > 0:
        print("--client-processes shards the open-loop driver; drop "
              "--closed-loop or run one client process")
        return 2

    supervisor = None
    if args.bootstrap is None:
        config = RuntimeConfig(
            m=args.m, b=args.b, seed=args.seed, tcp=True,
            capacity=args.capacity, service_time=args.service_time,
            inflight_limit=16, **_overload_fields(args),
        )
        supervisor = ScaleoutSupervisor(
            config, n_nodes=args.processes, mode=args.spawn
        )
        # Fork the fleet before any event loop exists.
        host, port = supervisor.launch()
    else:
        if args.churn_kills:
            print("--churn-kills needs --processes "
                  "(the supervisor owns kill -9)")
            return 2
        if args.conformance:
            print("--conformance needs --processes (the snapshot is "
                  "collected from the fleet this command booted)")
            return 2
        host, _, port_text = args.bootstrap.rpartition(":")
        if not host or not port_text.isdigit():
            print(f"--bootstrap must be HOST:PORT, got {args.bootstrap!r}")
            return 2
        port = int(port_text)

    files = [f"file-{i}.dat" for i in range(args.files)]
    shape = WorkloadShape(kind=args.workload, s=args.zipf_s)
    driver = None
    if args.client_processes > 1:
        # Fork the shard drivers before any event loop exists, same
        # discipline as the fleet itself; they park on their go pipes
        # until the file set is inserted and the fleet drained.
        driver = ShardedLoadDriver(
            host, port, files, shards=args.client_processes,
            rps=args.rps, duration=args.duration, shape=shape,
            seed=args.seed, redirects=args.redirects,
            inherited_sockets=(
                [supervisor.listen_socket] if supervisor is not None
                and supervisor.listen_socket is not None else []
            ),
        )
        driver.launch()

    async def inject_kills(endpoint: "ScaleoutEndpoint",
                           kills: list[int]) -> None:
        rng = random.Random(args.seed)
        for i in range(args.churn_kills):
            await asyncio.sleep(args.duration / (args.churn_kills + 1))
            live = supervisor.bootstrap.worker_pids()
            if len(live) <= args.churn_min_live:
                break
            victim = rng.choice(live)
            await supervisor.kill(victim)
            kills.append(victim)

    async def run() -> int:
        if supervisor is not None:
            await supervisor.start()
        endpoint = await ScaleoutEndpoint.connect(host, port)
        try:
            boot = await RuntimeClient(endpoint, min(endpoint.nodes)).connect()
            for name in files:
                await boot.insert(name, f"payload of {name}")
            await boot.close()
            await endpoint.drain()
            kills: list[int] = []
            kill_task = None
            if supervisor is not None and args.churn_kills:
                kill_task = asyncio.create_task(inject_kills(endpoint, kills))
            if driver is not None:
                driver.start()
                report = await driver.collect()
                report.served_by_node = await endpoint.served_counts()
            else:
                gen = LoadGenerator(endpoint, files, shape, seed=args.seed,
                                    redirects=args.redirects)
                if args.closed_loop > 0:
                    report = await gen.run_closed_loop(
                        args.closed_loop, max(1, int(args.rps * args.duration))
                    )
                else:
                    report = await gen.run_open_loop(args.rps, args.duration)
            if kill_task is not None:
                await kill_task
            if driver is None:
                await gen.close()
            if kills:
                # Post-burst autopsy: §5 recovery for every victim.
                for victim in kills:
                    await supervisor.bootstrap.announce_crash(victim)
                print(f"churn: {len(kills)} kill -9 event(s): " + ", ".join(
                    f"P({pid})" for pid in kills))
            await endpoint.quiesce()
            print(f"loadgen over {len(endpoint.nodes)} worker process(es), "
                  f"tcp: m={args.m}, b={args.b}, "
                  f"workload={args.workload}, seed={args.seed}")
            for key, value in report.as_dict().items():
                print(f"  {key:15} {value}")
            if driver is not None:
                shard_rps = [
                    round(r.achieved_rps, 3) for r in driver.shard_reports
                ]
                print(f"  {'client_shards':15} {args.client_processes}")
                print(f"  {'shard_rps':15} {shard_rps}")
            if supervisor is not None:
                snapshot, _stats = await supervisor.bootstrap.collect_snapshot()
                print(f"  {'replicas':15} {snapshot.replicas_created}")
                if args.conformance:
                    conformance = verify_snapshot(snapshot)
                    print(conformance.render())
                    if not conformance.ok:
                        return 1
            return 0
        finally:
            await endpoint.close()
            if supervisor is not None:
                await supervisor.shutdown()

    try:
        return asyncio.run(run())
    finally:
        if driver is not None:
            driver.kill()  # no-op after a clean collect()


def _cmd_loadgen(args: "argparse.Namespace") -> int:
    import asyncio

    from .runtime import (
        ChurnInjector,
        LiveCluster,
        LoadGenerator,
        RuntimeClient,
        RuntimeConfig,
        WorkloadShape,
        diff_states,
        replay_oplog,
    )

    if args.processes > 0 or args.bootstrap is not None:
        return _cmd_loadgen_scaleout(args)
    if args.client_processes > 1:
        print("--client-processes needs the scale-out runtime "
              "(--processes N or --bootstrap HOST:PORT); the in-process "
              "cluster lives inside one interpreter, so extra driver "
              "processes cannot reach it")
        return 2

    async def run() -> int:
        config = RuntimeConfig(
            m=args.m, b=args.b, seed=args.seed, tcp=args.tcp,
            capacity=args.capacity, service_time=args.service_time,
            inflight_limit=16, **_overload_fields(args),
        )
        cluster = await LiveCluster.start(config)
        try:
            files = [f"file-{i}.dat" for i in range(args.files)]
            boot = await RuntimeClient(cluster, min(cluster.nodes)).connect()
            for name in files:
                await boot.insert(name, f"payload of {name}")
            await boot.close()
            await cluster.drain()
            shape = WorkloadShape(kind=args.workload, s=args.zipf_s)
            gen = LoadGenerator(cluster, files, shape, seed=args.seed,
                                redirects=args.redirects)
            injector = None
            if (args.churn_kills or args.churn_crashes
                    or args.churn_joins or args.churn_leaves):
                injector = ChurnInjector.scheduled(
                    cluster, args.duration,
                    kills=args.churn_kills, crashes=args.churn_crashes,
                    joins=args.churn_joins, leaves=args.churn_leaves,
                    seed=args.seed, min_live=args.churn_min_live,
                )
                injector.start()
            if args.closed_loop > 0:
                report = await gen.run_closed_loop(
                    args.closed_loop, max(1, int(args.rps * args.duration))
                )
            else:
                report = await gen.run_open_loop(args.rps, args.duration)
            await gen.close()
            if injector is not None:
                applied = await injector.finalize()
                fired = [e for e in applied if e["pid"] is not None]
                print(f"churn: {len(fired)} event(s) applied: " + ", ".join(
                    f"{e['action']}@P({e['pid']})" for e in fired))
            await cluster.quiesce()
            mode = "tcp" if args.tcp else "in-process streams"
            print(f"loadgen over {mode}: m={args.m}, b={args.b}, "
                  f"workload={args.workload}, seed={args.seed}")
            for key, value in report.as_dict().items():
                print(f"  {key:15} {value}")
            print(f"  {'replicas':15} {cluster.replicas_created()}")
            if args.conformance:
                system = replay_oplog(cluster.oplog, config, cluster.initial_live)
                system.check_invariants()
                conformance = diff_states(cluster, system)
                print(conformance.render())
                if not conformance.ok:
                    return 1
            return 0
        finally:
            await cluster.shutdown()

    return asyncio.run(run())


def _cmd_profile(args: "argparse.Namespace") -> int:
    import asyncio
    import cProfile
    import io
    import pstats

    from .runtime import (
        LiveCluster,
        LoadGenerator,
        RuntimeClient,
        RuntimeConfig,
        WorkloadShape,
    )

    async def workload() -> tuple[int, float, dict[str, float]]:
        config = RuntimeConfig(
            m=args.m, b=args.b, seed=args.seed,
            wire_version=2 if args.codec == "binary" else 1,
            coalesce_bytes=4096 if args.codec == "binary" else 0,
            batch_max=16 if args.codec == "binary" else 1,
        )
        cluster = await LiveCluster.start(config)
        try:
            files = [f"file-{i}.dat" for i in range(args.files)]
            boot = await RuntimeClient(cluster, min(cluster.nodes)).connect()
            for name in files:
                await boot.insert(name, f"payload of {name}")
            await boot.close()
            await cluster.drain()
            gen = LoadGenerator(
                cluster, files, WorkloadShape(kind="zipf", s=1.2), seed=args.seed
            )
            baseline = dict(cluster.stage_seconds)
            report = await gen.run_open_loop(args.rps, args.duration)
            await gen.close()
            await cluster.quiesce()
            stages = {
                k: v - baseline.get(k, 0.0)
                for k, v in cluster.stage_seconds.items()
            }
            return report.completed, report.achieved_rps, stages
        finally:
            await cluster.shutdown()

    profiler = cProfile.Profile()
    profiler.enable()
    completed, rps, stages = asyncio.run(workload())
    profiler.disable()

    print(
        f"profile: codec={args.codec}, m={args.m}, b={args.b}, "
        f"seed={args.seed}, {args.duration}s @ {args.rps} req/s -> "
        f"{completed} completed ({rps:.1f} req/s achieved)"
    )
    total = sum(stages.values())
    print("stage breakdown (instrumented wall time inside the cluster):")
    for name in ("encode", "decode", "route", "serve"):
        seconds = stages.pop(name, 0.0)
        share = 100.0 * seconds / total if total > 0 else 0.0
        per_req = 1e6 * seconds / completed if completed else 0.0
        print(f"  {name:7s} {seconds:8.4f} s  ({share:5.1f}% of staged, "
              f"{per_req:7.2f} us/request)")
    for name, seconds in sorted(stages.items()):  # any future stages
        print(f"  {name:7s} {seconds:8.4f} s")
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(pstats.SortKey.TIME)
    stats.print_stats(args.top)
    print(stream.getvalue())
    if args.output is not None:
        stats.dump_stats(str(args.output))
        print(f"pstats data written to {args.output}")
    return 0


def _cmd_verify_replay(repro: Path) -> int:
    from .verify import replay_file

    try:
        outcome = replay_file(repro)
    except FileNotFoundError:
        print(f"no such repro file: {repro}", file=sys.stderr)
        return 2
    print(outcome.render())
    return 0 if outcome.reproduced else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "experiments":
        return _cmd_experiments()
    if args.command == "run":
        return _cmd_run(
            args.experiment, args.fast, args.csv, args.chart, args.workers
        )
    if args.command == "figures":
        return _cmd_figures()
    if args.command == "report":
        return _cmd_report(args.full, args.output, args.only)
    if args.command == "tree":
        return _cmd_tree(args.root, args.m, args.dead)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "reliability":
        return _cmd_reliability(
            args.m, args.loss_rate, args.retries, args.timeout,
            args.rate, args.duration, args.seed,
        )
    if args.command == "audit":
        return _cmd_audit(args.snapshot)
    if args.command == "snapshot-demo":
        return _cmd_snapshot_demo(args.output)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "verify":
        if args.verify_command == "fuzz":
            return _cmd_verify_fuzz(
                args.seeds, args.m, args.b, args.events, args.base_seed,
                args.mutate, args.out,
            )
        return _cmd_verify_replay(args.repro)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
