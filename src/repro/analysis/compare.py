"""Comparing sweep results: engine cross-validation and regressions.

:func:`compare_sweeps` aligns two :class:`SweepResult` series on their
shared x grid and reports pointwise ratios — the tool behind "the DES
agrees with the fluid engine" style claims, and handy for tracking a
change's effect on any experiment output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .results import SweepResult

__all__ = ["SeriesComparison", "compare_sweeps"]


@dataclass(frozen=True)
class SeriesComparison:
    """Pointwise comparison of one series across two sweeps."""

    series: str
    xs: tuple[float, ...]
    left: tuple[float, ...]
    right: tuple[float, ...]

    @property
    def ratios(self) -> tuple[float, ...]:
        """right/left per point (NaN where left == 0 and right != 0)."""
        out = []
        for lv, rv in zip(self.left, self.right):
            if lv == 0:
                out.append(1.0 if rv == 0 else float("nan"))
            else:
                out.append(rv / lv)
        return tuple(out)

    @property
    def mean_ratio(self) -> float:
        ratios = [r for r in self.ratios if not np.isnan(r)]
        return float(np.mean(ratios)) if ratios else float("nan")

    @property
    def max_abs_log_ratio(self) -> float:
        """Worst-case multiplicative deviation, symmetric in direction.

        A NaN ratio (zero vs non-zero) is an unbounded deviation.
        """
        if any(np.isnan(r) or r <= 0 for r in self.ratios):
            return float("inf")
        return float(np.max(np.abs(np.log(self.ratios))))

    def within_factor(self, factor: float) -> bool:
        """Are all points within ``factor``× of each other (both ways)?"""
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return self.max_abs_log_ratio <= float(np.log(factor))


def compare_sweeps(
    left: SweepResult,
    right: SweepResult,
    series: dict[str, str] | None = None,
) -> list[SeriesComparison]:
    """Compare matching series of two sweeps on their shared x grid.

    ``series`` maps left-series name → right-series name; by default
    every series name present in both sweeps is compared against
    itself.  Raises when the mapping matches nothing.
    """
    if series is None:
        shared = sorted(set(left.series) & set(right.series))
        series = {name: name for name in shared}
    if not series:
        raise ValueError("no series in common between the two sweeps")
    comparisons: list[SeriesComparison] = []
    for left_name, right_name in series.items():
        left_points = dict(left.series[left_name])
        right_points = dict(right.series[right_name])
        xs = tuple(sorted(set(left_points) & set(right_points)))
        if not xs:
            raise ValueError(
                f"series {left_name!r}/{right_name!r} share no x values"
            )
        comparisons.append(
            SeriesComparison(
                series=left_name,
                xs=xs,
                left=tuple(left_points[x] for x in xs),
                right=tuple(right_points[x] for x in xs),
            )
        )
    return comparisons
