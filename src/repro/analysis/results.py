"""Result containers for experiment sweeps.

A :class:`SweepResult` holds one figure's worth of data: named series
of (x, y) points plus axis metadata.  It renders to the ASCII tables
the benchmark harness prints and exports CSV for external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SweepResult"]


@dataclass
class SweepResult:
    """Named series over a shared x-axis (one paper figure)."""

    experiment: str
    x_label: str
    y_label: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    notes: str = ""

    def add(self, series_name: str, x: float, y: float) -> None:
        self.series.setdefault(series_name, []).append((float(x), float(y)))

    def xs(self) -> list[float]:
        """The union of x values across series, sorted."""
        values: set[float] = set()
        for points in self.series.values():
            values.update(x for x, _ in points)
        return sorted(values)

    def value(self, series_name: str, x: float) -> float:
        for px, py in self.series[series_name]:
            if px == x:
                return py
        raise KeyError(f"series {series_name!r} has no point at x={x}")

    def totals(self) -> dict[str, float]:
        """Sum of y per series (a quick who-wins aggregate)."""
        return {
            name: sum(y for _, y in points)
            for name, points in self.series.items()
        }

    def to_rows(self) -> tuple[list[str], list[list[str]]]:
        """(headers, rows) with one row per x, one column per series."""
        names = sorted(self.series)
        headers = [self.x_label, *names]
        rows: list[list[str]] = []
        by_series = {
            name: dict(points) for name, points in self.series.items()
        }
        for x in self.xs():
            row = [_fmt(x)]
            for name in names:
                y = by_series[name].get(x)
                row.append(_fmt(y) if y is not None else "-")
            rows.append(row)
        return headers, rows

    def to_csv(self) -> str:
        headers, rows = self.to_rows()
        lines = [",".join(headers)]
        lines.extend(",".join(row) for row in rows)
        return "\n".join(lines)

    def render(self) -> str:
        """ASCII table, titled like the paper figure it reproduces."""
        from .tables import render_table

        title = f"{self.experiment}  ({self.y_label} vs {self.x_label})"
        headers, rows = self.to_rows()
        body = render_table(headers, rows)
        parts = [title, body]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.3g}"
