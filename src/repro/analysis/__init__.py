"""Analysis: result containers, ASCII rendering, shape statistics."""

from .chart import render_chart, render_sweep_chart
from .compare import SeriesComparison, compare_sweeps
from .results import SweepResult
from .stats import (
    dominates,
    max_relative_spread,
    mean_ratio,
    mostly_monotonic,
    summarize,
)
from .tables import render_kv, render_sparkline, render_table

__all__ = [
    "SeriesComparison",
    "SweepResult",
    "compare_sweeps",
    "render_chart",
    "render_sweep_chart",
    "dominates",
    "max_relative_spread",
    "mean_ratio",
    "mostly_monotonic",
    "render_kv",
    "render_sparkline",
    "render_table",
    "summarize",
]
