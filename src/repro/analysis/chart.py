"""Multi-series ASCII line charts.

The paper's figures are line plots; :func:`render_chart` draws a
terminal approximation of a :class:`~repro.analysis.results.SweepResult`
so `lesslog run figN` output reads like the original figure, not just a
table.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["render_chart", "render_sweep_chart"]

_MARKERS = "ox+*#@%&"


def render_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Plot aligned series over shared ``xs`` on a character canvas.

    Each series gets a marker from ``oxo+*…``; overlapping points show
    the later series' marker.  Axes are annotated with min/max values.
    """
    if not xs or not series:
        return "(no data)"
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {len(xs)}"
            )
    xs_arr = np.asarray(xs, dtype=float)
    all_y = np.concatenate([np.asarray(ys, dtype=float) for ys in series.values()])
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_lo, x_hi = float(xs_arr.min()), float(xs_arr.max())
    y_span = (y_hi - y_lo) or 1.0
    x_span = (x_hi - x_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(sorted(series.items())):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in zip(xs_arr, np.asarray(ys, dtype=float)):
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            canvas[row][col] = marker

    gutter = max(len(f"{v:g}") for v in (y_lo, y_hi)) + 1
    lines: list[str] = []
    for i, row in enumerate(canvas):
        if i == 0:
            label = f"{y_hi:g}".rjust(gutter)
        elif i == height - 1:
            label = f"{y_lo:g}".rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    lines.append(
        " " * gutter + f"  {x_lo:g}" + f"{x_hi:g}".rjust(width - len(f"{x_lo:g}"))
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}"
        for i, name in enumerate(sorted(series))
    )
    header: list[str] = []
    if y_label:
        header.append(f"{y_label} vs {x_label}" if x_label else y_label)
    return "\n".join([*header, *lines, f"  {legend}"])


def render_sweep_chart(sweep, width: int = 64, height: int = 16) -> str:
    """Chart a SweepResult (series must share the full x grid)."""
    xs = sweep.xs()
    series: dict[str, list[float]] = {}
    for name, points in sweep.series.items():
        by_x = dict(points)
        if set(by_x) != set(xs):
            continue  # partial series cannot be drawn on the shared grid
        series[name] = [by_x[x] for x in xs]
    if not series:
        return "(series are not aligned on a shared x grid)"
    return render_chart(
        xs, series, width=width, height=height,
        y_label=sweep.y_label, x_label=sweep.x_label,
    )
