"""Statistical helpers for validating experiment *shapes*.

The reproduction can't match the paper's absolute replica counts (its
overload-detection cadence is unspecified), so the benchmarks assert
the qualitative claims instead: orderings between policies, approximate
monotonicity in demand, and insensitivity to dead-node fraction.  These
helpers encode those checks once.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "dominates",
    "mostly_monotonic",
    "max_relative_spread",
    "mean_ratio",
    "summarize",
]


def dominates(
    lower: Sequence[float], upper: Sequence[float], slack: float = 0.0
) -> bool:
    """Is ``lower[i] <= upper[i] + slack`` for every aligned point?"""
    lo, up = np.asarray(lower, float), np.asarray(upper, float)
    if lo.shape != up.shape:
        raise ValueError(f"series lengths differ: {lo.shape} vs {up.shape}")
    return bool(np.all(lo <= up + slack))


def mostly_monotonic(values: Sequence[float], tolerance: float = 0.1) -> bool:
    """Non-decreasing up to small dips (``tolerance`` fraction of range)."""
    vals = np.asarray(values, float)
    if vals.size < 2:
        return True
    slack = tolerance * (vals.max() - vals.min() or 1.0)
    return bool(np.all(np.diff(vals) >= -slack))


def max_relative_spread(series: Sequence[Sequence[float]]) -> float:
    """Worst-case pointwise spread across series, relative to the mean.

    Used for Figures 6/8: "a similar number of replicas are created in
    all three configurations" — the spread should be modest.
    """
    arr = np.asarray(series, float)
    if arr.ndim != 2:
        raise ValueError("expected a 2-D (series x points) array")
    means = arr.mean(axis=0)
    means[means == 0] = 1.0
    spread = (arr.max(axis=0) - arr.min(axis=0)) / means
    return float(spread.max())


def mean_ratio(numer: Sequence[float], denom: Sequence[float]) -> float:
    """Mean pointwise ratio numer/denom (zero-denominator points skipped)."""
    num, den = np.asarray(numer, float), np.asarray(denom, float)
    if num.shape != den.shape:
        raise ValueError(f"series lengths differ: {num.shape} vs {den.shape}")
    mask = den != 0
    if not mask.any():
        raise ValueError("all denominator points are zero")
    return float((num[mask] / den[mask]).mean())


def summarize(values: Sequence[float]) -> dict[str, float]:
    """min/mean/max/std of a series."""
    vals = np.asarray(values, float)
    return {
        "min": float(vals.min()),
        "mean": float(vals.mean()),
        "max": float(vals.max()),
        "std": float(vals.std()),
    }
