"""ASCII table and sparkline rendering for experiment output."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_sparkline", "render_kv"]

_SPARK_CHARS = " .:-=+*#%@"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A boxed, column-aligned plain-text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(str(c).rjust(widths[i]) for i, c in enumerate(cells)) + " |"

    rule = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = [rule, line(headers), rule]
    out.extend(line(row) for row in rows)
    out.append(rule)
    return "\n".join(out)


def render_sparkline(values: Sequence[float], width: int = 0) -> str:
    """A coarse one-line plot of a numeric series."""
    if not values:
        return ""
    vals = list(values)
    if width and len(vals) > width:
        # Down-sample by taking bucket means.
        bucket = len(vals) / width
        vals = [
            sum(vals[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)])
            / max(len(vals[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)]), 1)
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    span = hi - lo or 1.0
    top = len(_SPARK_CHARS) - 1
    return "".join(_SPARK_CHARS[round((v - lo) / span * top)] for v in vals)


def render_kv(pairs: dict[str, object], indent: int = 2) -> str:
    """Aligned key/value block for run summaries."""
    if not pairs:
        return ""
    width = max(len(k) for k in pairs)
    pad = " " * indent
    return "\n".join(f"{pad}{k.ljust(width)} : {v}" for k, v in pairs.items())
