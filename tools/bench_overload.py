#!/usr/bin/env python
"""Benchmark the overload control plane under a flash crowd, per policy cell.

Boots a live cluster per trial and drives a *flash crowd* — a heavily
skewed Zipf GET workload (``s=2.0``) over a small file set, so one hot
file's home node takes the brunt — through the open-loop generator at a
ramp of target rates.  The ramp runs once for every cell of the
admission-policy grid (shed x queue x victim, 12 cells) plus a
``no-control`` baseline with the bounded inbox disabled
(``inbox_limit=0``): the runtime exactly as it behaves without the
overload control plane.

A rate is *sustained* for a cell when every trial:

* completes with no client timeouts,
* keeps p99 completion latency within the SLO (50 ms) — for policy
  cells this includes redirect-and-retry time, so shedding only wins
  when the hint lands somewhere that can actually serve,
* delivers goodput (completed requests/s) of at least 75% of the
  target rate — a cell cannot "sustain" by refusing everyone,
* conserves the request ledger
  (``requests == completed + faults + errors + timeouts + shed``), and
* replays conformantly against the synchronous oracle.

The ramp for a cell stops at its first unsustained rate.  All
configurations run the *serialized* inbox consumer (``batch_max=1``),
where per-node service capacity is a real resource (``1/service_time``
requests/second) rather than an overlapped delay — a node genuinely
melts when the crowd lands on it.  The rate-based replication trigger
is disabled (``capacity`` huge) so the only escape valve is the
SLO-aware trigger: its windowed-p99 budget (20 ms) is deliberately
tighter than the client SLO (50 ms), because a bounded inbox holds the
*served* latency near ``inbox_limit x service_time`` — a budget looser
than that would never fire and the control plane would starve its own
escape valve.  Only admission control differs between configurations,
so the comparison isolates the shed/queue/victim policy itself.

Results go to ``BENCH_overload.json`` at the repo root: per-cell
sustained rps at the 50 ms SLO, the best policy cell, and the full ramp
with shed/overload/redirect accounting per entry.

Usage::

    PYTHONPATH=src python tools/bench_overload.py            # full grid
    PYTHONPATH=src python tools/bench_overload.py --check    # CI smoke
    PYTHONPATH=src python tools/bench_overload.py --churn    # churned grid

``--check`` runs a reduced ramp and exits non-zero when any trial in
any cell breaks ledger conservation or oracle conformance, when no
configuration sustains the smallest rate, or when every policy cell
sustains strictly less than the no-control baseline (the control plane
must never be the bottleneck it was built to remove).

``--churn`` reruns the grid with silent mid-burst crashes
(:class:`ChurnInjector`, ``crash(pid, announce=False)``) landing in the
middle half of every measured burst, against a churned no-control
baseline; results go to ``BENCH_overload_churn.json``.  The request
ledger gains the ``churn_lost`` terminal
(``requests == completed + faults + errors + timeouts + shed +
churn_lost``) and the autopsy announce runs between generator close and
the conformance replay, so every cell must stay conserved *and*
conformant despite nodes dying under load.  Composes with ``--check``
for the CI smoke gate.
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime import (  # noqa: E402
    ChurnInjector,
    LiveCluster,
    LoadGenerator,
    RuntimeClient,
    RuntimeConfig,
    WorkloadShape,
    diff_states,
    policy_grid,
    replay_oplog,
)

OUTPUT = REPO_ROOT / "BENCH_overload.json"
OUTPUT_CHURN = REPO_ROOT / "BENCH_overload_churn.json"

#: Latency SLO: a rate only counts as sustained while every trial's p99
#: (including redirect retries) stays under this.
P99_SLO_S = 0.050

#: Minimum goodput (completed rps / target rps) for a sustained rate.
GOODPUT_FLOOR = 0.75

#: The no-control baseline's label in the grid.
BASELINE = "no-control"

#: Flash-crowd shape: a steep Zipf over few files concentrates load on
#: one home node until replication and redirects spread it.
ZIPF_S = 2.0

#: Simulated storage read, and the per-node capacity it implies under
#: the serialized consumer: 1/0.01 = 100 requests/second.
SERVICE_TIME_S = 0.010

#: Windowed-p99 budget for the SLO-aware replication trigger.  Tighter
#: than the client SLO on purpose (see the module docstring).
SLO_BUDGET_S = 0.020

CHECK_RATES = [200.0, 300.0]
CHECK_WARMUP, CHECK_DURATION, CHECK_FILES = 0.3, 0.5, 4
FULL_RATES = [200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0]
FULL_WARMUP, FULL_DURATION, FULL_FILES = 0.4, 1.0, 4


def _run_meta(m: int, node_count: int, codec: str, process_mode: str,
              client_processes: int = 1) -> dict:
    """Reproducibility metadata carried by every benchmark artifact."""
    import os
    import platform

    return {
        "m": m,
        "node_count": node_count,
        "codec": codec,
        "process_mode": process_mode,
        "client_processes": client_processes,
        "python": platform.python_version(),
        "host_cpus": os.cpu_count(),
        "available_cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity") else os.cpu_count(),
    }


def _configs(args: argparse.Namespace) -> dict[str, RuntimeConfig]:
    """One RuntimeConfig per grid cell, plus the no-control baseline."""
    base = dict(
        m=args.m, b=args.b, seed=args.seed, tcp=args.tcp,
        capacity=100_000.0, service_time=SERVICE_TIME_S, batch_max=1,
        slo_budget=SLO_BUDGET_S,
    )
    configs = {BASELINE: RuntimeConfig(**base, inbox_limit=0)}
    for policy in policy_grid():
        configs[policy.cell] = RuntimeConfig(
            **base,
            inbox_limit=args.inbox_limit,
            shed_policy=policy.shed,
            queue_policy=policy.queue,
            victim_policy=policy.victim,
        )
    return configs


async def _run_trial(
    config: RuntimeConfig,
    files: int,
    rps: float,
    warmup: float,
    duration: float,
    seed: int,
    churn_kills: int = 0,
) -> tuple[dict, int, int, bool]:
    """One fresh cluster, one cell, one target rate, one trial.

    With ``churn_kills`` nonzero, that many *silent* crashes
    (``crash(pid, announce=False)``) land inside the middle half of the
    measured burst on a seeded schedule; the announce half (recovery,
    oplog close, inherited-load attribution) runs as an autopsy after
    the generator closes, so the conformance replay still sees a fully
    self-organized membership.

    Returns (report dict + ``conserved``, replicas created, total GETs
    shed server-side, conformant?).
    """
    cluster = await LiveCluster.start(config)
    try:
        names = [f"crowd-{i}.dat" for i in range(files)]
        boot = await RuntimeClient(cluster, min(cluster.nodes)).connect()
        for name in names:
            await boot.insert(name, f"payload of {name}")
        await boot.close()
        await cluster.drain()
        gen = LoadGenerator(
            cluster, names, WorkloadShape(kind="zipf", s=ZIPF_S),
            seed=seed, timeout=2.0,
        )
        if warmup > 0:
            await gen.run_open_loop(rps=rps, duration=warmup)
        injector = None
        if churn_kills:
            injector = ChurnInjector.scheduled(
                cluster, duration, kills=churn_kills, seed=seed, min_live=3,
            )
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            if injector is not None:
                injector.start()
            report = await gen.run_open_loop(rps=rps, duration=duration)
        finally:
            if gc_was_enabled:
                gc.enable()
        await gen.close()
        applied: list[dict] = []
        if injector is not None:
            applied = await injector.finalize()
        await cluster.quiesce()
        shed_total = sum(node.shed_total for node in cluster.nodes.values())
        system = replay_oplog(cluster.oplog, config, cluster.initial_live)
        system.check_invariants()
        conformance = diff_states(cluster, system)
        entry = {**report.as_dict(), "conserved": report.conserved}
        if injector is not None:
            entry["churn"] = [
                f"{e['action']}@P({e['pid']})" for e in applied
            ]
        return entry, cluster.replicas_created(), shed_total, conformance.ok
    finally:
        await cluster.shutdown()


def _ramp_cell(
    cell: str,
    config: RuntimeConfig,
    rates: list[float],
    files: int,
    warmup: float,
    duration: float,
    trials: int,
    seed: int,
    churn_kills: int = 0,
) -> tuple[list[dict], float, bool, bool]:
    """Ramp one cell; stop at its first unsustained rate.

    Returns (ramp entries, sustained rps, every trial conserved?,
    every trial conformant?).
    """
    ramp: list[dict] = []
    sustained_rps = 0.0
    all_conserved = True
    all_conformant = True
    for rps in rates:
        reports: list[dict] = []
        replicas = 0
        shed_total = 0
        conformant = True
        for trial in range(trials):
            report, repl, shed, ok = asyncio.run(
                _run_trial(config, files, rps, warmup, duration,
                           seed + trial, churn_kills)
            )
            reports.append(report)
            replicas = max(replicas, repl)
            shed_total += shed
            conformant = conformant and ok
        conserved = all(r["conserved"] for r in reports)
        all_conserved = all_conserved and conserved
        all_conformant = all_conformant and conformant
        p99s = sorted(r["latency_p99_s"] for r in reports)
        median_p99 = p99s[len(p99s) // 2]
        median_report = next(
            r for r in reports if r["latency_p99_s"] == median_p99
        )
        goodput = all(
            r["requests"] > 0
            and r["completed"] / max(r["duration_s"], 1e-9)
            >= GOODPUT_FLOOR * rps
            for r in reports
        )
        complete = all(r["timeouts"] == 0 for r in reports)
        sustained = (
            complete and goodput and conserved and conformant
            and median_p99 <= P99_SLO_S
        )
        ramp.append({
            "cell": cell,
            "target_rps": rps,
            "sustained": sustained,
            "conformant": conformant,
            "replicas_to_balance": replicas,
            "shed_server_side": shed_total,
            "trial_p99_s": p99s,
            **median_report,
        })
        marker = "ok " if sustained else "SAT"
        churn_note = ""
        if churn_kills:
            churn_note = (f"churn_lost {median_report.get('churn_lost', 0):3d}, "
                          f"rerouted {median_report.get('rerouted', 0):3d}, ")
        print(f"  {marker} {cell:28s} target {rps:6.0f} rps -> "
              f"goodput {median_report['completed'] / max(median_report['duration_s'], 1e-9):7.1f} rps, "
              f"p99 {median_p99 * 1e3:7.2f} ms, "
              f"shed {median_report['shed']:4d}, "
              f"overloads {median_report['overloads']:4d}, "
              f"redirected {median_report['redirected']:4d}, "
              f"{churn_note}"
              f"conserved={conserved}, conformant={conformant}")
        if sustained and rps > sustained_rps:
            sustained_rps = rps
        if not sustained:
            break
    return ramp, sustained_rps, all_conserved, all_conformant


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="CI smoke: reduced ramp, conservation + "
                        "baseline gates")
    parser.add_argument("--tcp", action="store_true",
                        help="real TCP on loopback instead of in-process "
                        "streams")
    parser.add_argument("--m", type=int, default=3, help="identifier width")
    parser.add_argument("--b", type=int, default=1,
                        help="fault-tolerance degree")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--inbox-limit", type=int, default=2,
                        help="bounded-inbox depth for the policy cells")
    parser.add_argument("--trials", type=int, default=1,
                        help="trials per rate")
    parser.add_argument("--churn", action="store_true",
                        help="silent mid-burst crashes per trial; results "
                        "go to BENCH_overload_churn.json")
    parser.add_argument("--churn-kills", type=int, default=2,
                        help="silent crashes per churned trial")
    args = parser.parse_args(argv)

    if args.check:
        rates, files = list(CHECK_RATES), CHECK_FILES
        warmup, duration = CHECK_WARMUP, CHECK_DURATION
    else:
        rates, files = list(FULL_RATES), FULL_FILES
        warmup, duration = FULL_WARMUP, FULL_DURATION

    mode = "tcp" if args.tcp else "streams"
    label = "fast" if args.check else "full"
    churn_kills = args.churn_kills if args.churn else 0
    configs = _configs(args)
    churn_note = (f", {churn_kills} silent mid-burst crash(es)/trial"
                  if churn_kills else "")
    print(f"flash-crowd ramp ({label}, {mode}): m={args.m}, b={args.b}, "
          f"{files} files, zipf s={ZIPF_S}, inbox_limit={args.inbox_limit}, "
          f"{args.trials} trial(s) x {duration}s per rate, "
          f"p99 SLO {P99_SLO_S * 1e3:.0f} ms, "
          f"goodput floor {GOODPUT_FLOOR:.0%}{churn_note}")

    wall_start = time.perf_counter()
    ramp: list[dict] = []
    sustained: dict[str, float] = {}
    all_conserved = True
    all_conformant = True
    for cell, config in configs.items():
        print(f"{cell}:")
        entries, rps, conserved, conformant = _ramp_cell(
            cell, config, rates, files, warmup, duration, args.trials,
            args.seed, churn_kills,
        )
        ramp.extend(entries)
        sustained[cell] = rps
        all_conserved = all_conserved and conserved
        all_conformant = all_conformant and conformant
    wall = time.perf_counter() - wall_start

    baseline_rps = sustained.get(BASELINE, 0.0)
    cells = {name: rps for name, rps in sustained.items() if name != BASELINE}
    best_cell = max(cells, key=lambda name: cells[name]) if cells else None
    best_rps = cells.get(best_cell, 0.0) if best_cell else 0.0
    payload = {
        "benchmark": ("overload-flash-crowd-churn" if churn_kills
                      else "overload-flash-crowd"),
        "grid": label,
        "transport": mode,
        "run_meta": _run_meta(args.m, 1 << args.m, "binary-v2", "single"),
        "m": args.m,
        "b": args.b,
        "files": files,
        "zipf_s": ZIPF_S,
        "inbox_limit": args.inbox_limit,
        "churn_kills_per_trial": churn_kills,
        "trials_per_rate": args.trials,
        "warmup_per_rate_s": warmup,
        "duration_per_rate_s": duration,
        "p99_slo_s": P99_SLO_S,
        "goodput_floor": GOODPUT_FLOOR,
        "baseline_sustained_rps": baseline_rps,
        "best_cell": best_cell,
        "best_cell_sustained_rps": best_rps,
        "conserved": all_conserved,
        "conformant": all_conformant,
        "cells": {
            name: {"sustained_rps": rps} for name, rps in sustained.items()
        },
        "ramp": ramp,
        "wallclock_seconds": round(wall, 3),
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    output = OUTPUT_CHURN if churn_kills else OUTPUT
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"sustained: baseline {baseline_rps:.0f} rps, best cell "
          f"{best_cell} {best_rps:.0f} rps; wrote {output}")

    if not all_conserved:
        print("FAIL: a trial broke request-ledger conservation",
              file=sys.stderr)
        return 1
    if not all_conformant:
        print("FAIL: a live run diverged from the oracle replay",
              file=sys.stderr)
        return 1
    if max(sustained.values(), default=0.0) <= 0:
        print("FAIL: no configuration sustained the smallest target rate",
              file=sys.stderr)
        return 1
    if best_rps < baseline_rps:
        print(f"FAIL: every policy cell sustains less than the no-control "
              f"baseline ({best_rps:.0f} < {baseline_rps:.0f} rps)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
