#!/usr/bin/env python
"""Benchmark the vectorized fluid engine against the reference pass.

Runs the Figure 5 sweep (the paper's m=10 grid by default) twice — once
with the dict-based reference flow pass, once with the vectorized
incremental kernel — asserts the two produce identical replica tables,
and writes the timings to ``BENCH_fluid.json`` at the repository root.

Usage::

    PYTHONPATH=src python tools/bench_fluid.py            # full paper grid
    PYTHONPATH=src python tools/bench_fluid.py --check    # CI smoke (fast grid)

``--check`` exits non-zero if the vectorized engine is slower than the
reference at m=10 or if the outputs diverge.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.routing import routing_table_cache_clear  # noqa: E402
from repro.experiments.config import FigureConfig  # noqa: E402
from repro.experiments.figures import figure5  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_fluid.json"


def _timed_run(config: FigureConfig) -> tuple[float, dict]:
    """Run the Figure 5 sweep once; return (seconds, series dict)."""
    routing_table_cache_clear()  # charge each engine its own table builds
    start = time.perf_counter()
    result = figure5(config)
    elapsed = time.perf_counter() - start
    return elapsed, result.series


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI smoke: reduced grid, fail if vectorized is slower",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="timing repetitions (best-of is reported)",
    )
    args = parser.parse_args(argv)

    config = FigureConfig.fast() if args.check else FigureConfig.paper()
    label = "fast" if args.check else "paper"
    print(f"Figure 5 sweep, m={config.m}, {len(config.rates)} rates "
          f"x 3 policies ({label} grid), repeats={args.repeats}")

    ref_time = vec_time = float("inf")
    ref_series = vec_series = None
    for _ in range(max(1, args.repeats)):
        elapsed, series = _timed_run(config.with_(reference=True))
        ref_time = min(ref_time, elapsed)
        ref_series = series
        elapsed, series = _timed_run(config)
        vec_time = min(vec_time, elapsed)
        vec_series = series

    identical = ref_series == vec_series
    speedup = ref_time / vec_time if vec_time > 0 else float("inf")
    print(f"reference:  {ref_time:8.3f}s")
    print(f"vectorized: {vec_time:8.3f}s")
    print(f"speedup:    {speedup:8.2f}x   identical tables: {identical}")

    payload = {
        "benchmark": "figure5-fluid-balance",
        "grid": label,
        "m": config.m,
        "rates": list(config.rates),
        "policies": ["log-based", "lesslog", "random"],
        "repeats": max(1, args.repeats),
        "reference_seconds": round(ref_time, 4),
        "vectorized_seconds": round(vec_time, 4),
        "speedup": round(speedup, 2),
        "identical_tables": identical,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT.relative_to(REPO_ROOT)}")

    if not identical:
        print("FAIL: vectorized tables diverge from reference", file=sys.stderr)
        return 1
    if args.check and speedup < 1.0:
        print("FAIL: vectorized engine slower than reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
