#!/usr/bin/env python
"""Benchmark the live asyncio runtime: sustained RPS and latency.

Boots a live cluster (in-process streams by default, ``--tcp`` for real
loopback TCP), inserts a file set, and drives a seeded Zipf GET
workload through the open-loop load generator at a ramp of target
rates.  The *sustained* RPS is the highest target the cluster served
with no timeouts and at least 99% completion.  Alongside the latency
percentiles at that rate, the run reports how many autonomous replica
placements the overload sweepers made (the paper's replicas-to-balance
measure, live).  Results go to ``BENCH_runtime.json`` at the repo root.

Usage::

    PYTHONPATH=src python tools/bench_runtime.py            # full ramp
    PYTHONPATH=src python tools/bench_runtime.py --check    # CI smoke
    PYTHONPATH=src python tools/bench_runtime.py --tcp      # over TCP

``--check`` runs a reduced ramp and exits non-zero if the cluster
cannot sustain the smallest target rate or conformance fails.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime import (  # noqa: E402
    LiveCluster,
    LoadGenerator,
    RuntimeClient,
    RuntimeConfig,
    WorkloadShape,
    diff_states,
    replay_oplog,
)

OUTPUT = REPO_ROOT / "BENCH_runtime.json"


async def _run_rate(
    config: RuntimeConfig, files: int, rps: float, duration: float, seed: int
) -> tuple[dict, bool, int, bool]:
    """One fresh cluster, one target rate.

    Returns (report dict, sustained?, replicas created, conformant?).
    """
    cluster = await LiveCluster.start(config)
    try:
        names = [f"bench-{i}.dat" for i in range(files)]
        boot = await RuntimeClient(cluster, min(cluster.nodes)).connect()
        for name in names:
            await boot.insert(name, f"payload of {name}")
        await boot.close()
        await cluster.drain()
        gen = LoadGenerator(
            cluster, names, WorkloadShape(kind="zipf", s=1.2), seed=seed
        )
        report = await gen.run_open_loop(rps=rps, duration=duration)
        await gen.close()
        await cluster.quiesce()
        sustained = (
            report.timeouts == 0
            and report.requests > 0
            and report.completed >= 0.99 * report.requests
        )
        system = replay_oplog(cluster.oplog, config, cluster.initial_live)
        system.check_invariants()
        conformance = diff_states(cluster, system)
        return report.as_dict(), sustained, cluster.replicas_created(), conformance.ok
    finally:
        await cluster.shutdown()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="CI smoke: reduced ramp, strict exit code")
    parser.add_argument("--tcp", action="store_true",
                        help="real TCP on loopback instead of in-process streams")
    parser.add_argument("--m", type=int, default=4, help="identifier width")
    parser.add_argument("--b", type=int, default=1, help="fault-tolerance degree")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.check:
        rates = [100.0, 200.0]
        duration, files = 0.5, 6
    else:
        rates = [100.0, 200.0, 400.0, 800.0, 1600.0]
        duration, files = 2.0, 12
    config = RuntimeConfig(
        m=args.m, b=args.b, seed=args.seed, tcp=args.tcp,
        capacity=60.0, service_time=0.0005, inflight_limit=32,
    )
    mode = "tcp" if args.tcp else "streams"
    label = "fast" if args.check else "full"
    print(f"runtime ramp ({label}, {mode}): m={args.m}, b={args.b}, "
          f"{files} files, {duration}s per rate")

    ramp: list[dict] = []
    sustained_rps = 0.0
    best: dict | None = None
    best_replicas = 0
    all_conformant = True
    wall_start = time.perf_counter()
    for rps in rates:
        report, sustained, replicas, conformant = asyncio.run(
            _run_rate(config, files, rps, duration, args.seed)
        )
        all_conformant = all_conformant and conformant
        ramp.append({
            "target_rps": rps,
            "sustained": sustained,
            "conformant": conformant,
            "replicas_to_balance": replicas,
            **report,
        })
        marker = "ok " if sustained else "SAT"
        print(f"  {marker} target {rps:7.0f} rps -> achieved "
              f"{report['achieved_rps']:8.1f}, p50 {report['latency_p50_s']*1e3:6.2f} ms, "
              f"p99 {report['latency_p99_s']*1e3:6.2f} ms, "
              f"{replicas} replicas, conformant={conformant}")
        if sustained and rps > sustained_rps:
            sustained_rps = rps
            best = report
            best_replicas = replicas
    wall = time.perf_counter() - wall_start

    payload = {
        "benchmark": "live-runtime-throughput",
        "grid": label,
        "transport": mode,
        "m": args.m,
        "b": args.b,
        "files": files,
        "duration_per_rate_s": duration,
        "sustained_rps": sustained_rps,
        "latency_p50_s": best["latency_p50_s"] if best else None,
        "latency_p99_s": best["latency_p99_s"] if best else None,
        "replicas_to_balance": best_replicas,
        "conformant": all_conformant,
        "ramp": ramp,
        "wallclock_seconds": round(wall, 3),
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"sustained {sustained_rps:.0f} rps; wrote {OUTPUT}")

    if not all_conformant:
        print("FAIL: live run diverged from the oracle replay", file=sys.stderr)
        return 1
    if args.check and sustained_rps <= 0:
        print("FAIL: could not sustain the smallest target rate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
