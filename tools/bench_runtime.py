#!/usr/bin/env python
"""Benchmark the live asyncio runtime: sustained RPS and latency, per codec.

Boots a live cluster (in-process streams by default, ``--tcp`` for real
loopback TCP), inserts a file set, and drives a seeded Zipf GET workload
through the open-loop load generator at a ramp of target rates — once
for each wire-protocol profile:

* ``json-v1``   — the v1 JSON codec with the serialized inbox consumer
  (``batch_max=1``), i.e. the runtime as it behaved before the fast
  path landed.
* ``binary-v2`` — the v2 binary codec with batched inbox draining and
  pipelined GET serving (``batch_max=16``).

``service_time`` models per-request storage latency (a 4 ms read).  The
compat profile awaits each read inside the consumer, so a node serves
reads serially; the fast path overlaps them, which is where most of the
throughput headroom comes from.

Each rate runs ``trials`` times on a fresh cluster: a warmup window at
the target rate (so overload replication reaches steady state), then a
measured window with the cyclic GC paused (collection pauses otherwise
dominate tail latency near saturation).  A rate is *sustained* when
every trial completes >= 99% of requests with no timeouts and the
median p99 latency stays within the SLO (50 ms).  The ramp for a codec
stops at its first unsustained rate.  Every trial is replayed against
the synchronous oracle; a single divergence fails the run.

Results go to ``BENCH_runtime.json`` at the repo root.  Top-level
``sustained_rps``/latency fields describe the binary profile; the
``codecs`` section carries both profiles and ``speedup`` is the ratio
of sustained rates.  Every ramp entry also persists the HDR-style
per-rate latency histogram (``latency_hist``) and the per-stage
``encode``/``decode``/``route``/``serve`` seconds; a human-readable
bar-chart rendering of all histograms goes to ``BENCH_runtime_hist.txt``.

Usage::

    PYTHONPATH=src python tools/bench_runtime.py            # full ramp
    PYTHONPATH=src python tools/bench_runtime.py --check    # CI smoke
    PYTHONPATH=src python tools/bench_runtime.py --tcp      # over TCP

``--check`` runs a reduced ramp and exits non-zero if conformance
fails, the smallest rate cannot be sustained, or — when the committed
baseline records a check-mode expectation — sustained throughput drops
more than 30% below it (the CI regression gate), or the latency
*shape* at the top check rate drifts more than ``SHAPE_TOLERANCE``
bucket-widths of earth-mover distance from the committed reference
(the shape gate: it catches bimodality and new tail modes that leave
the p99 SLO untouched, while staying insensitive to a uniform
machine-speed shift, which costs only ~4 buckets per octave).  Full
runs re-measure the check grid at the end to refresh that reference.

``--processes N`` switches to the **multi-process scale-out
benchmark** instead: N per-node worker OS processes are forked behind
the bootstrap/address-book service and driven over real loopback TCP.
Three segments run at matched node count (``2**m`` nodes, binary-v2
codec):

1. a single-process baseline ramp (``LiveCluster`` over TCP),
2. the multi-process fleet over the same coarse rate ladder — its max
   sustained rate must be >= the single-process figure,
3. a crash segment at the ladder's base rate: one worker is
   ``kill -9``-ed mid-burst, the post-burst autopsy runs §5 recovery,
   and the centrally collected snapshot must replay against the
   oracle with zero conformance diffs and full request conservation.

Results go to ``BENCH_scaleout.json`` (the single-process artifact and
its CI gates are left untouched).
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime import (  # noqa: E402
    LatencyHistogram,
    LiveCluster,
    LoadGenerator,
    RuntimeClient,
    RuntimeConfig,
    WorkloadShape,
    diff_states,
    replay_oplog,
)

OUTPUT = REPO_ROOT / "BENCH_runtime.json"
HIST_OUTPUT = REPO_ROOT / "BENCH_runtime_hist.txt"
BASELINE = REPO_ROOT / "BENCH_runtime.json"
SCALE_OUTPUT = REPO_ROOT / "BENCH_scaleout.json"

#: Latency SLO: a rate only counts as sustained while the median-trial
#: p99 stays under this.
P99_SLO_S = 0.050

#: Allowed drop below the committed baseline before --check fails.
REGRESSION_TOLERANCE = 0.30

#: Latency-shape gate: max earth-mover distance (in bucket-widths of
#: normalized probability mass) between the check-grid histogram and
#: the committed reference.  The buckets are log-linear with 4 per
#: octave, so a uniform 2x machine-speed shift costs ~4.0 — the
#: threshold tolerates that while flagging new multi-octave latency
#: modes that a p99-only gate can miss.
SHAPE_TOLERANCE = 8.0

#: The CI smoke grid.  Full runs re-measure CHECK_SHAPE_RATE with these
#: exact parameters to refresh the committed latency-shape reference,
#: so check-mode histograms compare like with like.
CHECK_RATES = [100.0, 200.0]
CHECK_SHAPE_RATE = 200.0
CHECK_WARMUP, CHECK_DURATION, CHECK_FILES = 0.4, 0.5, 6

PROFILES: dict[str, dict] = {
    "json-v1": {"wire_version": 1, "batch_max": 1, "coalesce_bytes": 0,
                "tick_coalesce": False, "fixed_frames": False},
    "binary-v2": {"wire_version": 2, "batch_max": 16, "coalesce_bytes": 0,
                  "tick_coalesce": True, "fixed_frames": True},
}

#: Scale-out rate ladder — coarse on purpose: every rung runs against
#: both the single-process baseline and the fleet, and the comparison
#: gate is per-rung, so fine steps only add wall-clock.  The top rung
#: is sized to what a small host can *schedule*: with 128 worker
#: processes plus the load generator sharing the machine's cores, the
#: OS scheduler — not the runtime — caps aggregate rate, and pushing
#: the shared grid past that point makes the fleet-vs-single
#: comparison measure core count instead of the scale-out plane.  Both
#: sides run the identical grid, so the >= gate stays meaningful.
SCALE_RATES = [40.0, 80.0, 120.0]
SCALE_CHECK_RATES = [40.0, 80.0]

#: The scale-out gate is on *throughput* (zero timeouts, >= 99%
#: completion): with every hop crossing the kernel scheduler, fleet
#: latency on a small host measures the machine's core count more than
#: the runtime (a 1-CPU box time-slices all 128 workers).  Latency
#: percentiles and per-stage seconds are reported, and a loose p99
#: backstop — well under the 5 s client timeout — still catches
#: pathological collapse.  Applied to baseline and fleet alike.
SCALE_P99_SLO_S = 1.0


def _run_meta(m: int, node_count: int, codec: str, process_mode: str,
              client_processes: int = 1) -> dict:
    """Reproducibility metadata carried by every benchmark artifact.

    ``host_cpus`` is the honest ``os.cpu_count()`` of the measuring
    host and ``available_cpus`` the schedulable subset (cgroup/affinity
    aware) — a scale-out figure from a 1-CPU box measures the kernel
    scheduler as much as the runtime, and the artifact must say so.
    """
    import os
    import platform

    return {
        "m": m,
        "node_count": node_count,
        "codec": codec,
        "process_mode": process_mode,
        "client_processes": client_processes,
        "python": platform.python_version(),
        "host_cpus": os.cpu_count(),
        "available_cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity") else os.cpu_count(),
    }


async def _run_trial(
    config: RuntimeConfig,
    files: int,
    rps: float,
    warmup: float,
    duration: float,
    seed: int,
) -> tuple[dict, dict, int, bool]:
    """One fresh cluster, one target rate, one trial.

    Returns (report dict, stage seconds, replicas created, conformant?).
    """
    cluster = await LiveCluster.start(config)
    try:
        names = [f"bench-{i}.dat" for i in range(files)]
        boot = await RuntimeClient(cluster, min(cluster.nodes)).connect()
        for name in names:
            await boot.insert(name, f"payload of {name}")
        await boot.close()
        await cluster.drain()
        gen = LoadGenerator(
            cluster, names, WorkloadShape(kind="zipf", s=1.2), seed=seed
        )
        if warmup > 0:
            await gen.run_open_loop(rps=rps, duration=warmup)
        stage_before = dict(cluster.stage_seconds)
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            report = await gen.run_open_loop(rps=rps, duration=duration)
        finally:
            if gc_was_enabled:
                gc.enable()
        stages = {
            k: round(v - stage_before.get(k, 0.0), 6)
            for k, v in cluster.stage_seconds.items()
        }
        await gen.close()
        await cluster.quiesce()
        system = replay_oplog(cluster.oplog, config, cluster.initial_live)
        system.check_invariants()
        conformance = diff_states(cluster, system)
        return report.as_dict(), stages, cluster.replicas_created(), conformance.ok
    finally:
        await cluster.shutdown()


def _ramp_codec(
    codec: str,
    rates: list[float],
    base_config: dict,
    files: int,
    warmup: float,
    duration: float,
    trials: int,
    seed: int,
) -> tuple[list[dict], float, dict | None, int, bool]:
    """Ramp one codec profile; stop at the first unsustained rate.

    Returns (ramp entries, sustained rps, report at that rate,
    replicas there, all trials conformant?).
    """
    ramp: list[dict] = []
    sustained_rps = 0.0
    best: dict | None = None
    best_replicas = 0
    all_conformant = True
    config = RuntimeConfig(**base_config, **PROFILES[codec])
    for rps in rates:
        reports: list[dict] = []
        stages: list[dict] = []
        replicas = 0
        conformant = True
        for trial in range(trials):
            report, stage, repl, ok = asyncio.run(
                _run_trial(config, files, rps, warmup, duration, seed + trial)
            )
            reports.append(report)
            stages.append(stage)
            replicas = max(replicas, repl)
            conformant = conformant and ok
        all_conformant = all_conformant and conformant
        p99s = sorted(r["latency_p99_s"] for r in reports)
        median_p99 = p99s[len(p99s) // 2]
        median_report = next(
            r for r in reports if r["latency_p99_s"] == median_p99
        )
        complete = all(
            r["timeouts"] == 0
            and r["requests"] > 0
            and r["completed"] >= 0.99 * r["requests"]
            for r in reports
        )
        sustained = complete and median_p99 <= P99_SLO_S
        stage_totals = {
            k: round(sum(s.get(k, 0.0) for s in stages), 6)
            for k in (stages[0] if stages else {})
        }
        ramp.append({
            "codec": codec,
            "target_rps": rps,
            "sustained": sustained,
            "conformant": conformant,
            "replicas_to_balance": replicas,
            "trial_p99_s": p99s,
            "stage_seconds": stage_totals,
            **median_report,
        })
        marker = "ok " if sustained else "SAT"
        print(f"  {marker} {codec:9s} target {rps:7.0f} rps -> achieved "
              f"{median_report['achieved_rps']:8.1f}, "
              f"p50 {median_report['latency_p50_s']*1e3:6.2f} ms, "
              f"p99 {median_p99*1e3:7.2f} ms (median of {trials}), "
              f"{replicas} replicas, conformant={conformant}")
        if sustained and rps > sustained_rps:
            sustained_rps = rps
            best = median_report
            best_replicas = replicas
        if not sustained:
            break
    return ramp, sustained_rps, best, best_replicas, all_conformant


def _load_baseline() -> dict | None:
    """The committed artifact, read *before* this run overwrites it."""
    if not BASELINE.exists():
        return None
    try:
        loaded = json.loads(BASELINE.read_text())
    except (OSError, ValueError):
        return None
    return loaded if isinstance(loaded, dict) else None


def _regression_gate(
    grid: str, sustained: dict[str, float], baseline: dict | None
) -> list[str]:
    """Compare check-mode sustained rates against the committed baseline.

    Returns a list of failure messages (empty when the gate passes or no
    comparable baseline exists).
    """
    if baseline is None:
        print("regression gate: no committed baseline, skipping")
        return []
    expectation = baseline.get("check_expectation")
    if not isinstance(expectation, dict):
        print("regression gate: baseline has no check expectation, skipping")
        return []
    failures: list[str] = []
    for codec, expect in expectation.items():
        # Either the bare rps floor (legacy artifacts) or a dict with
        # "sustained_rps" alongside the latency-shape reference.
        floor = expect.get("sustained_rps") if isinstance(expect, dict) else expect
        if not isinstance(floor, (int, float)) or floor <= 0:
            continue
        got = sustained.get(codec, 0.0)
        allowed = (1.0 - REGRESSION_TOLERANCE) * floor
        if got < allowed:
            failures.append(
                f"{codec}: sustained {got:.0f} rps < {allowed:.0f} "
                f"(baseline {floor:.0f} - {REGRESSION_TOLERANCE:.0%})"
            )
    if not failures:
        print(f"regression gate: ok ({grid} grid vs committed baseline)")
    return failures


def _shape_gate(ramp: list[dict], baseline: dict | None) -> list[str]:
    """Compare check-grid latency *shape* against the committed reference.

    For each codec, the histogram measured at ``CHECK_SHAPE_RATE`` is
    compared to the baseline's ``latency_shape`` reference by
    earth-mover distance in bucket units; drift beyond
    ``SHAPE_TOLERANCE`` fails.  Returns failure messages (empty when
    the gate passes or no comparable reference exists).
    """
    expectation = (baseline or {}).get("check_expectation")
    if not isinstance(expectation, dict):
        print("shape gate: no committed shape reference, skipping")
        return []
    failures: list[str] = []
    compared = False
    for codec, expect in expectation.items():
        reference = expect.get("latency_shape") if isinstance(expect, dict) else None
        if not isinstance(reference, dict):
            continue
        entry = next(
            (e for e in ramp
             if e["codec"] == codec
             and e["target_rps"] == CHECK_SHAPE_RATE
             and isinstance(e.get("latency_hist"), dict)),
            None,
        )
        if entry is None:
            continue
        compared = True
        measured = LatencyHistogram.from_dict(entry["latency_hist"])
        drift = measured.shape_distance(LatencyHistogram.from_dict(reference))
        if drift > SHAPE_TOLERANCE:
            failures.append(
                f"{codec}: latency-shape drift {drift:.1f} buckets > "
                f"{SHAPE_TOLERANCE:.1f} at {CHECK_SHAPE_RATE:.0f} rps"
            )
        else:
            print(f"shape gate: {codec} drift {drift:.1f} buckets "
                  f"(tolerance {SHAPE_TOLERANCE:.1f})")
    if not compared and not failures:
        print("shape gate: baseline predates shape references, skipping")
    return failures


def _render_hist(hist: dict) -> list[str]:
    """ASCII bar chart of one sparse histogram dict."""
    lines: list[str] = []
    counts = hist.get("counts", [])
    bounds = hist.get("le_ms", [])
    peak = max(counts, default=0)
    if not peak:
        return ["  (empty)"]
    prev = 0.0
    for le, count in zip(bounds, counts):
        label = f"> {prev:7.2f} ms" if le is None else f"<= {le:7.2f} ms"
        bar = "#" * max(1, round(40 * count / peak))
        lines.append(f"  {label:>14s} {count:7d} {bar}")
        if le is not None:
            prev = le
    return lines


def _write_hist_plot(ramp: list[dict], label: str, mode: str) -> None:
    """Render every ramp entry's latency histogram to HIST_OUTPUT."""
    lines = [f"latency histograms ({label} grid, {mode} transport), "
             f"log-linear buckets, 4 per octave", ""]
    for entry in ramp:
        hist = entry.get("latency_hist")
        if not isinstance(hist, dict):
            continue
        lines.append(
            f"{entry['codec']} @ {entry['target_rps']:.0f} rps "
            f"(p50 {entry['latency_p50_s']*1e3:.2f} ms, "
            f"p99 {entry['latency_p99_s']*1e3:.2f} ms, "
            f"{'sustained' if entry['sustained'] else 'saturated'})"
        )
        lines.extend(_render_hist(hist))
        lines.append("")
    HIST_OUTPUT.write_text("\n".join(lines) + "\n")


def _shape_reference(base_config: dict, seed: int) -> dict[str, dict]:
    """Re-measure the check grid's top rate to refresh the committed
    check-mode expectation (rps floor + latency-shape reference)."""
    reference: dict[str, dict] = {}
    for codec in PROFILES:
        config = RuntimeConfig(**base_config, **PROFILES[codec])
        report, _, _, ok = asyncio.run(_run_trial(
            config, CHECK_FILES, CHECK_SHAPE_RATE, CHECK_WARMUP,
            CHECK_DURATION, seed,
        ))
        reference[codec] = {
            "sustained_rps": CHECK_SHAPE_RATE,
            "latency_shape": report["latency_hist"],
        }
        print(f"  {codec:9s} @ {CHECK_SHAPE_RATE:.0f} rps: "
              f"{report['completed']} samples, conformant={ok}")
    return reference


async def _drive_scaleout(
    supervisor,
    host: str,
    port: int,
    files: int,
    rps: float,
    warmup: float,
    duration: float,
    seed: int,
    kill: bool,
    driver=None,
) -> dict:
    """Drive one booted fleet through one rate; optionally kill -9.

    With ``driver`` (a pre-forked `ShardedLoadDriver`) the load comes
    from K driver processes over disjoint entry partitions and the
    returned report is the exact merge of the K shard ledgers;
    without, a single in-loop `LoadGenerator` drives as before.
    """
    import random

    from repro.runtime import verify_snapshot
    from repro.runtime.scaleout import ScaleoutEndpoint

    n_nodes = supervisor.bootstrap.expected
    await supervisor.start(boot_timeout=60.0 + 0.5 * n_nodes)
    endpoint = await ScaleoutEndpoint.connect(host, port)
    killed: list[int] = []
    try:
        names = [f"bench-{i}.dat" for i in range(files)]
        boot = await RuntimeClient(endpoint, min(endpoint.nodes)).connect()
        for name in names:
            await boot.insert(name, f"payload of {name}")
        await boot.close()
        await endpoint.drain()

        async def _mid_burst_kill(delay: float) -> None:
            await asyncio.sleep(delay)
            victim = random.Random(seed).choice(
                supervisor.bootstrap.worker_pids()
            )
            await supervisor.kill(victim)
            killed.append(victim)

        loop = asyncio.get_running_loop()
        if driver is not None:
            # Shards run their own warmup after the gate opens, so the
            # mid-burst kill aims at warmup + half the measured window.
            driver.start()
            kill_task = (
                loop.create_task(_mid_burst_kill(warmup + duration / 2))
                if kill else None
            )
            report = await driver.collect()
            report.served_by_node = await endpoint.served_counts()
        else:
            gen = LoadGenerator(
                endpoint, names, WorkloadShape(kind="zipf", s=1.2), seed=seed
            )
            if warmup > 0:
                await gen.run_open_loop(rps=rps, duration=warmup)
            kill_task = (
                loop.create_task(_mid_burst_kill(duration / 2))
                if kill else None
            )
            report = await gen.run_open_loop(rps=rps, duration=duration)
        if kill_task is not None:
            await kill_task
        if driver is None:
            await gen.close()
        for victim in killed:
            await supervisor.bootstrap.announce_crash(victim)
        await endpoint.quiesce()
        snapshot, stats = await supervisor.bootstrap.collect_snapshot()
        conformance = verify_snapshot(snapshot)
        out = {
            **report.as_dict(),
            "conserved": report.conserved,
            "conformant": conformance.ok,
            "mismatches": conformance.mismatches,
            "killed": killed,
            "oplog_records": len(snapshot.oplog),
            "replicas_to_balance": snapshot.replicas_created,
            "stage_seconds": {
                k: round(v, 6) for k, v in sorted(stats.stage_seconds.items())
            },
        }
        if driver is not None:
            out["client_processes"] = driver.shards
            out["shard_rps"] = [
                round(r.achieved_rps, 3) for r in driver.shard_reports
            ]
        return out
    finally:
        await endpoint.close()
        await supervisor.shutdown()


def _scaleout_trial(
    base_config: dict,
    n_nodes: int,
    files: int,
    rps: float,
    warmup: float,
    duration: float,
    seed: int,
    kill: bool,
    spawn: str,
    client_processes: int = 1,
) -> dict:
    """One fresh fleet of worker processes, one target rate, one trial.

    The forks happen here, *before* any event loop exists — first the
    worker fleet, then (for ``client_processes > 1``) the K shard
    driver processes, which park on their go pipes until the fleet is
    booted, seeded, and drained.
    """
    from repro.runtime.scaleout import ScaleoutSupervisor, ShardedLoadDriver

    config = RuntimeConfig(**base_config, **PROFILES["binary-v2"])
    supervisor = ScaleoutSupervisor(config, n_nodes=n_nodes, mode=spawn)
    host, port = supervisor.launch()
    driver = None
    if client_processes > 1:
        driver = ShardedLoadDriver(
            host, port, [f"bench-{i}.dat" for i in range(files)],
            shards=client_processes, rps=rps, duration=duration,
            warmup=warmup, shape=WorkloadShape(kind="zipf", s=1.2),
            seed=seed,
            inherited_sockets=(
                [supervisor.listen_socket]
                if supervisor.listen_socket is not None else []
            ),
        )
        driver.launch()
    try:
        out = asyncio.run(_drive_scaleout(
            supervisor, host, port, files, rps, warmup, duration, seed,
            kill, driver,
        ))
    finally:
        if driver is not None:
            driver.kill()  # no-op after a clean collect()
    out["goodbyes"] = len(supervisor.bootstrap.goodbyes)
    return out


def _scale_sustained(entry: dict) -> bool:
    """The scale-out sustained criterion (shared by both segments)."""
    return (
        entry["timeouts"] == 0
        and entry["requests"] > 0
        and entry["completed"] >= 0.99 * entry["requests"]
        and entry["latency_p99_s"] <= SCALE_P99_SLO_S
    )


def _bench_scaleout(args: argparse.Namespace) -> int:
    """The --processes benchmark: baseline ramp, fleet ramp, crash run."""
    n_nodes = args.processes
    shards = max(1, args.client_processes)
    m = args.m
    while (1 << m) < n_nodes:
        m += 1
    if args.check:
        rates = list(SCALE_CHECK_RATES)
        warmup, duration, files = 0.4, 0.8, 6
    else:
        rates = list(SCALE_RATES)
        warmup, duration, files = 1.0, 2.0, 24
    base_config = dict(
        m=m, b=args.b, seed=args.seed, tcp=True,
        capacity=60.0, service_time=0.004, inflight_limit=32,
    )
    label = "fast" if args.check else "full"
    print(f"scale-out benchmark ({label}): {n_nodes} worker processes "
          f"(m={m}, b={args.b}, {args.spawn}), {shards} client process(es), "
          f"{files} files, {duration}s per rate, "
          f"p99 SLO {SCALE_P99_SLO_S*1e3:.0f} ms")
    wall_start = time.perf_counter()

    print("single-process baseline (matched node count, tcp):")
    config = RuntimeConfig(**base_config, **PROFILES["binary-v2"])
    single_ramp: list[dict] = []
    single_max = 0.0
    single_best: dict | None = None
    for rps in rates:
        report, stages, _repl, ok = asyncio.run(
            _run_trial(config, files, rps, warmup, duration, args.seed)
        )
        entry = {"target_rps": rps, "conformant": ok,
                 "stage_seconds": stages, **report}
        entry["sustained"] = _scale_sustained(entry) and ok
        single_ramp.append(entry)
        print(f"  {'ok ' if entry['sustained'] else 'SAT'} single "
              f"target {rps:6.0f} rps -> achieved {report['achieved_rps']:7.1f}, "
              f"p99 {report['latency_p99_s']*1e3:7.2f} ms, conformant={ok}")
        if entry["sustained"]:
            single_max, single_best = rps, entry
        else:
            break

    def _fleet_ramp(client_processes: int, tag: str) -> tuple[list[dict], float, dict | None]:
        ramp: list[dict] = []
        best_rps = 0.0
        best: dict | None = None
        for rps in rates:
            entry = _scaleout_trial(
                base_config, n_nodes, files, rps, warmup, duration,
                args.seed, kill=False, spawn=args.spawn,
                client_processes=client_processes,
            )
            entry["target_rps"] = rps
            entry["sustained"] = _scale_sustained(entry) and entry["conformant"]
            ramp.append(entry)
            shard_note = (
                f", shards={entry['shard_rps']}"
                if "shard_rps" in entry else ""
            )
            print(f"  {'ok ' if entry['sustained'] else 'SAT'} {tag} "
                  f"target {rps:6.0f} rps -> achieved "
                  f"{entry['achieved_rps']:7.1f}, "
                  f"p99 {entry['latency_p99_s']*1e3:7.2f} ms, "
                  f"conformant={entry['conformant']}, "
                  f"goodbyes={entry['goodbyes']}/{n_nodes}{shard_note}")
            if entry["sustained"]:
                best_rps, best = rps, entry
            else:
                break
        return ramp, best_rps, best

    print(f"multi-process fleet ({n_nodes} workers, "
          f"{shards} client process(es)):")
    multi_ramp, multi_max, multi_best = _fleet_ramp(shards, "fleet ")

    # The client-scaling column: the same fleet driven by ONE client
    # interpreter.  The sharded figure must not fall below it — K
    # drivers that measure less than one driver would mean the shard
    # plane itself became the serialization point.
    single_client_ramp: list[dict] = []
    single_client_max = 0.0
    if shards > 1:
        print("client-scaling baseline (same fleet, 1 client process):")
        single_client_ramp, single_client_max, _ = _fleet_ramp(1, "fleet1")

    print(f"crash segment: kill -9 mid-burst at {rates[0]:.0f} rps"
          + (f" ({shards} client shards)" if shards > 1 else "") + ":")
    crash = _scaleout_trial(
        base_config, n_nodes, files, rates[0], warmup, duration,
        args.seed + 1, kill=True, spawn=args.spawn, client_processes=shards,
    )
    victims = ", ".join(f"P({pid})" for pid in crash["killed"])
    print(f"  killed {victims} mid-burst: "
          f"{crash['completed']}/{crash['requests']} completed, "
          f"churn_lost={crash['churn_lost']}, conserved={crash['conserved']}, "
          f"conformant={crash['conformant']}, "
          f"goodbyes={crash['goodbyes']}/{n_nodes - 1}")
    wall = time.perf_counter() - wall_start

    payload = {
        "benchmark": "scaleout-runtime-throughput",
        "grid": label,
        "run_meta": _run_meta(m, n_nodes, "binary-v2", args.spawn,
                              client_processes=shards),
        "files": files,
        "warmup_per_rate_s": warmup,
        "duration_per_rate_s": duration,
        "p99_slo_s": SCALE_P99_SLO_S,
        "single_sustained_rps": single_max,
        "multi_sustained_rps": multi_max,
        "single_latency_p99_s": (single_best or {}).get("latency_p99_s"),
        "multi_latency_p99_s": (multi_best or {}).get("latency_p99_s"),
        "multi_stage_seconds": (multi_best or {}).get("stage_seconds"),
        "single_ramp": single_ramp,
        "multi_ramp": multi_ramp,
        "crash": crash,
        "wallclock_seconds": round(wall, 3),
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    if shards > 1:
        payload["client_scaling"] = {
            "client_processes": shards,
            "single_client_sustained_rps": single_client_max,
            "sharded_sustained_rps": multi_max,
            "shard_rps": (multi_best or {}).get("shard_rps"),
            "single_client_ramp": single_client_ramp,
        }
    SCALE_OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    scaling_note = (
        f" (1-client fleet {single_client_max:.0f} rps)" if shards > 1 else ""
    )
    print(f"sustained: single-process {single_max:.0f} rps, "
          f"{n_nodes}-process fleet {multi_max:.0f} rps with {shards} "
          f"client process(es){scaling_note}; wrote {SCALE_OUTPUT}")

    failures: list[str] = []
    if multi_max <= 0:
        failures.append("fleet could not sustain the smallest target rate")
    if multi_max < single_max:
        failures.append(
            f"fleet sustained {multi_max:.0f} rps < single-process "
            f"{single_max:.0f} rps at matched node count"
        )
    if shards > 1 and multi_max < single_client_max:
        failures.append(
            f"sharded fleet ({shards} clients) sustained {multi_max:.0f} "
            f"rps < single-client fleet {single_client_max:.0f} rps"
        )
    if not all(
        e["conformant"]
        for e in single_ramp + multi_ramp + single_client_ramp
    ):
        failures.append("a ramp trial diverged from the oracle replay")
    if not crash["conformant"]:
        failures.append(
            f"crash segment diverged: {crash['mismatches'][:3]}"
        )
    if not crash["conserved"]:
        failures.append("crash segment lost requests (conservation)")
    if not crash["killed"]:
        failures.append("crash segment never fired its kill -9")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="CI smoke: reduced ramp, regression gate")
    parser.add_argument("--tcp", action="store_true",
                        help="real TCP on loopback instead of in-process streams")
    parser.add_argument("--m", type=int, default=4, help="identifier width")
    parser.add_argument("--b", type=int, default=1, help="fault-tolerance degree")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trials", type=int, default=None,
                        help="trials per rate (default: 3 full, 1 check)")
    parser.add_argument("--processes", type=int, default=0, metavar="N",
                        help="scale-out benchmark: N worker OS processes "
                        "behind the bootstrap (0 = single-process bench)")
    parser.add_argument("--spawn", default="fork",
                        choices=["fork", "subprocess"],
                        help="how --processes workers are spawned")
    parser.add_argument("--client-processes", type=int, default=1,
                        metavar="K",
                        help="scale-out bench: drive the fleet from K "
                        "forked load-generator processes with disjoint "
                        "entry partitions (1 = single client interpreter); "
                        "adds the client-scaling column and its gate")
    args = parser.parse_args(argv)

    if args.client_processes > 1 and args.processes <= 0:
        parser.error("--client-processes needs --processes N "
                     "(the single-process bench is one interpreter)")

    if args.processes > 0:
        return _bench_scaleout(args)

    if args.check:
        rates = list(CHECK_RATES)
        warmup, duration = CHECK_WARMUP, CHECK_DURATION
        files = CHECK_FILES
        trials = args.trials or 1
    else:
        rates = [800.0, 1600.0, 2400.0, 3200.0, 4800.0, 6400.0,
                 7200.0, 8000.0, 9600.0, 11200.0]
        warmup, duration, files = 2.0, 2.0, 24
        trials = args.trials or 3
    base_config = dict(
        m=args.m, b=args.b, seed=args.seed, tcp=args.tcp,
        capacity=60.0, service_time=0.004, inflight_limit=32,
    )
    mode = "tcp" if args.tcp else "streams"
    label = "fast" if args.check else "full"
    print(f"runtime ramp ({label}, {mode}): m={args.m}, b={args.b}, "
          f"{files} files, {trials} trial(s) x {duration}s per rate, "
          f"p99 SLO {P99_SLO_S*1e3:.0f} ms")

    baseline = _load_baseline() if args.check else None

    wall_start = time.perf_counter()
    ramp: list[dict] = []
    sustained: dict[str, float] = {}
    best: dict[str, dict | None] = {}
    replicas: dict[str, int] = {}
    all_conformant = True
    for codec in PROFILES:
        print(f"{codec}:")
        entries, rps, report, repl, conformant = _ramp_codec(
            codec, rates, base_config, files, warmup, duration, trials,
            args.seed,
        )
        ramp.extend(entries)
        sustained[codec] = rps
        best[codec] = report
        replicas[codec] = repl
        all_conformant = all_conformant and conformant
    wall = time.perf_counter() - wall_start

    json_rps = sustained.get("json-v1", 0.0)
    binary_rps = sustained.get("binary-v2", 0.0)
    speedup = round(binary_rps / json_rps, 2) if json_rps else None
    binary_best = best.get("binary-v2")
    payload = {
        "benchmark": "live-runtime-throughput",
        "grid": label,
        "transport": mode,
        "run_meta": _run_meta(args.m, 1 << args.m, "binary-v2", "single"),
        "m": args.m,
        "b": args.b,
        "files": files,
        "trials_per_rate": trials,
        "warmup_per_rate_s": warmup,
        "duration_per_rate_s": duration,
        "p99_slo_s": P99_SLO_S,
        "sustained_rps": binary_rps,
        "latency_p50_s": binary_best["latency_p50_s"] if binary_best else None,
        "latency_p99_s": binary_best["latency_p99_s"] if binary_best else None,
        "replicas_to_balance": replicas.get("binary-v2", 0),
        "conformant": all_conformant,
        "codecs": {
            codec: {
                "sustained_rps": sustained[codec],
                "latency_p50_s": (best[codec] or {}).get("latency_p50_s"),
                "latency_p99_s": (best[codec] or {}).get("latency_p99_s"),
                "replicas_to_balance": replicas[codec],
            }
            for codec in PROFILES
        },
        "speedup": speedup,
        "ramp": ramp,
        "wallclock_seconds": round(wall, 3),
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    if not args.check:
        # The committed full-grid artifact records what the CI smoke is
        # expected to sustain — rps floor plus latency-shape reference,
        # measured with the check grid's own parameters so --check runs
        # compare like with like.
        print("check-grid reference (for the CI regression + shape gates):")
        payload["check_expectation"] = _shape_reference(base_config, args.seed)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    _write_hist_plot(ramp, label, mode)
    print(f"sustained: json-v1 {json_rps:.0f} rps, binary-v2 {binary_rps:.0f} "
          f"rps (speedup {speedup}); wrote {OUTPUT} and {HIST_OUTPUT}")

    if not all_conformant:
        print("FAIL: live run diverged from the oracle replay", file=sys.stderr)
        return 1
    if args.check and (json_rps <= 0 or binary_rps <= 0):
        print("FAIL: could not sustain the smallest target rate", file=sys.stderr)
        return 1
    if args.check:
        failures = _regression_gate(label, sustained, baseline)
        failures.extend(_shape_gate(ramp, baseline))
        if failures:
            for failure in failures:
                print(f"FAIL: regression gate: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
