#!/usr/bin/env python
"""Long-budget invariant fuzzing campaign (nightly job).

Runs the scenario fuzzer far past the tier-1 smoke budget — many seeds
across a grid of (m, b) system shapes and longer event sequences —
shrinks every violation to a replayable repro file, and writes a
machine-readable summary to ``results/fuzz_report.json``.

Usage::

    PYTHONPATH=src python tools/fuzz_nightly.py [--seeds 200] [--events 120]

Exit status is non-zero if any configuration produced a violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.verify import (  # noqa: E402
    FuzzConfig,
    ScenarioFuzzer,
    Shrinker,
    generate_scenario,
    save_repro,
)

#: Live-runtime burst ops whose per-cell coverage the summary reports:
#: the overload and churned-overload invariants (overload-shed
#: conservation, stale-redirect) only audit scenarios that actually
#: contain these events, so the nightly proves they ran.
LIVE_BURST_OPS = ("live_overload", "live_churn_overload")

DEFAULT_GRID = ((4, 0), (4, 1), (5, 0), (5, 1), (5, 2), (6, 1), (6, 2), (7, 2))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=200, help="seeds per (m, b) cell")
    parser.add_argument("--events", type=int, default=120, help="events per scenario")
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument(
        "--grid", default=None,
        help="comma-separated m:b cells, e.g. '5:1,6:2' (default: full grid)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("results"),
        help="output directory (report + repro files)",
    )
    args = parser.parse_args(argv)

    if args.grid:
        grid = [
            (int(cell.split(":")[0]), int(cell.split(":")[1]))
            for cell in args.grid.split(",")
        ]
    else:
        grid = list(DEFAULT_GRID)

    args.out.mkdir(parents=True, exist_ok=True)
    started = time.time()
    cells = []
    total_violations = 0
    for m, b in grid:
        config = FuzzConfig(
            seeds=args.seeds, m=m, b=b, events=args.events,
            base_seed=args.base_seed,
        )
        t0 = time.time()
        report = ScenarioFuzzer().fuzz(config)
        elapsed = time.time() - t0
        cell = report.to_dict()
        cell["elapsed_s"] = round(elapsed, 2)
        # Generation is seed-deterministic: re-derive the campaign's
        # scenarios to tally how many live bursts each cell carried.
        cell["live_burst_coverage"] = {
            op: sum(
                1
                for s in range(args.base_seed, args.base_seed + args.seeds)
                for e in generate_scenario(
                    seed=s, m=m, b=b, n_events=args.events
                ).events
                if e.op == op
            )
            for op in LIVE_BURST_OPS
        }
        cell["repros"] = []
        for violation in report.violations:
            total_violations += 1
            shrinker = Shrinker()
            minimized, shrunk = shrinker.shrink(violation.scenario, violation)
            path = save_repro(
                args.out / f"repro_m{m}b{b}_seed{violation.seed}_{shrunk.invariant}.json",
                minimized,
                shrunk,
            )
            cell["repros"].append(
                {
                    "path": str(path),
                    "events": len(minimized.events),
                    "shrink_runs": shrinker.runs,
                }
            )
        cells.append(cell)
        status = "ok" if report.ok else f"{len(report.violations)} VIOLATIONS"
        coverage = cell["live_burst_coverage"]
        print(
            f"m={m} b={b}: {report.scenarios} scenarios, "
            f"{report.checks} checks, "
            f"{coverage['live_overload']} overload / "
            f"{coverage['live_churn_overload']} churned bursts, "
            f"{elapsed:.1f}s — {status}"
        )

    summary = {
        "elapsed_s": round(time.time() - started, 2),
        "total_violations": total_violations,
        "cells": cells,
    }
    report_path = args.out / "fuzz_report.json"
    report_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"report written to {report_path}")
    return 1 if total_violations else 0


if __name__ == "__main__":
    sys.exit(main())
